//! Restore-equivalence matrix for the engine snapshot plane.
//!
//! The acceptance bar of the snapshot subsystem: a run cut at *any*
//! checkpoint and resumed on a freshly built system produces a
//! [`RunReport`] that is equal **field for field** — runtime cycles,
//! miss/reissue/traffic statistics, engine high-water marks,
//! `events_delivered`, violations — to the uninterrupted run. The matrix
//! crosses all four protocols with several seeds and several checkpoint
//! cadences (so the cut lands at different phases of the run: warm-up,
//! steady state, drain), plus a faulted row, a corruption row, and the
//! pinned 317430-event benchmark configuration restored mid-run.

use token_coherence::prelude::*;
use token_coherence::system::{RunReport, System};
use token_coherence::types::{FaultSpec, SystemConfig};
use token_coherence::workloads::WorkloadProfile;

use tc_testkit::Scenario;

/// Asserts two reports are equal field for field, naming the field that
/// diverged (a bare `assert_eq!` on the whole struct drowns the diff).
fn assert_reports_identical(context: &str, a: &RunReport, b: &RunReport) {
    assert_eq!(a.protocol, b.protocol, "{context}: protocol");
    assert_eq!(a.topology, b.topology, "{context}: topology");
    assert_eq!(a.bandwidth, b.bandwidth, "{context}: bandwidth");
    assert_eq!(a.workload, b.workload, "{context}: workload");
    assert_eq!(a.num_nodes, b.num_nodes, "{context}: num_nodes");
    assert_eq!(
        a.runtime_cycles, b.runtime_cycles,
        "{context}: runtime_cycles"
    );
    assert_eq!(a.total_ops, b.total_ops, "{context}: total_ops");
    assert_eq!(
        a.total_transactions, b.total_transactions,
        "{context}: total_transactions"
    );
    assert_eq!(a.misses, b.misses, "{context}: misses");
    assert_eq!(a.reissue, b.reissue, "{context}: reissue");
    assert_eq!(a.controllers, b.controllers, "{context}: controllers");
    assert_eq!(a.traffic, b.traffic, "{context}: traffic");
    assert_eq!(a.faults, b.faults, "{context}: faults");
    assert_eq!(a.engine, b.engine, "{context}: engine");
    assert_eq!(a.violations, b.violations, "{context}: violations");
    // Belt and braces: PartialEq over the whole struct catches any field
    // added later but forgotten above.
    assert_eq!(a, b, "{context}: full report");
}

/// All four protocols x seeds x checkpoint cadences: the interrupted-and-
/// resumed run must reproduce the uninterrupted report exactly.
#[test]
fn resume_matrix_is_bit_identical_across_protocols_seeds_and_cadences() {
    let scenario = Scenario::by_name("hot_block_contention").expect("standard scenario");
    let ops = 300;
    for protocol in ProtocolKind::ALL {
        for seed in [2, 12] {
            let baseline = scenario.run_faulted(protocol, seed, ops, FaultSpec::none());
            // Early cut (warm-up) and late cut (steady state / drain).
            for cadence in [500u64, 3_000] {
                let resumed = scenario.run_resumed(protocol, seed, ops, FaultSpec::none(), cadence);
                assert_reports_identical(
                    &format!("{protocol} seed {seed} cadence {cadence}"),
                    &baseline,
                    &resumed,
                );
            }
        }
    }
}

/// Restore-equivalence holds with an active fault plane: the plane's RNG
/// position and fault statistics travel in the snapshot, so the resumed
/// run drops/duplicates/reorders exactly the messages the uninterrupted
/// one does. TokenB is the protocol whose contract tolerates every fault
/// class.
#[test]
fn resume_is_bit_identical_under_fault_injection() {
    let scenario = Scenario::by_name("hot_block_contention").expect("standard scenario");
    let faults = FaultSpec::parse("drop=0.002,dup=0.002").expect("valid spec");
    let baseline = scenario.run_faulted(ProtocolKind::TokenB, 12, 300, faults);
    let resumed = scenario.run_resumed(ProtocolKind::TokenB, 12, 300, faults, 4_000);
    assert_reports_identical("tokenb faulted", &baseline, &resumed);
}

/// The determinism pin, checkable from a snapshot: the benchmark
/// configuration (TokenB, OLTP, 4 nodes, 20k ops/node, seed 12) restored
/// at a mid-run checkpoint still lands on exactly 317430 delivered events.
#[test]
fn pinned_benchmark_configuration_resumes_to_the_pinned_event_count() {
    let config = SystemConfig::isca03_default()
        .with_nodes(4)
        .with_protocol(ProtocolKind::TokenB)
        .with_seed(12);
    let profile = WorkloadProfile::oltp();
    let options = token_coherence::system::RunOptions {
        ops_per_node: 20_000,
        max_cycles: 1_000_000_000,
        ..Default::default()
    }
    .with_checkpoint_every(100_000);

    let mut snapshot: Option<(u64, Vec<u8>)> = None;
    let mut full = System::build(&config, &profile);
    let baseline = full.run_with_checkpoints(options, &mut |at, bytes| {
        // Keep the latest snapshot: the deepest cut is the harshest test.
        snapshot = Some((at, bytes.to_vec()));
    });
    assert_eq!(full.events_delivered(), 317_430, "uninterrupted pin");
    let (at, bytes) = snapshot.expect("a 317k-event run must cross the 100k cadence");
    assert!(at >= 100_000);

    let mut resumed = System::build(&config, &profile);
    let progress = resumed.restore(&options, &bytes).expect("restore");
    assert_eq!(resumed.events_delivered(), at);
    let report = resumed.resume(options, progress);
    assert_eq!(resumed.events_delivered(), 317_430, "resumed pin");
    assert_reports_identical("pinned benchmark", &baseline, &report);
}

/// The snapshot plane's sharding stance: snapshots are a serial-engine
/// feature. A snapshot taken by a serial run (`shards = 0`) restored under
/// `shards > 0` must fail as a structured `Corrupt` — the fingerprint folds
/// the shard count in precisely so the windowed engine can never silently
/// resume state the serial engine produced. (Asking a sharded run to
/// checkpoint panics up front; that contract is pinned in `tc-system`'s
/// unit tests.)
#[test]
fn serial_snapshot_does_not_restore_under_sharded_options() {
    let scenario = Scenario::by_name("hot_block_contention").expect("standard scenario");
    let config = scenario.config(ProtocolKind::TokenB, 7);
    let options = scenario.run_options().with_checkpoint_every(2_000);

    let mut snapshot: Option<Vec<u8>> = None;
    System::build(&config, &scenario.workload).run_with_checkpoints(options, &mut |_, bytes| {
        if snapshot.is_none() {
            snapshot = Some(bytes.to_vec());
        }
    });
    let clean = snapshot.expect("at least one checkpoint");

    let sharded_options = scenario.run_options().with_shards(2);
    let err = System::build(&config, &scenario.workload)
        .restore(&sharded_options, &clean)
        .expect_err("a serial snapshot must not restore into a sharded run");
    assert!(
        matches!(err, token_coherence::sim::SnapshotError::Corrupt(_)),
        "expected structured Corrupt, got {err}"
    );
    assert!(err.to_string().contains("fingerprint"), "{err}");

    // The same bytes still restore under the serial options.
    System::build(&config, &scenario.workload)
        .restore(&scenario.run_options().with_checkpoint_every(2_000), &clean)
        .expect("serial restore still works");
}

/// A snapshot with a flipped byte is rejected by the seal checksum — a
/// structured error, never a garbled restore.
#[test]
fn corrupted_snapshot_is_rejected_by_the_checksum() {
    let scenario = Scenario::by_name("hot_block_contention").expect("standard scenario");
    let config = scenario.config(ProtocolKind::Directory, 7);
    let options = scenario.run_options().with_checkpoint_every(2_000);

    let mut snapshot: Option<Vec<u8>> = None;
    System::build(&config, &scenario.workload).run_with_checkpoints(options, &mut |_, bytes| {
        if snapshot.is_none() {
            snapshot = Some(bytes.to_vec());
        }
    });
    let clean = snapshot.expect("at least one checkpoint");

    // Flip one byte in the middle of the payload: every such corruption
    // must surface as an error from restore, not a panic or a silent
    // mis-restore.
    let mut corrupt = clean.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    let err = System::build(&config, &scenario.workload)
        .restore(&options, &corrupt)
        .expect_err("corrupt snapshot must not restore");
    let message = err.to_string();
    assert!(
        message.contains("checksum") || message.contains("corrupt"),
        "unexpected error: {message}"
    );

    // The clean bytes still restore fine (the corruption test didn't
    // invalidate the baseline).
    System::build(&config, &scenario.workload)
        .restore(&options, &clean)
        .expect("clean snapshot restores");
}
