//! Campaign-level integration tests: the determinism-across-threads
//! contract and the pluggable protocol registry.

use token_coherence::prelude::*;
use token_coherence::types::{FaultSpec, NodeId};

/// A small but non-trivial campaign: all four protocols on a contended
/// workload, plus a 16-node point so the matrix is not uniform in size.
fn points() -> Vec<ExperimentPoint> {
    let mut points: Vec<ExperimentPoint> = ProtocolKind::ALL
        .into_iter()
        .map(|protocol| {
            let mut config = SystemConfig::isca03_default()
                .with_nodes(4)
                .with_protocol(protocol)
                .with_seed(99);
            config.l2.size_bytes = 256 * 1024;
            ExperimentPoint::new(format!("{protocol}-4p"), config, WorkloadProfile::oltp())
        })
        .collect();
    points.push(ExperimentPoint::new(
        "TokenB-16p",
        SystemConfig::isca03_default().with_seed(7),
        WorkloadProfile::apache(),
    ));
    points
}

fn options() -> RunOptions {
    RunOptions {
        ops_per_node: 400,
        max_cycles: 50_000_000,
        ..RunOptions::default()
    }
}

/// The campaign determinism contract: `threads(1)` and `threads(4)` return
/// bit-identical `RunReport`s — every field, including the engine
/// high-water marks and `events_delivered` — because each experiment point
/// is an independently seeded, hermetic simulation and the driver
/// reassembles reports in submission order. Parallelism must never change
/// simulation behaviour, only wall-clock.
#[test]
fn threaded_campaign_reports_are_bit_identical_to_serial() {
    let serial = Campaign::new(points()).options(options()).threads(1).run();
    let parallel = Campaign::new(points()).options(options()).threads(4).run();

    assert_eq!(serial.runs.len(), parallel.runs.len());
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(s.label, p.label);
        // Spot-check the fields a scheduler bug would disturb first, so a
        // failure names the divergence...
        assert_eq!(
            s.report.runtime_cycles, p.report.runtime_cycles,
            "{}: runtime diverged across thread counts",
            s.label
        );
        assert_eq!(
            s.report.engine.events_delivered, p.report.engine.events_delivered,
            "{}: events_delivered diverged across thread counts",
            s.label
        );
        assert_eq!(
            s.report.traffic.total_link_bytes(),
            p.report.traffic.total_link_bytes(),
            "{}: traffic diverged across thread counts",
            s.label
        );
    }
    // ...and the full structural equality pins everything else
    // (miss/reissue/controller stats, violations, engine marks).
    assert_eq!(serial.runs, parallel.runs);
    assert!(serial.verified().is_ok());
}

/// The streaming driver is part of the same determinism contract: the
/// aggregates it folds while dropping each report must be bit-identical to
/// the buffered path's, at any thread count, and the sink must see every
/// point exactly once in submission order.
#[test]
fn streaming_campaign_matches_the_buffered_aggregates() {
    let reference = Campaign::new(points())
        .options(options())
        .threads(1)
        .run()
        .summary();
    let delivered = std::sync::Mutex::new(Vec::new());
    let summary = Campaign::new(points())
        .options(options())
        .threads(4)
        .run_streaming(|index, run| {
            delivered
                .lock()
                .unwrap()
                .push((index, run.report.engine.events_delivered));
        });
    let delivered = delivered.into_inner().unwrap();
    assert_eq!(
        delivered.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        (0..reference.points).collect::<Vec<_>>(),
        "sink must see submission order"
    );
    assert_eq!(summary.runtime, reference.runtime);
    assert_eq!(summary.traffic, reference.traffic);
    assert_eq!(summary.miss_latency, reference.miss_latency);
    assert_eq!(summary.failures, reference.failures);
    assert!(summary.verified().is_ok());
}

/// The determinism contract extends to faulted campaigns: each point's
/// fault plane derives its stream from `(config.seed, FaultSpec)` alone, so
/// `threads(1)` and `threads(4)` stay bit-identical — fault stats included
/// — even while the fabric drops, duplicates, and reorders messages.
#[test]
fn faulted_campaign_reports_are_bit_identical_across_thread_counts() {
    let spec = FaultSpec::parse("drop=0.01,dup=0.005,reorder=4,seed=5").unwrap();
    let points: Vec<ExperimentPoint> = [1u64, 7, 42, 0xBEEF]
        .into_iter()
        .map(|seed| {
            let mut config = SystemConfig::isca03_default()
                .with_nodes(4)
                .with_protocol(ProtocolKind::TokenB)
                .with_seed(seed);
            config.l2.size_bytes = 128 * 1024;
            ExperimentPoint::new(
                format!("TokenB-faulted-seed{seed}"),
                config,
                WorkloadProfile::hot_block(),
            )
            .with_faults(spec)
        })
        .collect();

    let serial = Campaign::new(points.clone())
        .options(options())
        .threads(1)
        .run();
    let parallel = Campaign::new(points).options(options()).threads(4).run();
    assert_eq!(serial.runs, parallel.runs);
    assert!(serial.verified().is_ok());
    for run in &serial.runs {
        assert_eq!(run.report.faults, spec, "{}: spec not recorded", run.label);
        assert!(
            run.report.engine.faults.total_injected() > 0,
            "{}: determinism check ran without faults",
            run.label
        );
    }
}

/// More workers than points is legal and still deterministic.
#[test]
fn oversubscribed_thread_count_is_harmless() {
    let few = points().into_iter().take(2).collect::<Vec<_>>();
    let wide = Campaign::new(few.clone())
        .options(options())
        .threads(64)
        .run();
    let narrow = Campaign::new(few).options(options()).threads(1).run();
    assert_eq!(wide.runs, narrow.runs);
    // The driver caps workers at the point count.
    assert!(wide.threads <= 2);
}

/// A fifth protocol variant is a registration, not an engine edit: register
/// a custom factory under an existing `ProtocolKind`, build through
/// `System::build_with`, and the runner drives it with no changes.
#[test]
fn a_registered_protocol_variant_runs_through_the_engine() {
    fn tokenb_again(node: NodeId, config: &SystemConfig) -> Box<dyn CoherenceController> {
        Box::new(TokenBController::new(node, config))
    }
    let mut registry = ProtocolRegistry::with_defaults();
    registry.register("TokenB-variant", ProtocolKind::TokenB, tokenb_again);

    let mut config = SystemConfig::isca03_default()
        .with_nodes(4)
        .with_protocol(ProtocolKind::TokenB)
        .with_seed(3);
    config.l2.size_bytes = 256 * 1024;
    let mut system = System::build_with(&config, &WorkloadProfile::specjbb(), &registry);
    let report = system.run(options());
    assert!(report.verified().is_ok(), "{:?}", report.violations);
    assert!(report.total_ops >= 4 * 400);

    // The variant behaves exactly like the stock registration it wraps, so
    // the default-registry run must match bit for bit.
    let mut stock = System::build(&config, &WorkloadProfile::specjbb());
    let stock_report = stock.run(options());
    assert_eq!(report, stock_report);
}
