//! Cross-crate integration tests: full-system runs of every protocol on
//! every commercial workload, checked by the verification layer.

use token_coherence::prelude::*;
use token_coherence::types::InvariantViolation;

fn run(
    protocol: ProtocolKind,
    workload: WorkloadProfile,
    nodes: usize,
    ops: u64,
) -> token_coherence::system::RunReport {
    let mut config = SystemConfig::isca03_default()
        .with_nodes(nodes)
        .with_protocol(protocol)
        .with_seed(2026);
    // A smaller L2 keeps the runs short while still exercising evictions and
    // writebacks (for snooping, that includes the writeback-ack handshake).
    config.l2.size_bytes = 512 * 1024;
    let mut system = System::build(&config, &workload);
    system.run(RunOptions {
        ops_per_node: ops,
        max_cycles: 200_000_000,
        ..RunOptions::default()
    })
}

/// Every stuck request surfaces as a structured violation: a drain-limit cut
/// is a `Deadlock { node, addr, .. }` naming the stuck requester and block,
/// a drained-but-incomplete run is a `Starvation`. This assertion makes any
/// protocol wedge a loud, attributable test failure rather than a hang.
fn assert_live(report: &token_coherence::system::RunReport, context: &str) {
    let stuck: Vec<String> = report
        .violations
        .iter()
        .filter(|v| {
            matches!(
                v,
                InvariantViolation::Deadlock { .. } | InvariantViolation::Starvation { .. }
            )
        })
        .map(|v| v.to_string())
        .collect();
    assert!(stuck.is_empty(), "{context}: protocol wedged: {stuck:?}");
}

#[test]
fn every_protocol_passes_verification_on_every_commercial_workload() {
    // All four protocols, including the snooping baseline: the writeback-ack
    // handshake closed the race that used to wedge it on the contended
    // 8-node configurations. The whole 4x3 matrix runs as one campaign
    // through the threaded driver.
    let points: Vec<ExperimentPoint> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|protocol| {
            WorkloadProfile::commercial().into_iter().map(move |w| {
                let mut config = SystemConfig::isca03_default()
                    .with_nodes(8)
                    .with_protocol(protocol)
                    .with_seed(2026);
                config.l2.size_bytes = 512 * 1024;
                ExperimentPoint::new(format!("{protocol} on {}", w.name), config, w)
            })
        })
        .collect();
    let campaign = Campaign::new(points)
        .options(RunOptions {
            ops_per_node: 1_200,
            max_cycles: 200_000_000,
            ..RunOptions::default()
        })
        .threads(2)
        .run();
    for run in &campaign.runs {
        assert_live(&run.report, &run.label);
        assert!(
            run.report.verified().is_ok(),
            "{}: {:?}",
            run.label,
            run.report.violations
        );
        assert!(run.report.total_ops >= 8 * 1_200, "{}", run.label);
        assert!(run.report.misses.total_misses() > 0, "{}", run.label);
    }
}

/// Figure 5a's headline shape. The synthetic workloads are far more
/// memory-intensive than the paper's real commercial workloads, so with the
/// 3.2 GB/s links the broadcast request traffic congests the fabric and masks
/// the latency advantage; with ample bandwidth (the regime the paper's
/// workloads effectively run in) TokenB's removal of the home-node
/// indirection shows directly. See EXPERIMENTS.md for the discussion.
#[test]
fn tokenb_beats_directory_and_hammer_when_bandwidth_is_ample() {
    let run_unlimited = |protocol: ProtocolKind| {
        let config = SystemConfig::isca03_default()
            .with_protocol(protocol)
            .with_bandwidth(BandwidthMode::Unlimited)
            .with_seed(2026);
        let mut system = System::build(&config, &WorkloadProfile::oltp());
        system.run(RunOptions {
            ops_per_node: 1_500,
            max_cycles: 200_000_000,
            ..RunOptions::default()
        })
    };
    let tokenb = run_unlimited(ProtocolKind::TokenB);
    let directory = run_unlimited(ProtocolKind::Directory);
    let hammer = run_unlimited(ProtocolKind::Hammer);
    assert!(tokenb.verified().is_ok() && directory.verified().is_ok() && hammer.verified().is_ok());
    assert!(
        tokenb.cycles_per_transaction() < directory.cycles_per_transaction(),
        "TokenB ({:.0}) should beat Directory ({:.0}) by avoiding the home indirection",
        tokenb.cycles_per_transaction(),
        directory.cycles_per_transaction()
    );
    assert!(
        tokenb.cycles_per_transaction() < hammer.cycles_per_transaction(),
        "TokenB ({:.0}) should beat Hammer ({:.0})",
        tokenb.cycles_per_transaction(),
        hammer.cycles_per_transaction()
    );
    assert!(
        hammer.cycles_per_transaction() < directory.cycles_per_transaction(),
        "Hammer ({:.0}) avoids the DRAM directory lookup and should beat Directory ({:.0})",
        hammer.cycles_per_transaction(),
        directory.cycles_per_transaction()
    );
}

#[test]
fn directory_uses_less_traffic_than_tokenb_which_uses_less_than_hammer() {
    let tokenb = run(ProtocolKind::TokenB, WorkloadProfile::apache(), 16, 1_500);
    let directory = run(
        ProtocolKind::Directory,
        WorkloadProfile::apache(),
        16,
        1_500,
    );
    let hammer = run(ProtocolKind::Hammer, WorkloadProfile::apache(), 16, 1_500);
    assert!(
        directory.bytes_per_miss() < tokenb.bytes_per_miss(),
        "directory {:.1} B/miss vs tokenb {:.1} B/miss",
        directory.bytes_per_miss(),
        tokenb.bytes_per_miss()
    );
    assert!(
        tokenb.bytes_per_miss() < hammer.bytes_per_miss(),
        "tokenb {:.1} B/miss vs hammer {:.1} B/miss",
        tokenb.bytes_per_miss(),
        hammer.bytes_per_miss()
    );
}

#[test]
fn reissued_requests_are_rare_on_commercial_workloads() {
    for workload in WorkloadProfile::commercial() {
        let name = workload.name;
        let report = run(ProtocolKind::TokenB, workload, 16, 1_500);
        let [not_reissued, ..] = report.table2_row();
        assert!(
            not_reissued > 80.0,
            "{name}: expected the vast majority of misses to succeed on the first transient \
             request, got {not_reissued:.1}%"
        );
    }
}

#[test]
fn token_counts_are_conserved_across_a_long_contended_run() {
    let report = run(ProtocolKind::TokenB, WorkloadProfile::hot_block(), 8, 3_000);
    // The final audit inside `run` checks conservation, duplicate owners,
    // single-writer, and starvation; any failure lands in `violations`.
    assert!(report.verified().is_ok(), "{:?}", report.violations);
    assert!(report.reissue.total() > 0);
}

#[test]
fn snooping_requires_the_ordered_tree() {
    let config = SystemConfig::isca03_default()
        .with_protocol(ProtocolKind::Snooping)
        .with_topology(TopologyKind::Torus);
    assert!(config.validate().is_err());
}

/// The 64-node sweep configuration (every protocol on every topology it
/// supports) stays clean at scale. The per-node operation count is scaled
/// down from the full sweep's million so the whole matrix fits in a test
/// run; `sweep64_full_million_ops` below exercises one full-scale point and
/// is `#[ignore]`d for on-demand / CI-smoke use.
#[test]
fn sweep64_matrix_passes_verification_at_reduced_ops() {
    let campaign = Campaign::new(token_coherence::system::experiment::sweep64_points())
        .options(RunOptions {
            ops_per_node: 120,
            max_cycles: 400_000_000,
            ..RunOptions::default()
        })
        .threads(2)
        .run();
    assert_eq!(campaign.runs.len(), 7);
    for run in &campaign.runs {
        let report = &run.report;
        assert_live(report, &run.label);
        assert!(
            report.verified().is_ok(),
            "{}: {:?}",
            run.label,
            report.violations
        );
        assert_eq!(report.num_nodes, 64);
        assert!(report.total_ops >= 64 * 120, "{}", run.label);
        // The engine high-water marks are populated — the data the next
        // bottleneck hunt starts from.
        assert!(report.engine.peak_queue_depth > 0, "{}", run.label);
        assert!(report.engine.events_delivered > 0, "{}", run.label);
    }
}

/// One full-scale sweep point: 64 nodes x 1M ops/node (TokenB on the
/// torus). Minutes of wall-clock in release mode — run explicitly with
/// `cargo test --release --test full_system -- --ignored sweep64_full`.
#[test]
#[ignore = "full-scale sweep point: minutes of wall-clock, run explicitly"]
fn sweep64_full_million_ops() {
    use token_coherence::system::experiment::sweep64_points;
    let point = sweep64_points()
        .into_iter()
        .find(|p| p.label == "TokenB-Torus-64p")
        .expect("sweep point exists");
    let report = point.run(RunOptions::sweep64());
    assert_live(&report, &point.label);
    assert!(report.verified().is_ok(), "{:?}", report.violations);
    assert!(report.total_ops >= 64 * 1_000_000);
}

#[test]
fn runs_are_reproducible_for_a_fixed_seed() {
    let a = run(ProtocolKind::TokenB, WorkloadProfile::specjbb(), 8, 1_000);
    let b = run(ProtocolKind::TokenB, WorkloadProfile::specjbb(), 8, 1_000);
    assert_eq!(a.runtime_cycles, b.runtime_cycles);
    assert_eq!(a.misses.total_misses(), b.misses.total_misses());
    assert_eq!(a.traffic.total_link_bytes(), b.traffic.total_link_bytes());
}
