//! Property-based tests of the correctness-substrate invariants and an
//! end-to-end reproduction of the paper's Figure 2 race.
//!
//! The property tests are hand-rolled: seeds and run lengths are drawn from
//! a [`DeterministicRng`] rather than proptest (unavailable in the offline
//! build environment), which keeps every CI run over the exact same cases.

use token_coherence::core::TokenBController;
use token_coherence::prelude::*;
use token_coherence::sim::DeterministicRng;
use token_coherence::types::{
    Address, BlockAddr, Cycle, MemOp, MemOpKind, Outbox, ReqId, TimerKind,
};

/// A deterministic two-node message pump used by the race test.
fn pump(
    messages: &[token_coherence::types::Message],
    nodes: &mut [TokenBController],
    now: Cycle,
) -> Outbox {
    let mut next = Outbox::new();
    for msg in messages {
        for node in nodes.iter_mut() {
            if msg.dest.includes(node.node(), msg.src) {
                node.handle_message(now, msg, &mut next);
            }
        }
    }
    next
}

#[test]
fn figure2_race_is_resolved_by_reissue_without_violating_safety() {
    let config = SystemConfig::isca03_default().with_nodes(4);
    let block = BlockAddr::new(0);
    let mut nodes: Vec<TokenBController> = (0..4)
        .map(|n| TokenBController::new(n.into(), &config))
        .collect();

    // P1 wants to write, P2 wants to read; requests race.
    let mut writer_out = Outbox::new();
    nodes[1].access(
        0,
        &MemOp::new(ReqId::new(1), Address::new(0), MemOpKind::Store),
        &mut writer_out,
    );
    let mut reader_out = Outbox::new();
    nodes[2].access(
        1,
        &MemOp::new(ReqId::new(2), Address::new(0), MemOpKind::Load),
        &mut reader_out,
    );

    // The reader handles the writer's racing GetM before it has any tokens
    // (time 2 in the paper's figure): it has nothing to contribute.
    pump(&writer_out.messages[..1], &mut nodes[2..3], 35);

    // The reader's request is served first (home gives it data + one token);
    // then the writer's request is served, leaving the writer one token short.
    let home_to_reader = {
        let mut out = Outbox::new();
        for msg in &reader_out.messages {
            nodes[0].handle_message(40, msg, &mut out);
        }
        out
    };
    let reader_completed = pump(&home_to_reader.messages, &mut nodes, 140);
    assert_eq!(reader_completed.completions.len(), 1);

    let home_to_writer = {
        let mut out = Outbox::new();
        for msg in &writer_out.messages {
            nodes[0].handle_message(160, msg, &mut out);
        }
        out
    };
    let writer_partial = pump(&home_to_writer.messages, &mut nodes, 260);
    assert!(
        writer_partial.completions.is_empty(),
        "the writer must NOT complete with only part of the tokens"
    );
    assert_eq!(nodes[1].tokens_held(block), 15);
    assert_eq!(nodes[2].tokens_held(block), 1);

    // The reissue resolves the race.
    let (fire_at, timer) = writer_out
        .timers
        .iter()
        .find(|(_, t)| t.kind == TimerKind::Reissue)
        .copied()
        .expect("reissue timer armed");
    let mut reissue = Outbox::new();
    nodes[1].handle_timer(fire_at, timer, &mut reissue);
    let replies = pump(&reissue.messages, &mut nodes, fire_at + 40);
    let done = pump(&replies.messages, &mut nodes, fire_at + 80);
    assert_eq!(done.completions.len(), 1, "the writer finally completes");
    assert_eq!(nodes[1].tokens_held(block), 16);
    assert_eq!(nodes[1].cache_state_name(block), "M");
    assert_eq!(nodes[2].tokens_held(block), 0);
}

/// Token conservation and read-your-writes hold for arbitrary seeds and
/// run lengths on the most contended workload we have.
#[test]
fn tokenb_invariants_hold_for_random_seeds() {
    let mut cases = DeterministicRng::new(0xA11CE);
    for _ in 0..8 {
        let seed = cases.next_below(10_000);
        let ops = cases.next_range(200, 900);
        let mut config = SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(ProtocolKind::TokenB)
            .with_seed(seed);
        config.l2.size_bytes = 128 * 1024;
        let mut system = System::build(&config, &WorkloadProfile::hot_block());
        let report = system.run(RunOptions {
            ops_per_node: ops,
            max_cycles: 80_000_000,
            ..RunOptions::default()
        });
        assert!(
            report.verified().is_ok(),
            "seed {seed}: {:?}",
            report.violations
        );
    }
}

/// The baselines must also be coherent for arbitrary seeds (they resolve
/// races with indirection rather than tokens). The snooping baseline is
/// exercised separately (unit tests and 4-node system tests) because of
/// the residual race documented in DESIGN.md.
#[test]
fn baseline_protocols_stay_coherent_for_random_seeds() {
    let mut cases = DeterministicRng::new(0xB0B);
    for protocol in [ProtocolKind::Directory, ProtocolKind::Hammer] {
        for _ in 0..4 {
            let seed = cases.next_below(10_000);
            let mut config = SystemConfig::isca03_default()
                .with_nodes(4)
                .with_protocol(protocol)
                .with_seed(seed);
            config.l2.size_bytes = 128 * 1024;
            let mut system = System::build(&config, &WorkloadProfile::hot_block());
            let report = system.run(RunOptions {
                ops_per_node: 400,
                max_cycles: 80_000_000,
                ..RunOptions::default()
            });
            assert!(
                report.verified().is_ok(),
                "{protocol} seed {seed}: {:?}",
                report.violations
            );
        }
    }
}

/// Workload generation is deterministic in the seed and never strays
/// outside its declared regions.
#[test]
fn workload_streams_are_deterministic() {
    use token_coherence::types::NodeId;
    use token_coherence::workloads::WorkloadGenerator;
    let mut cases = DeterministicRng::new(0x5EED);
    for _ in 0..16 {
        let seed = cases.next_below(1_000_000);
        let profile = WorkloadProfile::oltp();
        let mut a = WorkloadGenerator::new(&profile, NodeId::new(3), 16, seed);
        let mut b = WorkloadGenerator::new(&profile, NodeId::new(3), 16, seed);
        for _ in 0..64 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
