//! Cross-protocol conformance stress suite.
//!
//! Every protocol — snooping, directory, hammer, and TokenB — is driven
//! through the same seeded contended scenarios under the same
//! safety/liveness oracle, the mechanical version of the paper's claim that
//! the correctness substrate is independent of the performance protocol. A
//! failure prints a *shrunk*, deterministic replay recipe (see
//! `tc_testkit::shrink`): protocol, scenario, seed, and the minimal
//! per-node operation count that still reproduces it.
//!
//! CI runs this file in release mode as its own job step
//! (`cargo test --release --test conformance`); any `InvariantViolation` —
//! including the structured `Deadlock` the runner emits when the drain limit
//! is hit — fails the sweep.

use token_coherence::prelude::*;
use token_coherence::types::{AdversarySpec, FaultKind, FaultSpec, InvariantViolation};

use tc_testkit::{
    check_adversarial, failure_report, hunt, pathology_catalog, shrink, stress, stress_faulted,
    token_pump, CapabilityGap, HuntOptions, PumpOptions, Scenario,
};

/// The fixed seed set for the sweep: 16 seeds, deliberately spanning small
/// integers (the ones humans try first when reproducing) and bit-heavy
/// values (which decorrelate the per-node workload streams differently).
const SEEDS: [u64; 16] = [
    1, 2, 3, 7, 12, 42, 99, 1234, 2026, 0xBEEF, 0xCAFE, 0x5EED, 0xFACE, 0xA11CE, 0xB0B, 0xD00D,
];

/// The full conformance matrix: all four protocols x all standard scenarios
/// x all fixed seeds, with zero invariant violations and zero deadlocks
/// tolerated. This is the test that used to be impossible: the snooping
/// baseline deadlocked on the writeback race under exactly these workloads.
#[test]
fn all_protocols_conform_on_all_contended_scenarios() {
    let scenarios = Scenario::standard();
    assert!(scenarios.len() >= 3);
    let failures = stress(&ProtocolKind::ALL, &scenarios, &SEEDS);
    assert!(
        failures.is_empty(),
        "{}",
        failure_report(&failures, &scenarios)
    );
}

/// Deadlocks must surface as structured violations, not hangs: a wedged run
/// reports `Deadlock { node, addr, .. }` naming the stuck requester and the
/// block it is waiting on. This exercises the reporting path end-to-end by
/// giving a run effectively no time to finish: the run trips its
/// cycle ceiling and drain limit, and every still-outstanding request is
/// attributed to a node and block.
#[test]
fn drain_limit_hits_surface_as_structured_deadlock_violations() {
    let scenario = Scenario::by_name("oltp_calibration").unwrap();
    let config = scenario.config(ProtocolKind::TokenB, 1);
    let mut system = System::build(&config, &scenario.workload);
    let report = system.run(RunOptions {
        ops_per_node: 10_000,
        // Far too few cycles to finish: the clock passes max_cycles with
        // misses in flight, and the doubled drain limit cuts them off.
        max_cycles: 300,
        ..RunOptions::default()
    });
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::Deadlock { .. })),
        "expected structured Deadlock violations, got {:?}",
        report.violations
    );
    for violation in &report.violations {
        if let InvariantViolation::Deadlock { node, addr, at, .. } = violation {
            assert!(node.index() < config.num_nodes);
            assert!(*at >= 300, "deadlock reported before the drain limit");
            // The violation attributes the wedge to a block the stuck node
            // is actually still waiting on — not a placeholder.
            assert!(
                system.outstanding_blocks(*node).contains(addr),
                "{node} reported stuck on {addr}, but its outstanding blocks are {:?}",
                system.outstanding_blocks(*node)
            );
        }
    }
}

/// Satellite: token conservation as a *continuous* property under random
/// message interleavings and timeout/retry storms, not just at quiescence.
/// The pump delivers messages in adversarial random order and fires reissue
/// timers as soon as they are due, auditing `sum(tokens) == T` and
/// single-owner after every step (hand-rolled on `DeterministicRng`, per the
/// offline-dependency policy).
#[test]
fn tokenb_conserves_tokens_across_random_interleavings_and_retry_storms() {
    let mut seeds = token_coherence::sim::DeterministicRng::new(0x70_6b_73);
    for _ in 0..8 {
        let seed = seeds.next_below(1_000_000);
        let outcome = token_pump(
            PumpOptions {
                num_nodes: 4,
                num_blocks: 4,
                steps: 1_500,
                issue_chance: 0.25,
            },
            seed,
        );
        assert!(outcome.issued > 0, "seed {seed}: pump issued nothing");
        assert!(
            outcome.timer_firings > 0,
            "seed {seed}: no retry storm materialized"
        );
        assert!(outcome.audits > outcome.issued);
    }
}

/// Satellite: the engine determinism pin. The benchmark configuration
/// (TokenB, OLTP, 4 nodes, 20k ops/node, seed 12 — exactly what
/// `engine_throughput` measures) must deliver *precisely* this many events.
/// If a pure-performance engine change moves this number, simulation
/// behaviour drifted and the perf trajectory is no longer comparable; see
/// DESIGN.md "Determinism is load-bearing".
#[test]
fn benchmark_configuration_event_count_is_pinned() {
    let config = SystemConfig::isca03_default()
        .with_nodes(4)
        .with_protocol(ProtocolKind::TokenB)
        .with_seed(12);
    let mut system = System::build(&config, &WorkloadProfile::oltp());
    let report = system.run(RunOptions {
        ops_per_node: 20_000,
        max_cycles: 1_000_000_000,
        ..RunOptions::default()
    });
    assert!(report.verified().is_ok(), "{:?}", report.violations);
    assert_eq!(
        system.events_delivered(),
        317_430,
        "events_delivered drifted: the engine's simulated behaviour changed \
         (update BENCH_engine.json and DESIGN.md only if the change is an \
         intentional semantic fix, never for a perf-only change)"
    );
}

/// The 64-node scale scenario from `tc-testkit` stays under the same
/// invariant oracle as the small systems — the check that keeps the scale
/// sweeps honest. One protocol per topology family (TokenB exercises the
/// torus, Snooping the ordered tree — the two protocols whose correctness
/// arguments differ most) and two seeds keep this fast enough for every CI
/// run; CI also invokes it by name in release mode.
#[test]
fn sixty_four_node_scenario_stays_under_the_oracle() {
    let scenario = Scenario::sweep64();
    assert_eq!(scenario.num_nodes, 64);
    assert_eq!(
        Scenario::by_name("sweep64_oltp").map(|s| s.num_nodes),
        Some(64),
        "replay recipes must be able to find the scale scenario by name"
    );
    for protocol in [ProtocolKind::TokenB, ProtocolKind::Snooping] {
        for seed in [12u64, 0xBEEF] {
            let report = scenario.run(protocol, seed);
            assert!(
                report.verified().is_ok(),
                "{protocol} seed {seed}: {:?}",
                report.violations
            );
            assert!(report.total_ops >= 64 * scenario.ops_per_node);
        }
    }
}

/// The sharded engine at scale: the 64-node conformance scenario must stay
/// green under the same invariant oracle when partitioned across four
/// shards, and the result must be bit-identical (modulo per-shard capacity
/// telemetry, which `determinism_view` masks) to the single-shard run of
/// the same windowed engine. This is the acceptance gate for the
/// conservative-PDES tentpole: spatial decomposition may only change
/// wall-clock, never results.
#[test]
fn sixty_four_node_scenario_is_shard_count_invariant_at_four_shards() {
    let scenario = Scenario::sweep64();
    for protocol in [ProtocolKind::TokenB, ProtocolKind::Directory] {
        let one = scenario.run_sharded(protocol, 12, scenario.ops_per_node, 1);
        let four = scenario.run_sharded(protocol, 12, scenario.ops_per_node, 4);
        assert!(
            four.verified().is_ok(),
            "{protocol} at shards(4): {:?}",
            four.violations
        );
        assert_eq!(four.engine.sharding.shards, 4);
        assert!(four.engine.sharding.lookahead_ns > 0);
        assert_eq!(
            one.determinism_view(),
            four.determinism_view(),
            "{protocol}: shards(1) and shards(4) reports diverged at 64 nodes"
        );
    }
}

/// The adversarial spec the fault-conformance tests inject: 1% message
/// loss, 0.5% duplication, and reordering windows four link-quanta deep —
/// the unordered, unreliable fabric the paper's decoupling argument says
/// TokenB's correctness substrate absorbs.
fn adversarial_spec() -> FaultSpec {
    FaultSpec::none()
        .with_drop(0.01)
        .with_dup(0.005)
        .with_reorder(4)
}

/// The tentpole claim under fire: TokenB stays safe *and live* across all
/// 16 conformance seeds while the fabric drops, duplicates, and reorders
/// its transient requests. The fault stats prove the campaign was real —
/// every class actually fired, reissue timers ran, and at least one seed
/// escalated all the way to a persistent request (the paper's liveness
/// backstop), so the zero-violation result is recovery at work, not the
/// absence of faults. CI runs every `fault_` test in release mode as the
/// fault-conformance job step.
#[test]
fn fault_tokenb_stays_safe_and_live_under_loss_duplication_and_reorder() {
    let scenario = Scenario::by_name("hot_block_contention").unwrap();
    let spec = adversarial_spec();
    let mut total = token_coherence::types::FaultStats::default();
    let mut seeds_with_persistent = 0usize;
    for &seed in &SEEDS {
        let report = scenario.run_faulted(ProtocolKind::TokenB, seed, scenario.ops_per_node, spec);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: TokenB violated under {spec}: {:?}",
            report.violations
        );
        let f = report.engine.faults;
        total.dropped += f.dropped;
        total.duplicated += f.duplicated;
        total.reordered += f.reordered;
        total.reissue_timeouts += f.reissue_timeouts;
        if f.persistent_activations > 0 {
            seeds_with_persistent += 1;
        }
    }
    assert!(total.dropped > 0, "no message loss materialized");
    assert!(total.duplicated > 0, "no duplication materialized");
    assert!(total.reordered > 0, "no reordering materialized");
    assert!(
        total.reissue_timeouts > 0,
        "loss never forced a reissue — the recovery path was not exercised"
    );
    assert!(
        seeds_with_persistent > 0,
        "no seed escalated to a persistent request — the liveness backstop \
         was never demonstrated under fire"
    );
}

/// The full four-protocol matrix under a spec enabling *every* fault class:
/// each protocol is injected with exactly what it contracts to survive
/// (`FaultSpec::gated_for`), and everything it declines surfaces as a
/// structured capability gap, never a false failure. TokenB takes all five
/// classes; the ordered baselines take delay/reorder/outage but decline
/// loss and duplication (no retry machinery); snooping declines everything
/// (its correctness argument *is* the totally ordered fabric).
#[test]
fn fault_contract_matrix_gates_injection_per_protocol() {
    let mut scenario = Scenario::by_name("hot_block_contention").unwrap();
    scenario.ops_per_node = 200;
    let spec = adversarial_spec()
        .with_delay(0.02, 150)
        .with_outage(1, 2, 2_000, 30_000);
    let (failures, gaps) = stress_faulted(&ProtocolKind::ALL, &[scenario.clone()], &SEEDS, spec);
    assert!(
        failures.is_empty(),
        "a protocol broke inside its declared fault contract:\n{}",
        failure_report(&failures, &[scenario])
    );
    let gaps_for = |p: ProtocolKind| -> Vec<FaultKind> {
        gaps.iter()
            .filter(|g| g.protocol == p)
            .map(|g| g.class)
            .collect()
    };
    assert_eq!(gaps_for(ProtocolKind::TokenB), vec![]);
    assert_eq!(
        gaps_for(ProtocolKind::Snooping),
        FaultKind::ALL.to_vec(),
        "snooping tolerates nothing: every requested class is a gap"
    );
    for p in [ProtocolKind::Directory, ProtocolKind::Hammer] {
        assert_eq!(
            gaps_for(p),
            vec![FaultKind::Drop, FaultKind::Duplicate],
            "{p}: the unordered baselines decline only loss and duplication"
        );
    }
    for gap in &gaps {
        assert!(!gap.to_string().is_empty());
    }
    let _: &CapabilityGap = &gaps[0];
}

/// The fault plane's determinism contract: `(seed, FaultSpec)` fully
/// determines the fault sequence, so two runs under the same pair are
/// bit-identical — full `RunReport` structural equality, fault stats
/// included — and runs under different fault seeds diverge.
#[test]
fn fault_same_seed_fault_runs_replay_bit_identically() {
    let scenario = Scenario::by_name("hot_block_contention").unwrap();
    let spec = adversarial_spec().with_seed(0xF457);
    for protocol in [ProtocolKind::TokenB, ProtocolKind::Hammer] {
        let (gated, _) = spec.gated_for(protocol);
        let a = scenario.run_faulted(protocol, 12, 300, gated);
        let b = scenario.run_faulted(protocol, 12, 300, gated);
        assert_eq!(a, b, "{protocol}: same (seed, FaultSpec) diverged");
        assert!(
            a.engine.faults.total_injected() > 0,
            "{protocol}: determinism check ran without faults"
        );
    }
    // A different fault seed reshuffles the fault sequence without touching
    // the workload stream.
    let a = scenario.run_faulted(ProtocolKind::TokenB, 12, 300, spec);
    let c = scenario.run_faulted(ProtocolKind::TokenB, 12, 300, spec.with_seed(0x0DD5));
    assert_ne!(
        a.engine.faults, c.engine.faults,
        "fault seed must steer the fault stream"
    );
}

/// Satellite: the livelock watchdog. A run that stops completing operations
/// must surface a structured `Livelock` violation naming a stuck requester
/// (with the TC_TRACE_BLOCK replay pointer), not spin forever. Forced here
/// by shrinking the event budget below the cost of the first miss round
/// trip on an otherwise healthy run.
#[test]
fn fault_livelock_watchdog_emits_structured_violation() {
    let config = SystemConfig::isca03_default()
        .with_nodes(4)
        .with_protocol(ProtocolKind::TokenB)
        .with_seed(1);
    let mut system = System::build(&config, &WorkloadProfile::oltp());
    let report = system.run(RunOptions {
        ops_per_node: 1_000,
        max_cycles: 1_000_000_000,
        livelock_events_budget: 25,
        ..RunOptions::default()
    });
    let livelock = report
        .violations
        .iter()
        .find(|v| matches!(v, InvariantViolation::Livelock { .. }))
        .unwrap_or_else(|| panic!("expected Livelock, got {:?}", report.violations));
    let text = livelock.to_string();
    assert!(text.contains("livelock"), "{text}");
    assert!(
        text.contains("TC_TRACE_BLOCK"),
        "livelock report must point at the causal-trace env hook: {text}"
    );
    if let InvariantViolation::Livelock {
        node,
        events_without_progress,
        ..
    } = livelock
    {
        assert!(node.index() < config.num_nodes);
        assert!(*events_without_progress >= 25);
    }
}

/// The adversary plane's gating contract: a spec that perturbs nothing —
/// even one carrying a victim pair and a seed — must leave the run
/// bit-identical to a run with no adversary at all. Everything except the
/// recorded spec itself has to match structurally; this is the same
/// discipline that keeps the 317430 events-delivered pin intact.
#[test]
fn inert_adversary_spec_runs_bit_identical_to_no_adversary() {
    let scenario = Scenario::by_name("hot_block_contention").unwrap();
    let inert = AdversarySpec::none().with_victim(2, 17).with_seed(9);
    assert!(inert.is_none());
    let a = scenario.run_adversarial(ProtocolKind::TokenB, 12, 300, FaultSpec::none(), inert);
    let mut b = scenario.run_with_ops(ProtocolKind::TokenB, 12, 300);
    assert_eq!(a.adversary, inert, "the report records the spec as given");
    b.adversary = inert; // the only field allowed to differ
    assert_eq!(a, b, "an inert spec must not perturb the simulation");
}

/// The hunter-found pathology scenarios, pinned forever: each known-bad
/// schedule must keep being survived (zero violations) while demonstrably
/// firing the adversary machinery — a silent no-op would hollow the pin
/// out. CI runs every `pathology_` test in release mode as its own step.
#[test]
fn pathology_pinned_schedules_run_clean_with_live_adversary_machinery() {
    let catalog = pathology_catalog();
    assert!(catalog.len() >= 2, "CI pins at least two pathologies");
    for pathology in &catalog {
        let report = pathology.run();
        assert!(
            report.verified().is_ok(),
            "{}: a pinned pathology schedule now violates: {:?}",
            pathology.name,
            report.violations
        );
        assert_eq!(
            report.adversary,
            pathology.adversary(),
            "{}",
            pathology.name
        );
        assert!(
            report.engine.adversary.total_perturbed() > 0,
            "{}: the adversary plane never fired — the pin is inert",
            pathology.name
        );
        assert!(
            report.engine.adversary.max_skew_ns > 0,
            "{}: no arrival was actually displaced",
            pathology.name
        );
    }
}

/// The hunt determinism contract at the conformance level: the exact CI
/// smoke configuration replays bit-for-bit (outcome line included, which is
/// what the CI step diffs), and stock TokenB survives the whole search with
/// zero violations.
#[test]
fn pathology_hunt_smoke_configuration_is_bit_for_bit_reproducible() {
    let options = HuntOptions {
        budget: 8,
        ops_per_node: 150,
        ..HuntOptions::default()
    };
    let a = hunt(&options);
    let b = hunt(&options);
    assert_eq!(a.to_string(), b.to_string(), "hunt outcome must replay");
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_objective, b.best_objective);
    assert!(
        a.failure.is_none(),
        "stock TokenB must survive the full hunt: {a}"
    );
    assert!(a.best_objective >= a.baseline_objective);
}

/// The oracle's positive control: a deliberately broken arbiter (the
/// test-only sabotage knob silently drops persistent requests at the victim
/// node) must be *caught* by the starvation/fairness oracle as a structured
/// `Starvation` violation, and the shrinker must hand back a minimal
/// `(ops, adversary)` repro that still carries the sabotage — proof the
/// fairness machinery detects exactly the failure class it was built for,
/// not merely that healthy runs pass.
#[test]
fn pathology_sabotaged_arbiter_is_caught_and_shrunk_by_the_starvation_oracle() {
    let scenario = Scenario::by_name("hot_block_contention").unwrap();
    // Message loss is what drives requesters into the persistent-request
    // machinery at all (fault-free contention resolves at the transient
    // level); the sabotage then swallows the escalations at one arbiter.
    // 3000 ops/node keeps the other nodes busy long past the oracle's
    // bounded-wait horizon, so the victim's wedge is observable as
    // starvation rather than only as an end-of-run deadlock.
    let faults = FaultSpec::none().with_drop(0.02);
    let ops_per_node = 3_000;
    let (failure, sabotage) = (0..scenario.num_nodes as u32)
        .flat_map(|victim| [1u64, 2, 12].map(|seed| (victim, seed)))
        .find_map(|(victim, seed)| {
            let spec = AdversarySpec::none().with_victim(victim, 0).with_sabotage();
            let report =
                scenario.run_adversarial(ProtocolKind::TokenB, seed, ops_per_node, faults, spec);
            if !report
                .violations
                .iter()
                .any(|v| matches!(v, InvariantViolation::Starvation { .. }))
            {
                return None;
            }
            check_adversarial(
                ProtocolKind::TokenB,
                &scenario,
                seed,
                ops_per_node,
                faults,
                spec,
                &report,
            )
            .map(|f| (f, spec))
        })
        .expect(
            "no (victim, seed) probe starved under a sabotaged arbiter — \
             the fairness oracle's positive control is dead",
        );

    let minimal = shrink(&failure, &scenario);
    assert!(minimal.ops_per_node <= failure.ops_per_node);
    assert_ne!(
        minimal.adversary.sabotage, 0,
        "shrinking removed the sabotage the failure needs"
    );
    assert!(
        minimal
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::Starvation { .. })),
        "the minimal repro lost the starvation: {:?}",
        minimal.violations
    );
    // The recipe replays bit-for-bit, violations included.
    let replay = scenario.run_adversarial(
        ProtocolKind::TokenB,
        minimal.seed,
        minimal.ops_per_node,
        minimal.faults,
        minimal.adversary,
    );
    assert_eq!(replay.violations, minimal.violations);
    // And the printed replay recipe names the adversarial entry point.
    let text = minimal.to_string();
    assert!(text.contains("run_adversarial"), "{text}");
    assert!(text.contains("sabotage=1"), "{text}");
    let _ = sabotage;
}

/// Replaying a failing seed must be bit-identical: the failure reporter's
/// replay recipe is only trustworthy if `(protocol, scenario, seed, ops)`
/// fully determines the run.
#[test]
fn conformance_cells_replay_identically() {
    let scenario = Scenario::by_name("eviction_storm").unwrap();
    for protocol in ProtocolKind::ALL {
        let a = scenario.run_with_ops(protocol, 0xD00D, 200);
        let b = scenario.run_with_ops(protocol, 0xD00D, 200);
        assert_eq!(a.runtime_cycles, b.runtime_cycles, "{protocol}");
        assert_eq!(a.total_ops, b.total_ops, "{protocol}");
        assert_eq!(
            a.traffic.total_link_bytes(),
            b.traffic.total_link_bytes(),
            "{protocol}"
        );
        assert_eq!(a.violations, b.violations, "{protocol}");
    }
}
