//! The motivating race of Figure 2 of the paper, reproduced message by
//! message.
//!
//! Processor P0 wants to write a block while processor P1 wants to read it.
//! On an unordered interconnect the two broadcasts race: P1 answers P0's
//! request with nothing useful (it has no copy yet), the home memory answers
//! P1 first, and P0 ends up with *most* — but not all — of the tokens. With a
//! naive protocol P0 would now believe it may write while P1 still holds a
//! readable copy. Under Token Coherence P0 simply cannot write until it holds
//! every token, so it reissues its request and P1 hands over the missing
//! token: the race costs latency, never correctness.
//!
//! Run with:
//!
//! ```text
//! cargo run --example race_figure2
//! ```

use token_coherence::core::TokenBController;
use token_coherence::types::{
    Address, BlockAddr, CoherenceController, Cycle, MemOp, MemOpKind, Message, Outbox, ReqId,
    SystemConfig, TimerKind,
};

fn deliver(messages: &[Message], to: &mut TokenBController, now: Cycle, log: &str) -> Outbox {
    let mut out = Outbox::new();
    for msg in messages {
        if msg.dest.includes(to.node(), msg.src) {
            println!(
                "  t={now:>4}  {log}: {} receives {}",
                to.node(),
                msg.kind.mnemonic()
            );
            to.handle_message(now, msg, &mut out);
        }
    }
    out
}

fn main() {
    let config = SystemConfig::isca03_default().with_nodes(4);
    let block = BlockAddr::new(0);
    let addr = Address::new(0);

    // Node 0 homes the block; P1 and P2 are the racing processors
    // (named P0 and P1 in the paper's figure).
    let mut home = TokenBController::new(0.into(), &config);
    let mut writer = TokenBController::new(1.into(), &config);
    let mut reader = TokenBController::new(2.into(), &config);

    println!(
        "Figure 2: a GetM from {} races with a GetS from {}",
        writer.node(),
        reader.node()
    );
    println!(
        "The block has {} tokens, all initially at the home memory ({}).\n",
        home.total_tokens(),
        home.node()
    );

    // Step 1: both processors issue their requests at (nearly) the same time.
    let mut writer_out = Outbox::new();
    writer.access(
        0,
        &MemOp::new(ReqId::new(1), addr, MemOpKind::Store),
        &mut writer_out,
    );
    let mut reader_out = Outbox::new();
    reader.access(
        1,
        &MemOp::new(ReqId::new(2), addr, MemOpKind::Load),
        &mut reader_out,
    );
    println!(
        "  t=   0  {} broadcasts a transient GetM (it wants to write)",
        writer.node()
    );
    println!(
        "  t=   1  {} broadcasts a transient GetS (it wants to read)\n",
        reader.node()
    );

    // Step 2: the reader's GetS reaches the home *first* (the writer's GetM is
    // delayed in the congested interconnect, as in the paper's figure).
    let home_response_to_reader = deliver(&reader_out.messages, &mut home, 40, "race");
    // The home gives the reader data plus one token.
    let reader_done = deliver(
        &home_response_to_reader.messages,
        &mut reader,
        140,
        "response",
    );
    println!(
        "  t= 140  {} can now READ the block (it holds {} token(s))  [{} completions]\n",
        reader.node(),
        reader.tokens_held(block),
        reader_done.completions.len()
    );

    // Step 3: the writer's delayed GetM finally reaches the home and the other
    // processors. The home sends the remaining tokens; the reader, which
    // already handled the request before it had any tokens, contributes
    // nothing — exactly the race in the paper.
    let home_response_to_writer = deliver(&writer_out.messages, &mut home, 160, "late GetM");
    deliver(
        &writer_out.messages,
        &mut reader,
        35,
        "early GetM (reader had no tokens yet)",
    );
    deliver(
        &home_response_to_writer.messages,
        &mut writer,
        260,
        "response",
    );
    println!(
        "  t= 260  {} now holds {} of {} tokens: NOT enough to write — safety is preserved\n",
        writer.node(),
        writer.tokens_held(block),
        writer.total_tokens()
    );

    // Step 4: the writer's reissue timer fires; it rebroadcasts the GetM and
    // this time the reader hands over its token (plus data).
    let (fire_at, timer) = writer_out
        .timers
        .iter()
        .find(|(_, t)| t.kind == TimerKind::Reissue)
        .copied()
        .expect("a reissue timer was armed with the original request");
    let mut reissue_out = Outbox::new();
    writer.handle_timer(fire_at, timer, &mut reissue_out);
    println!(
        "  t={fire_at:>4}  {} times out and REISSUES its transient GetM",
        writer.node()
    );

    let reader_reply = deliver(
        &reissue_out.messages,
        &mut reader,
        fire_at + 40,
        "reissued GetM",
    );
    let final_out = deliver(
        &reader_reply.messages,
        &mut writer,
        fire_at + 80,
        "missing token",
    );

    println!(
        "  t={:>4}  {} holds {}/{} tokens and completes its write ({} completion(s))\n",
        fire_at + 80,
        writer.node(),
        writer.tokens_held(block),
        writer.total_tokens(),
        final_out.completions.len()
    );

    assert_eq!(writer.cache_state_name(block), "M");
    assert_eq!(reader.tokens_held(block), 0);
    println!(
        "Final state: {} is in M ({} tokens), {} is invalid — the race was resolved by reissue, \
         with no ordered interconnect and no directory indirection.",
        writer.node(),
        writer.total_tokens(),
        reader.node()
    );
}
