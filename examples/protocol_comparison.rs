//! Compare all four coherence protocols on the same workload: runtime,
//! cache-to-cache behaviour, and interconnect traffic.
//!
//! This is a miniature version of Figures 4 and 5 of the paper: TokenB on
//! the unordered torus against Snooping on the ordered tree, and against the
//! Directory and Hammer protocols on the torus. All four points run as one
//! campaign, fanned out across the machine's cores.
//!
//! Run with (release strongly recommended):
//!
//! ```text
//! cargo run --release --example protocol_comparison [workload] [ops_per_node]
//! ```
//!
//! where `workload` is one of `oltp`, `apache`, `specjbb` (default `oltp`).

use token_coherence::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .get(1)
        .and_then(|name| WorkloadProfile::by_name(name))
        .unwrap_or_else(WorkloadProfile::oltp);
    let ops: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4_000);

    println!(
        "Protocol comparison on the {} workload ({} ops/node, 16 nodes)\n",
        workload.name, ops
    );

    let points: Vec<ExperimentPoint> = ProtocolKind::ALL
        .iter()
        .map(|&protocol| {
            let config = SystemConfig::isca03_default().with_protocol(protocol);
            ExperimentPoint::new(
                format!("{protocol}/{}", config.interconnect.topology),
                config,
                workload.clone(),
            )
        })
        .collect();
    let campaign = Campaign::new(points)
        .options(RunOptions {
            ops_per_node: ops,
            max_cycles: 2_000_000_000,
            ..RunOptions::default()
        })
        .on_progress(|event| eprintln!("  {event}"))
        .run();

    let baseline = campaign
        .reports()
        .find(|r| r.protocol == ProtocolKind::Snooping)
        .map(|r| r.cycles_per_transaction())
        .unwrap_or(1.0);

    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>12} {:>10}",
        "protocol/interconnect", "cycles/txn", "vs Snoop", "c2c misses", "bytes/miss", "checked"
    );
    for report in campaign.reports() {
        println!(
            "{:<22} {:>14.0} {:>9.2}x {:>11.1}% {:>12.1} {:>10}",
            report.label(),
            report.cycles_per_transaction(),
            baseline / report.cycles_per_transaction(),
            100.0 * report.misses.cache_to_cache_fraction(),
            report.bytes_per_miss(),
            if report.verified().is_ok() {
                "ok"
            } else {
                "FAIL"
            }
        );
    }

    println!(
        "\nExpected shape (paper, Figures 4a & 5a): TokenB/Torus is the fastest; Snooping/Tree and \
         TokenB/Tree are close to each other; Hammer beats Directory (no directory lookup) but \
         both pay the home indirection; Hammer uses the most interconnect traffic, Directory the least."
    );
    println!(
        "(campaign: {} points in {:.1} s across {} threads)",
        campaign.runs.len(),
        campaign.wall_seconds,
        campaign.threads
    );
}
