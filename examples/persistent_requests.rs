//! Starvation avoidance under pathological contention.
//!
//! Every processor hammers a handful of hot migratory blocks, the worst case
//! for a broadcast performance protocol: transient requests race constantly,
//! many must be reissued, and some escalate to persistent requests. The point
//! of the correctness substrate is that even this workload completes with no
//! starvation and no safety violations — the performance protocol can only
//! lose performance, never correctness.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example persistent_requests
//! ```

use token_coherence::prelude::*;

fn main() {
    let config = SystemConfig::isca03_default();

    println!("Hot-block contention on 16 nodes under TokenB (worst case for transient requests)\n");

    for (label, profile) in [
        ("hot-block microbenchmark", WorkloadProfile::hot_block()),
        ("OLTP (realistic sharing)", WorkloadProfile::oltp()),
    ] {
        let mut system = System::build(&config, &profile);
        let report = system.run(RunOptions {
            ops_per_node: 4_000,
            max_cycles: 2_000_000_000,
            ..RunOptions::default()
        });
        let [none, once, more, persistent] = report.table2_row();
        println!("{label}:");
        println!(
            "  misses: {:>8}   not reissued: {:>6.2}%   once: {:>5.2}%   >once: {:>5.2}%   persistent: {:>5.2}%",
            report.reissue.total(),
            none,
            once,
            more,
            persistent
        );
        println!(
            "  persistent requests initiated: {}   arbiter activations: {}   safety checks: {}\n",
            report.controllers.persistent_requests_initiated,
            report.controllers.counter("arbiter_activations"),
            if report.verified().is_ok() {
                "all passed"
            } else {
                "FAILED"
            }
        );
    }

    println!(
        "The contrast is the paper's Table 2 argument in miniature: with realistic commercial \
         sharing, reissued and persistent requests are rare; even when contention is engineered \
         to be extreme, persistent requests keep every processor making progress."
    );
}
