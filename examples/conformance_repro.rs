//! Replays one conformance cell with full post-mortem output, for debugging:
//!
//! ```text
//! conformance_repro <scenario> <protocol> <seed> [ops]
//! ```
//!
//! On a failing cell this prints every violation plus, for each stuck node,
//! the blocks it is waiting on and its controller's full debug state. Set
//! `TC_TRACE_BLOCK=<block-number>` to additionally get the runner's causal
//! send/delivery trace for that block (runs are deterministic, so the trace
//! is exact).

use tc_testkit::Scenario;
use token_coherence::prelude::*;
use token_coherence::types::InvariantViolation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = Scenario::by_name(
        args.get(1)
            .map(|s| s.as_str())
            .unwrap_or("oltp_calibration"),
    )
    .expect("unknown scenario");
    let protocol = match args.get(2).map(|s| s.as_str()).unwrap_or("snooping") {
        "tokenb" => ProtocolKind::TokenB,
        "snooping" => ProtocolKind::Snooping,
        "directory" => ProtocolKind::Directory,
        "hammer" => ProtocolKind::Hammer,
        other => panic!("unknown protocol {other}"),
    };
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let ops: u64 = args
        .get(4)
        .and_then(|s| s.parse().ok())
        .unwrap_or(scenario.ops_per_node);

    // Build the system by hand (rather than through Scenario::run) so the
    // wedged state is still inspectable after the run finishes.
    let config = scenario.config(protocol, seed);
    let mut system = System::build(&config, &scenario.workload);
    let report = system.run(RunOptions {
        ops_per_node: ops,
        max_cycles: scenario.max_cycles,
        ..RunOptions::default()
    });
    println!(
        "{} x {protocol} seed={seed} ops={ops}: cycles={} total_ops={} violations={}",
        scenario.name,
        report.runtime_cycles,
        report.total_ops,
        report.violations.len()
    );
    for violation in &report.violations {
        println!("  {violation}");
    }
    for violation in &report.violations {
        let node = match violation {
            InvariantViolation::Starvation { node, .. }
            | InvariantViolation::Deadlock { node, .. } => *node,
            _ => continue,
        };
        println!(
            "--- stuck {node}: outstanding blocks {:?}",
            system.outstanding_blocks(node)
        );
        println!("{}", system.controller_debug(node));
    }
}
