//! Question 5 of the paper: how does TokenB's broadcast traffic scale with
//! the number of processors, compared with the Directory protocol?
//!
//! The paper reports that at 64 processors TokenB uses roughly twice the
//! interconnect bandwidth of Directory — acceptable when bandwidth is
//! abundant, but a reason to design non-broadcast performance protocols for
//! larger systems.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scalability_sweep [ops_per_node]
//! ```

use token_coherence::prelude::*;

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);
    let workload = WorkloadProfile::uniform_shared();

    println!(
        "Interconnect traffic per miss as the system grows (uniform-sharing microbenchmark)\n"
    );
    println!(
        "{:>6} {:>18} {:>18} {:>18} {:>12}",
        "nodes", "TokenB bytes/miss", "Directory B/miss", "Hammer B/miss", "TokenB/Dir"
    );

    for nodes in [8usize, 16, 32, 64] {
        let mut per_protocol = Vec::new();
        for protocol in [
            ProtocolKind::TokenB,
            ProtocolKind::Directory,
            ProtocolKind::Hammer,
        ] {
            let config = SystemConfig::isca03_default()
                .with_nodes(nodes)
                .with_protocol(protocol)
                .with_topology(TopologyKind::Torus);
            let mut system = System::build(&config, &workload);
            let report = system.run(RunOptions {
                ops_per_node: ops,
                max_cycles: 4_000_000_000,
            });
            assert!(
                report.verified().is_ok(),
                "verification failed at {nodes} nodes"
            );
            per_protocol.push(report.bytes_per_miss());
        }
        println!(
            "{:>6} {:>18.1} {:>18.1} {:>18.1} {:>11.2}x",
            nodes,
            per_protocol[0],
            per_protocol[1],
            per_protocol[2],
            per_protocol[0] / per_protocol[1]
        );
    }

    println!(
        "\nExpected shape (paper, Question 5): the TokenB/Directory traffic ratio grows with the \
         node count and reaches roughly 2x at 64 processors; Hammer grows faster still because \
         of its per-miss acknowledgement storm."
    );
}
