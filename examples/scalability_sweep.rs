//! Question 5 of the paper: how does TokenB's broadcast traffic scale with
//! the number of processors, compared with the Directory protocol?
//!
//! The paper reports that at 64 processors TokenB uses roughly twice the
//! interconnect bandwidth of Directory — acceptable when bandwidth is
//! abundant, but a reason to design non-broadcast performance protocols for
//! larger systems.
//!
//! The whole grid (4 node counts x 3 protocols) runs as one campaign: the
//! driver keeps every core busy on the independently seeded points and the
//! report comes back in submission order, so rows slice out per node count.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scalability_sweep [ops_per_node]
//! ```

use token_coherence::prelude::*;

const NODE_COUNTS: [usize; 4] = [8, 16, 32, 64];
const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::TokenB,
    ProtocolKind::Directory,
    ProtocolKind::Hammer,
];

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);
    let workload = WorkloadProfile::uniform_shared();

    let points: Vec<ExperimentPoint> = NODE_COUNTS
        .iter()
        .flat_map(|&nodes| {
            let workload = workload.clone();
            PROTOCOLS.iter().map(move |&protocol| {
                ExperimentPoint::new(
                    format!("{protocol}-{nodes}p"),
                    SystemConfig::isca03_default()
                        .with_nodes(nodes)
                        .with_protocol(protocol)
                        .with_topology(TopologyKind::Torus),
                    workload.clone(),
                )
            })
        })
        .collect();
    let campaign = Campaign::new(points)
        .options(RunOptions {
            ops_per_node: ops,
            max_cycles: 4_000_000_000,
            ..RunOptions::default()
        })
        .on_progress(|event| eprintln!("  {event}"))
        .run();
    if let Err((label, violation)) = campaign.verified() {
        panic!("verification failed in {label}: {violation}");
    }

    println!(
        "Interconnect traffic per miss as the system grows (uniform-sharing microbenchmark)\n"
    );
    println!(
        "{:>6} {:>18} {:>18} {:>18} {:>12}",
        "nodes", "TokenB bytes/miss", "Directory B/miss", "Hammer B/miss", "TokenB/Dir"
    );
    for (i, nodes) in NODE_COUNTS.iter().enumerate() {
        let slice = campaign.slice(i * PROTOCOLS.len(), PROTOCOLS.len());
        let per_protocol: Vec<f64> = slice.reports().map(|r| r.bytes_per_miss()).collect();
        println!(
            "{:>6} {:>18.1} {:>18.1} {:>18.1} {:>11.2}x",
            nodes,
            per_protocol[0],
            per_protocol[1],
            per_protocol[2],
            per_protocol[0] / per_protocol[1]
        );
    }

    println!(
        "\nExpected shape (paper, Question 5): the TokenB/Directory traffic ratio grows with the \
         node count and reaches roughly 2x at 64 processors; Hammer grows faster still because \
         of its per-miss acknowledgement storm."
    );
    println!(
        "(campaign: {} points in {:.1} s across {} threads)",
        campaign.runs.len(),
        campaign.wall_seconds,
        campaign.threads
    );
}
