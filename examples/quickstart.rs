//! Quickstart: build the paper's 16-processor target system, run an
//! OLTP-like workload under TokenB, and print the headline measurements —
//! then run a small campaign comparing TokenB against the directory
//! baseline across worker threads.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use token_coherence::prelude::*;

fn main() {
    // Table 1 of the paper: 16 nodes, 128 kB L1s, 4 MB L2, 64 B blocks,
    // 80 ns DRAM, 3.2 GB/s 15 ns links, TokenB on the unordered torus.
    let config = SystemConfig::isca03_default();
    let workload = WorkloadProfile::oltp();

    println!(
        "Running {} on the {} interconnect, {} nodes, workload {}...",
        config.protocol, config.interconnect.topology, config.num_nodes, workload.name
    );

    // One system, driven directly.
    let mut system = System::build(&config, &workload);
    let report = system.run(RunOptions {
        ops_per_node: 5_000,
        max_cycles: 1_000_000_000,
        ..RunOptions::default()
    });

    println!("\n{report}\n");

    let [none, once, more, persistent] = report.table2_row();
    println!("Reissue behaviour (Table 2 of the paper):");
    println!("  not reissued:        {none:6.2}%");
    println!("  reissued once:       {once:6.2}%");
    println!("  reissued > once:     {more:6.2}%");
    println!("  persistent requests: {persistent:6.2}%");

    match report.verified() {
        Ok(()) => println!("\nAll safety and starvation-freedom checks passed."),
        Err(violation) => println!("\nVIOLATION DETECTED: {violation}"),
    }

    // A whole experiment set, driven by the campaign API: each point is an
    // independently seeded simulation, so the driver fans them out across
    // OS threads without changing any result.
    let points = vec![
        ExperimentPoint::new("TokenB-Torus", config.clone(), workload.clone()),
        ExperimentPoint::new(
            "Directory-Torus",
            config.with_protocol(ProtocolKind::Directory),
            workload,
        ),
    ];
    let campaign = Campaign::new(points)
        .options(RunOptions {
            ops_per_node: 5_000,
            max_cycles: 1_000_000_000,
            ..RunOptions::default()
        })
        .on_progress(|event| eprintln!("  {event}"))
        .run();
    println!(
        "\n{}",
        campaign.render_runtime_table("TokenB vs Directory (normalized runtime)")
    );
    println!(
        "campaign: {} points in {:.1} s across {} threads",
        campaign.runs.len(),
        campaign.wall_seconds,
        campaign.threads
    );
}
