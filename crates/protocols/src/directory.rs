//! Full-map blocking directory protocol (Origin 2000 / Alpha 21364 style).
//!
//! Every block's home node keeps a full-map directory entry: the current
//! owner (a cache, or memory itself) and the set of sharers. Requests are
//! sent to the home, which either answers from memory, forwards the request
//! to the owning cache, and/or issues invalidations; requesters collect
//! invalidation acknowledgements and finish the transaction with an unblock
//! message. The home *blocks* (queues) later requests for a block while one
//! is in flight, so no negative acknowledgements or retries are needed.
//!
//! The cost of this design — and the reason the paper builds TokenB — is the
//! indirection: every cache-to-cache miss takes three interconnect traversals
//! (requester → home → owner → requester) plus the directory lookup, which
//! in the base system lives in DRAM.

use std::collections::{BTreeSet, VecDeque};

use tc_memsys::{HomeMemory, L1Filter, MshrTable, OpList, OpSlab, SetAssocCache};
use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AccessOutcome, BlockAddr, BlockAudit, CoherenceController, ControllerStats, Cycle, DataPayload,
    Destination, DirectoryMode, HomeMap, LineStateStats, MemOp, Message, MissCompletion, MsgKind,
    NodeId, Outbox, ReqId, SystemConfig, Timer, Vnet,
};

use crate::common::{
    apply_pending_ops, emit_mosi_line, emit_pending_op, miss_kind, mosi_hit_path, read_mosi_line,
    read_pending_op, record_completed_miss, version_node_bits, MosiLine, MosiState, PendingOp,
    WritebackPlane,
};

/// Requester-side bookkeeping for an outstanding directory miss. The
/// pending-op list lives in the controller's [`OpSlab`] pool.
#[derive(Debug)]
struct DirMshr {
    pending: OpList,
    write: bool,
    upgrade: bool,
    issued_at: Cycle,
    data_received: bool,
    exclusive: bool,
    acks_expected: Option<u32>,
    acks_received: u32,
    version: u64,
    dirty: bool,
    from_cache: bool,
}

/// The home node's directory entry for one block.
#[derive(Debug, Clone, Default)]
struct DirEntry {
    owner: Option<NodeId>,
    sharers: BTreeSet<NodeId>,
    busy: bool,
    queue: VecDeque<(NodeId, bool)>,
}

/// The directory-protocol controller for one node (cache side plus the
/// directory/home side for the blocks it homes).
#[derive(Debug)]
pub struct DirectoryController {
    node: NodeId,
    home_map: HomeMap,
    l1: L1Filter,
    l2: SetAssocCache<MosiLine>,
    l2_latency: Cycle,
    controller_latency: Cycle,
    dram_latency: Cycle,
    directory_latency: Cycle,
    memory: HomeMemory<DirEntry>,
    mshrs: MshrTable<DirMshr>,
    /// In-flight writebacks (PutM sent, WbAck pending) on the shared plane.
    wb: WritebackPlane,
    migratory_optimization: bool,
    stats: ControllerStats,
    store_counter: u64,
    /// Pooled storage for every MSHR entry's pending-op list.
    pending_ops: OpSlab<PendingOp>,
    /// Reusable completion/deferral scratch for `apply_pending_ops`.
    completion_scratch: Vec<(ReqId, u64)>,
    deferred_scratch: Vec<PendingOp>,
}

impl DirectoryController {
    /// Creates the directory controller for `node` under `config`.
    pub fn new(node: NodeId, config: &SystemConfig) -> Self {
        let home_map = HomeMap::new(config.num_nodes, config.block_bytes);
        let directory_latency = match config.directory_mode {
            DirectoryMode::InDram => config.dram_latency_ns,
            DirectoryMode::Perfect => 0,
        };
        DirectoryController {
            node,
            home_map,
            l1: L1Filter::new(&config.l1, config.block_bytes),
            l2: SetAssocCache::new(&config.l2, config.block_bytes),
            l2_latency: config.l2.latency_ns,
            controller_latency: config.controller_latency_ns,
            dram_latency: config.dram_latency_ns,
            directory_latency,
            memory: HomeMemory::new(node, home_map, config.dram_latency_ns),
            mshrs: MshrTable::new(config.processor.max_outstanding_misses.max(1)),
            wb: WritebackPlane::new(),
            migratory_optimization: config.token.migratory_optimization,
            stats: ControllerStats::new(),
            store_counter: 0,
            pending_ops: OpSlab::new(),
            completion_scratch: Vec::new(),
            deferred_scratch: Vec::new(),
        }
    }

    fn is_home(&self, addr: BlockAddr) -> bool {
        self.home_map.is_home(self.node, addr)
    }

    fn home_of(&self, addr: BlockAddr) -> NodeId {
        self.home_map.home_of(addr)
    }

    fn send(&mut self, out: &mut Outbox, msg: Message) {
        self.stats.messages_sent += 1;
        out.send(msg);
    }

    fn unicast(
        &self,
        at: Cycle,
        dest: NodeId,
        addr: BlockAddr,
        kind: MsgKind,
        vnet: Vnet,
    ) -> Message {
        Message::new(self.node, Destination::Node(dest), addr, kind, vnet, at)
    }

    // ------------------------------------------------------------------
    // Home / directory side.
    // ------------------------------------------------------------------

    fn home_handle_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        debug_assert!(self.is_home(addr));
        self.stats.bump("directory_lookups", 1);
        let entry = self.memory.state_mut(addr);
        if entry.busy {
            entry.queue.push_back((requester, write));
            return;
        }
        self.process_at_home(now, requester, addr, write, out);
    }

    fn process_at_home(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        let dir_delay = self.controller_latency + self.directory_latency;
        let mem_delay = self.controller_latency + self.directory_latency + self.dram_latency;
        let mem_version = self.memory.data_version(addr);
        let entry = self.memory.state_mut(addr);
        let owner = entry.owner;
        let sharers = entry.sharers.clone();

        if write {
            entry.busy = true;
            let other_sharers: Vec<NodeId> = sharers
                .iter()
                .copied()
                .filter(|s| *s != requester && Some(*s) != owner)
                .collect();
            let acks = other_sharers.len() as u32;
            entry.sharers.clear();
            match owner {
                Some(current_owner) if current_owner != requester => {
                    // Forward to the owning cache; it supplies exclusive data
                    // directly to the requester.
                    entry.owner = Some(requester);
                    let fwd = self.unicast(
                        now + dir_delay,
                        current_owner,
                        addr,
                        MsgKind::FwdGetM {
                            requester,
                            acks_expected: acks,
                        },
                        Vnet::Forwarded,
                    );
                    self.send(out, fwd);
                    self.stats.bump("directory_forwards", 1);
                }
                _ => {
                    // Memory owns the block (or the requester is upgrading a
                    // block it already owns): memory supplies the data.
                    entry.owner = Some(requester);
                    let data = self.unicast(
                        now + mem_delay,
                        requester,
                        addr,
                        MsgKind::Data {
                            acks_expected: acks,
                            exclusive: true,
                            from_memory: true,
                            payload: DataPayload::new(mem_version),
                        },
                        Vnet::Response,
                    );
                    self.send(out, data);
                }
            }
            for sharer in other_sharers {
                let inv = self.unicast(
                    now + dir_delay,
                    sharer,
                    addr,
                    MsgKind::Inv { requester },
                    Vnet::Forwarded,
                );
                self.send(out, inv);
                self.stats.bump("invalidations_sent", 1);
            }
        } else {
            match owner {
                Some(current_owner) if current_owner != requester => {
                    let entry = self.memory.state_mut(addr);
                    entry.busy = true;
                    entry.sharers.insert(requester);
                    let fwd = self.unicast(
                        now + dir_delay,
                        current_owner,
                        addr,
                        MsgKind::FwdGetS { requester },
                        Vnet::Forwarded,
                    );
                    self.send(out, fwd);
                    self.stats.bump("directory_forwards", 1);
                }
                _ => {
                    // Memory owns the block: respond directly. The entry
                    // still blocks until the requester's unblock so that a
                    // racing GetM cannot invalidate the requester before its
                    // data arrives.
                    let entry = self.memory.state_mut(addr);
                    entry.busy = true;
                    entry.sharers.insert(requester);
                    let data = self.unicast(
                        now + mem_delay,
                        requester,
                        addr,
                        MsgKind::Data {
                            acks_expected: 0,
                            exclusive: false,
                            from_memory: true,
                            payload: DataPayload::new(mem_version),
                        },
                        Vnet::Response,
                    );
                    self.send(out, data);
                }
            }
        }
    }

    fn home_handle_unblock(
        &mut self,
        now: Cycle,
        from: NodeId,
        addr: BlockAddr,
        exclusive: bool,
        out: &mut Outbox,
    ) {
        {
            let entry = self.memory.state_mut(addr);
            if exclusive {
                entry.owner = Some(from);
                entry.sharers.clear();
            } else {
                entry.sharers.insert(from);
            }
            entry.busy = false;
        }
        // Serve the next queued request, if any.
        let next = {
            let entry = self.memory.state_mut(addr);
            entry.queue.pop_front()
        };
        if let Some((requester, write)) = next {
            self.process_at_home(now, requester, addr, write, out);
        }
    }

    fn home_handle_putm(
        &mut self,
        now: Cycle,
        from: NodeId,
        addr: BlockAddr,
        version: u64,
        out: &mut Outbox,
    ) {
        self.memory.write_data(addr, version);
        {
            let entry = self.memory.state_mut(addr);
            if entry.owner == Some(from) && !entry.busy {
                entry.owner = None;
            }
            entry.sharers.remove(&from);
        }
        let ack = self.unicast(
            now + self.controller_latency + self.directory_latency,
            from,
            addr,
            MsgKind::WbAck,
            Vnet::Response,
        );
        self.send(out, ack);
    }

    // ------------------------------------------------------------------
    // Cache side.
    // ------------------------------------------------------------------

    fn line_or_wb(&self, addr: BlockAddr) -> Option<MosiLine> {
        self.l2.peek(addr).copied().or_else(|| self.wb.line(addr))
    }

    fn install_line(&mut self, now: Cycle, addr: BlockAddr, line: MosiLine, out: &mut Outbox) {
        if let Some(victim) = self.l2.insert(addr, line) {
            self.evict(now, victim.addr, victim.state, out);
        }
    }

    fn evict(&mut self, now: Cycle, addr: BlockAddr, line: MosiLine, out: &mut Outbox) {
        self.l1.invalidate(addr);
        if line.state.is_owner() {
            self.stats.misses.writebacks += 1;
            self.wb.stash(addr, line);
            let home = self.home_of(addr);
            let putm = Message::new(
                self.node,
                Destination::Node(home),
                addr,
                MsgKind::PutM,
                Vnet::Writeback,
                now + self.controller_latency,
            )
            .with_req_id(ReqId::new(line.version));
            self.send(out, putm);
        }
        // Shared lines are dropped silently; the directory's sharer list may
        // over-approximate, which only costs an occasional spurious
        // invalidation (answered with an ack as usual).
    }

    fn handle_forward(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        acks_expected: u32,
        out: &mut Outbox,
    ) {
        let Some(line) = self.line_or_wb(addr) else {
            self.stats.bump("forwards_without_copy", 1);
            return;
        };
        let at = now + self.controller_latency + self.l2_latency;
        if write {
            let data = self.unicast(
                at,
                requester,
                addr,
                MsgKind::Data {
                    acks_expected,
                    exclusive: true,
                    from_memory: false,
                    payload: DataPayload::new(line.version),
                },
                Vnet::Response,
            );
            self.send(out, data);
            self.l2.remove(addr);
            self.l1.invalidate(addr);
        } else {
            let migratory =
                self.migratory_optimization && line.state == MosiState::Modified && line.dirty;
            if migratory {
                let data = self.unicast(
                    at,
                    requester,
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive: true,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Response,
                );
                self.send(out, data);
                self.l2.remove(addr);
                self.l1.invalidate(addr);
            } else {
                let data = self.unicast(
                    at,
                    requester,
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive: false,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Response,
                );
                self.send(out, data);
                if let Some(l) = self.l2.get(addr) {
                    l.state = MosiState::Owned;
                }
            }
        }
    }

    fn handle_inv(&mut self, now: Cycle, requester: NodeId, addr: BlockAddr, out: &mut Outbox) {
        if let Some(line) = self.l2.peek(addr).copied() {
            if !line.state.is_owner() {
                self.l2.remove(addr);
            }
        }
        self.l1.invalidate(addr);
        let ack = self.unicast(
            now + self.controller_latency,
            requester,
            addr,
            MsgKind::InvAck,
            Vnet::Response,
        );
        self.send(out, ack);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_data(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        acks_expected: u32,
        exclusive: bool,
        from_memory: bool,
        payload: DataPayload,
        out: &mut Outbox,
    ) {
        let Some(mshr) = self.mshrs.get_mut(addr) else {
            return;
        };
        mshr.data_received = true;
        mshr.exclusive |= exclusive;
        mshr.version = payload.version;
        mshr.dirty = !from_memory;
        mshr.from_cache |= !from_memory;
        let expected = mshr.acks_expected.unwrap_or(0).max(acks_expected);
        mshr.acks_expected = Some(expected);
        self.try_complete(now, addr, out);
    }

    fn handle_inv_ack(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            mshr.acks_received += 1;
        }
        self.try_complete(now, addr, out);
    }

    fn try_complete(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let Some(mshr) = self.mshrs.get(addr) else {
            return;
        };
        if !mshr.data_received {
            return;
        }
        if mshr.write {
            let expected = mshr.acks_expected.unwrap_or(0);
            if mshr.acks_received < expected {
                return;
            }
        }
        let mut mshr = self.mshrs.release(addr).expect("checked above");

        // Install the line.
        let granted_exclusive = mshr.write || mshr.exclusive;
        let state = if granted_exclusive {
            MosiState::Modified
        } else {
            MosiState::Shared
        };
        let mut line = MosiLine {
            state,
            dirty: mshr.dirty && state.is_owner(),
            version: mshr.version,
            valid_since: mshr.issued_at,
        };
        // Stores merged into a read miss cannot be performed with only a
        // shared copy; they are re-issued below as an upgrade transaction.
        apply_pending_ops(
            &mut line,
            self.pending_ops.iter(&mshr.pending),
            granted_exclusive,
            &mut self.store_counter,
            version_node_bits(self.node),
            &mut self.completion_scratch,
            &mut self.deferred_scratch,
        );
        self.pending_ops.clear(&mut mshr.pending);
        self.install_line(now, addr, line, out);

        let kind = miss_kind(mshr.write, mshr.upgrade);
        for (req_id, version) in self.completion_scratch.drain(..) {
            out.complete(MissCompletion {
                req_id,
                addr,
                kind,
                issued_at: mshr.issued_at,
                completed_at: now,
                data_version: version,
                cache_to_cache: mshr.from_cache,
            });
        }

        let latency = now.saturating_sub(mshr.issued_at);
        record_completed_miss(&mut self.stats, kind, latency, mshr.from_cache);

        // Tell the home the transaction is over so it can unblock.
        let home = self.home_of(addr);
        let unblock_kind = if granted_exclusive {
            MsgKind::ExclusiveUnblock
        } else {
            MsgKind::Unblock
        };
        let unblock = self.unicast(
            now + self.controller_latency,
            home,
            addr,
            unblock_kind,
            Vnet::Response,
        );
        self.send(out, unblock);

        // Re-issue any stores that merged into this read miss as a fresh
        // upgrade transaction.
        if !self.deferred_scratch.is_empty() {
            self.stats.bump("merged_store_upgrades", 1);
            let mut deferred = OpList::new();
            for i in 0..self.deferred_scratch.len() {
                let op = self.deferred_scratch[i];
                self.pending_ops.push(&mut deferred, op);
            }
            self.deferred_scratch.clear();
            let upgrade = DirMshr {
                pending: deferred,
                write: true,
                upgrade: true,
                issued_at: now,
                data_received: false,
                exclusive: false,
                acks_expected: None,
                acks_received: 0,
                version: 0,
                dirty: false,
                from_cache: false,
            };
            self.mshrs
                .allocate(addr, upgrade)
                .unwrap_or_else(|_| panic!("upgrade MSHR conflict at {}", self.node));
            let getm = self.unicast(
                now + self.controller_latency,
                home,
                addr,
                MsgKind::GetM,
                Vnet::Request,
            );
            self.send(out, getm);
        }
    }
}

impl CoherenceController for DirectoryController {
    fn node(&self) -> NodeId {
        self.node
    }

    fn protocol_name(&self) -> &'static str {
        "Directory"
    }

    fn access(&mut self, now: Cycle, op: &MemOp, out: &mut Outbox) -> AccessOutcome {
        let addr = op.addr.block(self.home_map.block_bytes());
        let write = op.kind.is_write();
        // Directory hits are acknowledgement-protected, so read hits are
        // wall-clock fresh (`valid_since = now`).
        if let Some(outcome) = mosi_hit_path(
            &mut self.l1,
            &mut self.l2,
            addr,
            write,
            now,
            self.l2_latency,
            &mut self.store_counter,
            version_node_bits(self.node),
            &mut self.stats.misses,
            false,
        ) {
            return outcome;
        }

        let had_copy = self
            .l2
            .peek(addr)
            .map(|l| l.state.readable())
            .unwrap_or(false);
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            // Merge into the outstanding miss. A store merged into a read
            // miss is satisfied later: if the read returns without write
            // permission, the store is re-issued as an upgrade transaction
            // when the read completes (see `try_complete`).
            self.pending_ops.push(
                &mut mshr.pending,
                PendingOp {
                    req_id: op.id,
                    write,
                },
            );
            return AccessOutcome::Miss;
        }

        let mshr = DirMshr {
            pending: self.pending_ops.singleton(PendingOp {
                req_id: op.id,
                write,
            }),
            write,
            upgrade: write && had_copy,
            issued_at: now,
            data_received: false,
            exclusive: false,
            acks_expected: None,
            acks_received: 0,
            version: 0,
            dirty: false,
            from_cache: false,
        };
        self.mshrs
            .allocate(addr, mshr)
            .unwrap_or_else(|_| panic!("MSHR overflow at {}", self.node));
        let home = self.home_of(addr);
        let kind = if write { MsgKind::GetM } else { MsgKind::GetS };
        let msg = self.unicast(
            now + self.controller_latency,
            home,
            addr,
            kind,
            Vnet::Request,
        );
        self.send(out, msg);
        AccessOutcome::Miss
    }

    fn handle_message(&mut self, now: Cycle, msg: &Message, out: &mut Outbox) {
        self.stats.messages_received += 1;
        let addr = msg.addr;
        match &msg.kind {
            MsgKind::GetS => self.home_handle_request(now, msg.src, addr, false, out),
            MsgKind::GetM => self.home_handle_request(now, msg.src, addr, true, out),
            MsgKind::FwdGetS { requester } => {
                self.handle_forward(now, *requester, addr, false, 0, out)
            }
            MsgKind::FwdGetM {
                requester,
                acks_expected,
            } => self.handle_forward(now, *requester, addr, true, *acks_expected, out),
            MsgKind::Inv { requester } => self.handle_inv(now, *requester, addr, out),
            MsgKind::Data {
                acks_expected,
                exclusive,
                from_memory,
                payload,
            } => self.handle_data(
                now,
                addr,
                *acks_expected,
                *exclusive,
                *from_memory,
                *payload,
                out,
            ),
            MsgKind::InvAck => self.handle_inv_ack(now, addr, out),
            MsgKind::Unblock => self.home_handle_unblock(now, msg.src, addr, false, out),
            MsgKind::ExclusiveUnblock => self.home_handle_unblock(now, msg.src, addr, true, out),
            MsgKind::PutM => {
                let version = msg.req_id.map(|r| r.value()).unwrap_or(0);
                self.home_handle_putm(now, msg.src, addr, version, out);
            }
            MsgKind::WbAck => {
                self.wb.take(addr);
            }
            other => {
                debug_assert!(false, "Directory received unexpected message {other:?}");
            }
        }
    }

    fn handle_timer(&mut self, _now: Cycle, _timer: Timer, _out: &mut Outbox) {
        // The directory protocol arms no timers.
    }

    fn stats(&self) -> ControllerStats {
        self.stats.clone()
    }

    fn audit_block(&self, addr: BlockAddr) -> Vec<BlockAudit> {
        let mut audits = Vec::new();
        if let Some(line) = self.l2.peek(addr) {
            audits.push(BlockAudit {
                tokens: 0,
                owner_token: line.state.is_owner(),
                readable: line.state.readable(),
                writable: line.state.writable(),
                data_version: line.version,
                in_memory: false,
            });
        }
        audits
    }

    fn audited_blocks(&self) -> Vec<BlockAddr> {
        self.l2.blocks()
    }

    fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    fn outstanding_blocks(&self) -> Vec<BlockAddr> {
        self.mshrs.blocks_sorted()
    }

    fn line_state_stats(&self) -> LineStateStats {
        let (wb_buffer_peak, wb_window_peak) = self.wb.peaks();
        LineStateStats {
            mshr_peak: self.mshrs.high_water() as u64,
            wb_buffer_peak,
            wb_window_peak,
            home_peak: self.memory.entries_high_water(),
            persistent_peak: 0,
            state_bytes: self.mshrs.state_bytes()
                + self.wb.state_bytes()
                + self.memory.state_bytes(),
            retired_bytes_est: self.mshrs.retired_bytes_estimate()
                + self.wb.retired_bytes_estimate()
                + self.memory.retired_bytes_estimate(),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.store_counter);
        self.stats.save_state(w);
        self.l1.save_state(w);
        self.l2.save_state(w, emit_mosi_line);
        self.memory.save_state(w, emit_dir_entry);
        self.mshrs
            .save_state(w, |w, mshr| emit_dir_mshr(w, mshr, &self.pending_ops));
        self.wb.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.store_counter = r.u64()?;
        self.stats = ControllerStats::load_state(r)?;
        self.l1.load_state(r)?;
        self.l2.load_state(r, read_mosi_line)?;
        self.memory.load_state(r, read_dir_entry)?;
        // Rebuild the pending-op pool from scratch; handles saved inside the
        // reloaded MSHR entries are re-minted as they are read.
        self.pending_ops.reset();
        let slab = &mut self.pending_ops;
        self.mshrs.load_state(r, |r| read_dir_mshr(r, slab))?;
        self.wb.load_state(r)?;
        Ok(())
    }
}

fn emit_dir_entry(w: &mut SnapWriter, entry: &DirEntry) {
    w.option(entry.owner, |w, owner| w.u32(owner.index() as u32));
    w.seq(entry.sharers.iter(), |w, s| w.u32(s.index() as u32));
    w.bool(entry.busy);
    w.seq(entry.queue.iter(), |w, &(node, write)| {
        w.u32(node.index() as u32);
        w.bool(write);
    });
}

fn read_dir_entry(r: &mut SnapReader<'_>) -> Result<DirEntry, SnapshotError> {
    let owner = r.option(|r| Ok(NodeId::new(r.u32()? as usize)))?;
    let sharer_len = r.bounded_len(4)?;
    let mut sharers = BTreeSet::new();
    for _ in 0..sharer_len {
        sharers.insert(NodeId::new(r.u32()? as usize));
    }
    let busy = r.bool()?;
    let queue_len = r.bounded_len(5)?;
    let mut queue = VecDeque::with_capacity(queue_len);
    for _ in 0..queue_len {
        queue.push_back((NodeId::new(r.u32()? as usize), r.bool()?));
    }
    Ok(DirEntry {
        owner,
        sharers,
        busy,
        queue,
    })
}

fn emit_dir_mshr(w: &mut SnapWriter, mshr: &DirMshr, slab: &OpSlab<PendingOp>) {
    w.seq(slab.iter(&mshr.pending), emit_pending_op);
    w.bool(mshr.write);
    w.bool(mshr.upgrade);
    w.u64(mshr.issued_at);
    w.bool(mshr.data_received);
    w.bool(mshr.exclusive);
    w.option(mshr.acks_expected, |w, acks| w.u32(acks));
    w.u32(mshr.acks_received);
    w.u64(mshr.version);
    w.bool(mshr.dirty);
    w.bool(mshr.from_cache);
}

fn read_dir_mshr(
    r: &mut SnapReader<'_>,
    slab: &mut OpSlab<PendingOp>,
) -> Result<DirMshr, SnapshotError> {
    let pending_len = r.bounded_len(9)?;
    let mut pending = OpList::new();
    for _ in 0..pending_len {
        slab.push(&mut pending, read_pending_op(r)?);
    }
    Ok(DirMshr {
        pending,
        write: r.bool()?,
        upgrade: r.bool()?,
        issued_at: r.u64()?,
        data_received: r.bool()?,
        exclusive: r.bool()?,
        acks_expected: r.option(|r| r.u32())?,
        acks_received: r.u32()?,
        version: r.u64()?,
        dirty: r.bool()?,
        from_cache: r.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{Address, MemOpKind, MissKind};

    fn config() -> SystemConfig {
        SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(tc_types::ProtocolKind::Directory)
            .with_topology(tc_types::TopologyKind::Torus)
    }

    fn controller(node: usize) -> DirectoryController {
        DirectoryController::new(NodeId::new(node), &config())
    }

    fn load(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Load)
    }

    fn store(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Store)
    }

    fn deliver(out: &Outbox, to: &mut DirectoryController, now: Cycle) -> Outbox {
        let mut next = Outbox::new();
        for msg in &out.messages {
            if msg.dest.includes(to.node(), msg.src) {
                to.handle_message(now, msg, &mut next);
            }
        }
        next
    }

    #[test]
    fn steady_state_miss_traffic_recycles_pending_op_storage() {
        let mut home = controller(0);
        let mut requester = controller(1);

        // Warm-up: a read miss with a store merged into it exercises both
        // the merge path and the deferred-upgrade re-issue path, so the pool
        // reaches its deepest population immediately.
        let mut out = Outbox::new();
        requester.access(0, &load(0, 1), &mut out);
        requester.access(1, &store(0, 2), &mut out);
        let home_out = deliver(&out, &mut home, 10);
        let done = deliver(&home_out, &mut requester, 100);
        let home_out = deliver(&done, &mut home, 110);
        let done = deliver(&home_out, &mut requester, 200);
        deliver(&done, &mut home, 210);
        assert_eq!(requester.outstanding_misses(), 0);
        let (fresh_after_warmup, _) = requester.pending_ops.counters();
        assert!(fresh_after_warmup >= 2);

        // Steady state: churn many more misses (distinct home-0 blocks so
        // each access is a genuine miss) than the warm-up population.
        for round in 1..200u64 {
            let addr = round * 4 * 64;
            let at = 1_000 * round;
            let mut out = Outbox::new();
            requester.access(at, &load(addr, 2 * round + 1), &mut out);
            let home_out = deliver(&out, &mut home, at + 10);
            let done = deliver(&home_out, &mut requester, at + 100);
            deliver(&done, &mut home, at + 110);
            assert_eq!(requester.outstanding_misses(), 0);
        }

        let (fresh, recycled) = requester.pending_ops.counters();
        assert_eq!(
            fresh, fresh_after_warmup,
            "steady-state misses must recycle pending-op storage, not grow it"
        );
        // 199 steady-state singletons plus the warm-up's deferred-upgrade
        // list, which was already served from the free list.
        assert_eq!(recycled, 200);
        assert_eq!(requester.pending_ops.live(), 0);
    }

    #[test]
    fn read_miss_goes_to_home_and_memory_responds() {
        let mut home = controller(0);
        let mut requester = controller(1);
        let mut out = Outbox::new();
        assert_eq!(
            requester.access(0, &load(0, 1), &mut out),
            AccessOutcome::Miss
        );
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].kind, MsgKind::GetS);
        assert_eq!(out.messages[0].dest, Destination::Node(NodeId::new(0)));

        let home_out = deliver(&out, &mut home, 30);
        assert!(matches!(
            home_out.messages[0].kind,
            MsgKind::Data {
                exclusive: false,
                from_memory: true,
                ..
            }
        ));

        let done = deliver(&home_out, &mut requester, 200);
        assert_eq!(done.completions.len(), 1);
        assert_eq!(done.completions[0].kind, MissKind::Read);
        // The requester unblocks the home.
        assert!(done.messages.iter().any(|m| m.kind == MsgKind::Unblock));
    }

    #[test]
    fn write_miss_on_shared_block_invalidates_sharers() {
        let mut home = controller(0);
        let mut reader = controller(1);
        let mut writer = controller(2);

        // Reader gets a shared copy first.
        let mut out = Outbox::new();
        reader.access(0, &load(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 10);
        let reader_done = deliver(&home_out, &mut reader, 100);
        deliver(&reader_done, &mut home, 110);

        // Writer requests M.
        let mut out = Outbox::new();
        writer.access(200, &store(0, 2), &mut out);
        let home_out = deliver(&out, &mut home, 210);
        // Home sends data (with one ack expected) and an invalidation.
        let data = home_out
            .messages
            .iter()
            .find(|m| matches!(m.kind, MsgKind::Data { .. }))
            .expect("data response");
        assert!(matches!(
            data.kind,
            MsgKind::Data {
                acks_expected: 1,
                exclusive: true,
                ..
            }
        ));
        let inv = home_out
            .messages
            .iter()
            .find(|m| matches!(m.kind, MsgKind::Inv { .. }))
            .expect("invalidation");
        assert_eq!(inv.dest, Destination::Node(NodeId::new(1)));

        // Data alone is not enough; the ack must arrive too.
        let partial = deliver(&home_out, &mut writer, 300);
        assert!(partial.completions.is_empty());
        let reader_out = deliver(&home_out, &mut reader, 310);
        let ack = reader_out
            .messages
            .iter()
            .find(|m| m.kind == MsgKind::InvAck)
            .expect("invalidation ack");
        assert_eq!(ack.dest, Destination::Node(NodeId::new(2)));
        assert_eq!(reader.audit_block(BlockAddr::new(0)).len(), 0);

        let done = deliver(&reader_out, &mut writer, 400);
        assert_eq!(done.completions.len(), 1);
        assert_eq!(done.completions[0].kind, MissKind::Write);
    }

    #[test]
    fn cache_to_cache_miss_is_forwarded_through_home() {
        let mut home = controller(0);
        let mut owner = controller(1);
        let mut reader = controller(2);

        // Owner takes the block to M and dirties it.
        let mut out = Outbox::new();
        owner.access(0, &store(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 10);
        let owner_done = deliver(&home_out, &mut owner, 100);
        deliver(&owner_done, &mut home, 110);

        // Reader misses; home forwards to the owner.
        let mut out = Outbox::new();
        reader.access(200, &load(0, 2), &mut out);
        let home_out = deliver(&out, &mut home, 210);
        let fwd = home_out
            .messages
            .iter()
            .find(|m| matches!(m.kind, MsgKind::FwdGetS { .. }))
            .expect("forward to owner");
        assert_eq!(fwd.dest, Destination::Node(NodeId::new(1)));

        // Owner responds straight to the reader (migratory: exclusive).
        let owner_out = deliver(&home_out, &mut owner, 300);
        let data = &owner_out.messages[0];
        assert!(matches!(
            data.kind,
            MsgKind::Data {
                from_memory: false,
                exclusive: true,
                ..
            }
        ));
        assert_eq!(data.dest, Destination::Node(NodeId::new(2)));

        let done = deliver(&owner_out, &mut reader, 400);
        assert_eq!(done.completions.len(), 1);
        assert!(done.completions[0].cache_to_cache);
        // The reader announces exclusive ownership to the home.
        assert!(done
            .messages
            .iter()
            .any(|m| m.kind == MsgKind::ExclusiveUnblock));
    }

    #[test]
    fn requests_queue_while_the_directory_is_busy() {
        let mut home = controller(0);
        let mut a = controller(1);
        let mut b = controller(2);

        // A starts a write miss; home forwards nothing (memory owner) but
        // becomes busy until the unblock.
        let mut out_a = Outbox::new();
        a.access(0, &store(0, 1), &mut out_a);
        let home_out_a = deliver(&out_a, &mut home, 10);

        // B's write miss arrives while the directory is still busy.
        let mut out_b = Outbox::new();
        b.access(20, &store(0, 2), &mut out_b);
        let home_out_b = deliver(&out_b, &mut home, 30);
        assert!(
            home_out_b.messages.is_empty(),
            "the busy directory must queue, not respond"
        );

        // A completes and unblocks; the home then serves B by forwarding to A.
        let a_done = deliver(&home_out_a, &mut a, 100);
        let home_after_unblock = deliver(&a_done, &mut home, 150);
        assert!(home_after_unblock
            .messages
            .iter()
            .any(|m| matches!(m.kind, MsgKind::FwdGetM { .. })));
    }

    #[test]
    fn writeback_returns_ownership_to_memory() {
        let mut home = controller(0);
        let mut owner = controller(1);
        let mut out = Outbox::new();
        owner.access(0, &store(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 10);
        let owner_done = deliver(&home_out, &mut owner, 100);
        deliver(&owner_done, &mut home, 110);

        // Evict by inserting a conflicting line directly.
        let mut out = Outbox::new();
        let line = *owner.l2.peek(BlockAddr::new(0)).unwrap();
        owner.l2.remove(BlockAddr::new(0));
        owner.evict(200, BlockAddr::new(0), line, &mut out);
        let putm = out
            .messages
            .iter()
            .find(|m| m.kind == MsgKind::PutM)
            .expect("writeback sent");
        assert_eq!(putm.dest, Destination::Node(NodeId::new(0)));

        let home_out = deliver(&out, &mut home, 300);
        assert!(home_out.messages.iter().any(|m| m.kind == MsgKind::WbAck));
        // Memory is the owner again: a later read is served from memory.
        let mut reader = controller(2);
        let mut rout = Outbox::new();
        reader.access(400, &load(0, 5), &mut rout);
        let resp = deliver(&rout, &mut home, 410);
        assert!(matches!(
            resp.messages[0].kind,
            MsgKind::Data {
                from_memory: true,
                ..
            }
        ));
    }

    #[test]
    fn upgrade_miss_counts_as_upgrade() {
        let mut home = controller(0);
        let mut c = controller(1);
        // Obtain a shared copy.
        let mut out = Outbox::new();
        c.access(0, &load(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 10);
        let done = deliver(&home_out, &mut c, 100);
        deliver(&done, &mut home, 110);
        // Now store to it.
        let mut out = Outbox::new();
        assert_eq!(c.access(200, &store(0, 2), &mut out), AccessOutcome::Miss);
        let home_out = deliver(&out, &mut home, 210);
        let done = deliver(&home_out, &mut c, 300);
        assert_eq!(done.completions[0].kind, MissKind::Upgrade);
        assert_eq!(c.stats().misses.upgrade_misses, 1);
    }

    #[test]
    fn hits_do_not_generate_traffic() {
        let mut home = controller(0);
        let mut c = controller(1);
        let mut out = Outbox::new();
        c.access(0, &store(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 10);
        deliver(&home_out, &mut c, 100);
        let mut out = Outbox::new();
        assert!(matches!(
            c.access(200, &load(0, 2), &mut out),
            AccessOutcome::Hit { .. }
        ));
        assert!(matches!(
            c.access(210, &store(0, 3), &mut out),
            AccessOutcome::Hit { .. }
        ));
        assert!(out.messages.is_empty());
    }
}
