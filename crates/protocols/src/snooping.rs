//! Traditional MOSI split-transaction snooping on a totally-ordered
//! interconnect.
//!
//! Every request (and every writeback) is broadcast to *all* nodes —
//! including the requester itself — over the ordered tree interconnect. The
//! single root switch serializes the broadcasts, so every node observes every
//! request in the same order; that total order is what resolves races, with
//! no acknowledgements and no home-node indirection. A single "owner bit"
//! kept at the block's home memory (following Frank's scheme, as the paper
//! does) decides when memory must supply the data, avoiding a snoop-response
//! combining tree.
//!
//! The protocol is the low-latency baseline for cache-to-cache misses — but
//! it fundamentally cannot run on the unordered torus, which is exactly the
//! limitation TokenB removes.

use std::collections::BTreeMap;

use tc_memsys::{HomeMemory, L1Filter, MshrTable, SetAssocCache};
use tc_types::{
    AccessOutcome, BlockAddr, BlockAudit, CoherenceController, ControllerStats, Cycle, DataPayload,
    Destination, HomeMap, MemOp, Message, MissCompletion, MissKind, MsgKind, NodeId, Outbox, ReqId,
    SystemConfig, Timer, Vnet,
};

use crate::common::{MosiLine, MosiState};

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    req_id: ReqId,
    write: bool,
}

#[derive(Debug, Clone)]
struct SnoopMshr {
    pending: Vec<PendingOp>,
    write: bool,
    upgrade: bool,
    issued_at: Cycle,
    /// Whether this node has observed its own request in the total order.
    ordered: bool,
    data_received: bool,
    exclusive: bool,
    version: u64,
    dirty: bool,
    from_cache: bool,
    /// Whether the node still held a readable copy when its own request was
    /// ordered (upgrades complete without waiting for data).
    still_valid: bool,
    /// Requests by other nodes, observed after ours was ordered, that we must
    /// answer once we obtain the block.
    forward_queue: Vec<(NodeId, bool)>,
}

/// Memory-side state: the "owner bit" (true when memory must respond) plus a
/// flag marking a writeback whose data has not yet reached memory.
#[derive(Debug, Clone, Copy)]
struct OwnerBit {
    initialized: bool,
    memory_owner: bool,
    /// A PutM has been observed in the total order but its data has not yet
    /// arrived (and no later GetM has stolen ownership from the writer).
    pending_writeback: bool,
}

impl Default for OwnerBit {
    fn default() -> Self {
        OwnerBit {
            initialized: false,
            memory_owner: true,
            pending_writeback: false,
        }
    }
}

/// The snooping controller for one node.
#[derive(Debug)]
pub struct SnoopingController {
    node: NodeId,
    home_map: HomeMap,
    l1: L1Filter,
    l2: SetAssocCache<MosiLine>,
    l2_latency: Cycle,
    controller_latency: Cycle,
    dram_latency: Cycle,
    memory: HomeMemory<OwnerBit>,
    mshrs: MshrTable<SnoopMshr>,
    wb_buffer: BTreeMap<BlockAddr, MosiLine>,
    migratory_optimization: bool,
    stats: ControllerStats,
    store_counter: u64,
    /// Cached all-nodes destination: snooping broadcasts every request, so
    /// this Arc-backed set is cloned (refcount bump, no allocation) per send.
    everyone: Destination,
}

impl SnoopingController {
    /// Creates the snooping controller for `node` under `config`.
    pub fn new(node: NodeId, config: &SystemConfig) -> Self {
        let home_map = HomeMap::new(config.num_nodes, config.block_bytes);
        SnoopingController {
            node,
            home_map,
            l1: L1Filter::new(&config.l1, config.block_bytes),
            l2: SetAssocCache::new(&config.l2, config.block_bytes),
            l2_latency: config.l2.latency_ns,
            controller_latency: config.controller_latency_ns,
            dram_latency: config.dram_latency_ns,
            memory: HomeMemory::new(node, home_map, config.dram_latency_ns),
            mshrs: MshrTable::new(config.processor.max_outstanding_misses.max(1)),
            wb_buffer: BTreeMap::new(),
            migratory_optimization: config.token.migratory_optimization,
            stats: ControllerStats::new(),
            store_counter: 0,
            everyone: Destination::Multicast((0..config.num_nodes).map(NodeId::new).collect()),
        }
    }

    fn unique_version(&mut self) -> u64 {
        self.store_counter += 1;
        ((self.node.index() as u64 + 1) << 40) | self.store_counter
    }

    fn is_home(&self, addr: BlockAddr) -> bool {
        self.home_map.is_home(self.node, addr)
    }

    fn send(&mut self, out: &mut Outbox, msg: Message) {
        self.stats.messages_sent += 1;
        out.send(msg);
    }

    fn everyone(&self) -> Destination {
        self.everyone.clone()
    }

    fn unicast(
        &self,
        at: Cycle,
        dest: NodeId,
        addr: BlockAddr,
        kind: MsgKind,
        vnet: Vnet,
    ) -> Message {
        Message::new(self.node, Destination::Node(dest), addr, kind, vnet, at)
    }

    fn line_or_wb(&self, addr: BlockAddr) -> Option<MosiLine> {
        self.l2
            .peek(addr)
            .copied()
            .or_else(|| self.wb_buffer.get(&addr).copied())
    }

    // ------------------------------------------------------------------
    // Snoop handling: every node sees every request in the same order.
    // ------------------------------------------------------------------

    fn snoop_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        if requester == self.node {
            self.observe_own_request(now, addr, out);
        } else {
            self.snoop_other_request(now, requester, addr, write, out);
        }
        // Home-memory processing happens at every node for the blocks it
        // homes, regardless of who requested.
        if self.is_home(addr) {
            self.memory_snoop(now, requester, addr, write, out);
        }
    }

    fn observe_own_request(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let still_valid = self
            .l2
            .peek(addr)
            .map(|l| l.state.readable())
            .unwrap_or(false);
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            mshr.ordered = true;
            mshr.still_valid = still_valid;
        }
        self.try_complete(now, addr, out);
    }

    fn snoop_other_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        let at = now + self.controller_latency + self.l2_latency;

        // If we have an ordered outstanding request for this block, we are
        // (or are about to become) the block's owner in the total order, so
        // we must remember this request and answer it once our data arrives.
        let we_are_ordered_first = self.mshrs.get(addr).map(|m| m.ordered).unwrap_or(false);
        if we_are_ordered_first {
            if let Some(mshr) = self.mshrs.get_mut(addr) {
                mshr.forward_queue.push((requester, write));
            }
            return;
        }

        let in_live_cache = self.l2.contains(addr);
        let line = self.line_or_wb(addr);
        match line {
            Some(line) if line.state.is_owner() => {
                // The migratory hand-off is only applied from a live cache
                // line; a block sitting in the write-back buffer answers GetS
                // requests with a plain shared copy so that ownership only
                // leaves the buffer through a GetM (which the home can track).
                let migratory = !write
                    && self.migratory_optimization
                    && in_live_cache
                    && line.state == MosiState::Modified
                    && line.dirty;
                let exclusive = write || migratory;
                let data = self.unicast(
                    at,
                    requester,
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Response,
                );
                self.send(out, data);
                self.stats.bump("snoop_data_responses", 1);
                if exclusive {
                    self.l2.remove(addr);
                    self.l1.invalidate(addr);
                    // Ownership (and the writeback obligation) moves to the
                    // requester; the pending writeback is cancelled.
                    self.wb_buffer.remove(&addr);
                } else if let Some(l) = self.l2.get(addr) {
                    l.state = MosiState::Owned;
                }
            }
            Some(_) if write => {
                // Another node's ordered GetM invalidates our shared copy; no
                // acknowledgement is needed because the order is authoritative.
                self.l2.remove(addr);
                self.l1.invalidate(addr);
                self.stats.bump("snoop_invalidations", 1);
            }
            _ => {}
        }

        // If this node's own (not yet ordered) request races with the other
        // node's ordered request, our copy is gone; we will simply wait for
        // data from the new owner.
    }

    fn memory_snoop(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        let version = self.memory.data_version(addr);
        let entry = self.memory.state_mut(addr);
        entry.initialized = true;
        if write {
            // A GetM ordered after a PutM (but before its data arrived) takes
            // ownership away from the writer: the pending writeback is stale.
            entry.pending_writeback = false;
        }
        if entry.memory_owner {
            if write {
                entry.memory_owner = false;
            }
            let at = now + self.controller_latency + self.dram_latency;
            let data = self.unicast(
                at,
                requester,
                addr,
                MsgKind::Data {
                    acks_expected: 0,
                    exclusive: write,
                    from_memory: true,
                    payload: DataPayload::new(version),
                },
                Vnet::Response,
            );
            self.send(out, data);
            self.stats.bump("memory_responses", 1);
        } else if write {
            // Ownership moves between caches; memory stays non-owner.
        }
    }

    fn snoop_writeback(&mut self, now: Cycle, from: NodeId, addr: BlockAddr, out: &mut Outbox) {
        // The broadcast PutM is only an ordered *marker*; the data follows as
        // a separate message once the writer has confirmed (by observing its
        // own PutM) that it still owns the block. This resolves the classic
        // writeback race: if a GetM was ordered between the eviction and the
        // PutM, ownership already moved to the GetM requester, the writer's
        // buffer entry is gone, and memory must NOT become the owner again.
        if self.is_home(addr) {
            let entry = self.memory.state_mut(addr);
            entry.initialized = true;
            entry.pending_writeback = true;
        }
        if from == self.node {
            if let Some(line) = self.wb_buffer.get(&addr).copied() {
                // Still the owner of record: ship the data to the home. The
                // buffer entry stays until the WbAck so requests ordered after
                // the PutM can still be answered while the data is in flight.
                let home = self.home_map.home_of(addr);
                let data = Message::new(
                    self.node,
                    Destination::Node(home),
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive: false,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Writeback,
                    now + self.controller_latency,
                );
                self.send(out, data);
            }
        }
    }

    /// The home receives the data of a (still valid) writeback.
    fn apply_writeback_data(
        &mut self,
        now: Cycle,
        from: NodeId,
        addr: BlockAddr,
        version: u64,
        out: &mut Outbox,
    ) {
        debug_assert!(self.is_home(addr));
        let entry = self.memory.state_mut(addr);
        entry.initialized = true;
        if entry.pending_writeback {
            entry.pending_writeback = false;
            entry.memory_owner = true;
            self.memory.write_data(addr, version);
        }
        let ack = self.unicast(
            now + self.controller_latency + self.dram_latency,
            from,
            addr,
            MsgKind::WbAck,
            Vnet::Response,
        );
        self.send(out, ack);
    }

    fn handle_data(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        exclusive: bool,
        from_memory: bool,
        payload: DataPayload,
        out: &mut Outbox,
    ) {
        let Some(mshr) = self.mshrs.get_mut(addr) else {
            return;
        };
        // A cache-supplied copy supersedes memory's copy (memory may respond
        // as well when its owner bit is stale for at most one transition).
        if !from_memory || !mshr.data_received {
            mshr.version = payload.version;
            mshr.dirty = !from_memory;
            mshr.from_cache |= !from_memory;
        }
        mshr.data_received = true;
        mshr.exclusive |= exclusive;
        self.try_complete(now, addr, out);
    }

    fn try_complete(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let Some(mshr) = self.mshrs.get(addr) else {
            return;
        };
        if !mshr.ordered {
            return;
        }
        let satisfied = if mshr.write {
            // An upgrade whose copy survived until its request was ordered
            // completes immediately; otherwise we need data.
            mshr.data_received || mshr.still_valid
        } else {
            mshr.data_received
        };
        if !satisfied {
            return;
        }
        let mshr = self.mshrs.release(addr).expect("checked above");

        // Determine the version we start from.
        let base_version = if mshr.data_received {
            mshr.version
        } else {
            self.l2.peek(addr).map(|l| l.version).unwrap_or(0)
        };
        let granted_exclusive = mshr.write || mshr.exclusive;
        let state = if granted_exclusive {
            MosiState::Modified
        } else {
            MosiState::Shared
        };
        let mut line = MosiLine {
            state,
            dirty: (mshr.dirty || mshr.write) && state.is_owner(),
            version: base_version,
        };
        // Stores merged into a read miss wait for their own upgrade.
        let mut deferred_writes = Vec::new();
        let mut completions = Vec::with_capacity(mshr.pending.len());
        for op in &mshr.pending {
            if op.write && !granted_exclusive {
                deferred_writes.push(*op);
                continue;
            }
            let v = if op.write {
                let v = self.unique_version();
                line.version = v;
                line.dirty = true;
                v
            } else {
                line.version
            };
            completions.push((op.req_id, v));
        }
        if let Some(victim) = self.l2.insert(addr, line) {
            self.evict(now, victim.addr, victim.state, out);
        }

        let kind = if mshr.write {
            if mshr.upgrade {
                MissKind::Upgrade
            } else {
                MissKind::Write
            }
        } else {
            MissKind::Read
        };
        for (req_id, v) in completions {
            out.complete(MissCompletion {
                req_id,
                addr,
                kind,
                issued_at: mshr.issued_at,
                completed_at: now,
                data_version: v,
                cache_to_cache: mshr.from_cache,
            });
        }
        let latency = now.saturating_sub(mshr.issued_at);
        self.stats.misses.completed_misses += 1;
        self.stats.misses.total_miss_latency += latency;
        match kind {
            MissKind::Read => self.stats.misses.read_misses += 1,
            MissKind::Write => self.stats.misses.write_misses += 1,
            MissKind::Upgrade => self.stats.misses.upgrade_misses += 1,
        }
        if mshr.from_cache {
            self.stats.misses.cache_to_cache += 1;
        } else {
            self.stats.misses.from_memory += 1;
        }
        self.stats.reissue.not_reissued += 1;

        // Serve the requests we promised to answer, in order, until one of
        // them takes ownership away from us.
        let mut still_owner = self
            .l2
            .peek(addr)
            .map(|l| l.state.is_owner())
            .unwrap_or(false);
        for (requester, write) in mshr.forward_queue {
            if !still_owner {
                // The request is someone else's responsibility now; if it was
                // an exclusive request, our copy must go.
                if write {
                    self.l2.remove(addr);
                    self.l1.invalidate(addr);
                }
                continue;
            }
            let line = match self.l2.peek(addr).copied() {
                Some(line) => line,
                None => break,
            };
            let at = now + self.controller_latency + self.l2_latency;
            let migratory = !write
                && self.migratory_optimization
                && line.state == MosiState::Modified
                && line.dirty;
            let exclusive = write || migratory;
            let data = self.unicast(
                at,
                requester,
                addr,
                MsgKind::Data {
                    acks_expected: 0,
                    exclusive,
                    from_memory: false,
                    payload: DataPayload::new(line.version),
                },
                Vnet::Response,
            );
            self.send(out, data);
            if exclusive {
                self.l2.remove(addr);
                self.l1.invalidate(addr);
                still_owner = false;
            } else if let Some(l) = self.l2.get(addr) {
                l.state = MosiState::Owned;
            }
        }

        // Re-issue merged stores as an upgrade transaction of their own.
        if !deferred_writes.is_empty() {
            self.stats.bump("merged_store_upgrades", 1);
            let upgrade = SnoopMshr {
                pending: deferred_writes,
                write: true,
                upgrade: true,
                issued_at: now,
                ordered: false,
                data_received: false,
                exclusive: false,
                version: 0,
                dirty: false,
                from_cache: false,
                still_valid: false,
                forward_queue: Vec::new(),
            };
            self.mshrs
                .allocate(addr, upgrade)
                .unwrap_or_else(|_| panic!("upgrade MSHR conflict at {}", self.node));
            let getm = Message::new(
                self.node,
                self.everyone(),
                addr,
                MsgKind::GetM,
                Vnet::Request,
                now + self.controller_latency,
            );
            self.send(out, getm);
        }
    }

    fn evict(&mut self, now: Cycle, addr: BlockAddr, line: MosiLine, out: &mut Outbox) {
        self.l1.invalidate(addr);
        if line.state.is_owner() {
            self.stats.misses.writebacks += 1;
            self.wb_buffer.insert(addr, line);
            // Writebacks are broadcast so the total order covers them too.
            let putm = Message::new(
                self.node,
                self.everyone(),
                addr,
                MsgKind::PutM,
                Vnet::Writeback,
                now + self.controller_latency,
            )
            .with_req_id(ReqId::new(line.version));
            self.send(out, putm);
        }
    }
}

impl CoherenceController for SnoopingController {
    fn node(&self) -> NodeId {
        self.node
    }

    fn protocol_name(&self) -> &'static str {
        "Snooping"
    }

    fn access(&mut self, now: Cycle, op: &MemOp, out: &mut Outbox) -> AccessOutcome {
        let addr = op.addr.block(self.home_map.block_bytes());
        let write = op.kind.is_write();
        let l1_hit = self.l1.touch(addr);
        let hit_latency = if l1_hit {
            self.l1.latency_ns()
        } else {
            self.l1.latency_ns() + self.l2_latency
        };

        if let Some(line) = self.l2.get(addr).copied() {
            if write && line.state.writable() {
                let version = self.unique_version();
                let line = self.l2.get(addr).expect("line present");
                line.version = version;
                line.dirty = true;
                if l1_hit {
                    self.stats.misses.l1_hits += 1;
                } else {
                    self.stats.misses.l2_hits += 1;
                }
                return AccessOutcome::Hit {
                    latency: hit_latency,
                    version,
                };
            }
            if !write && line.state.readable() {
                if l1_hit {
                    self.stats.misses.l1_hits += 1;
                } else {
                    self.stats.misses.l2_hits += 1;
                }
                return AccessOutcome::Hit {
                    latency: hit_latency,
                    version: line.version,
                };
            }
        }

        let had_copy = self
            .l2
            .peek(addr)
            .map(|l| l.state.readable())
            .unwrap_or(false);
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            // Merge into the outstanding miss; stores that arrive without
            // write permission are re-issued as an upgrade once the current
            // transaction completes.
            mshr.pending.push(PendingOp {
                req_id: op.id,
                write,
            });
            return AccessOutcome::Miss;
        }

        let mshr = SnoopMshr {
            pending: vec![PendingOp {
                req_id: op.id,
                write,
            }],
            write,
            upgrade: write && had_copy,
            issued_at: now,
            ordered: false,
            data_received: false,
            exclusive: false,
            version: 0,
            dirty: false,
            from_cache: false,
            still_valid: false,
            forward_queue: Vec::new(),
        };
        self.mshrs
            .allocate(addr, mshr)
            .unwrap_or_else(|_| panic!("MSHR overflow at {}", self.node));
        let kind = if write { MsgKind::GetM } else { MsgKind::GetS };
        // The request is broadcast to every node, *including this one*: the
        // self-delivery, ordered by the root switch, tells the requester
        // where its request falls in the total order.
        let msg = Message::new(
            self.node,
            self.everyone(),
            addr,
            kind,
            Vnet::Request,
            now + self.controller_latency,
        );
        self.send(out, msg);
        AccessOutcome::Miss
    }

    fn handle_message(&mut self, now: Cycle, msg: Message, out: &mut Outbox) {
        self.stats.messages_received += 1;
        let addr = msg.addr;
        match msg.kind.clone() {
            MsgKind::GetS => self.snoop_request(now, msg.src, addr, false, out),
            MsgKind::GetM => self.snoop_request(now, msg.src, addr, true, out),
            MsgKind::PutM => {
                self.snoop_writeback(now, msg.src, addr, out);
            }
            MsgKind::Data {
                exclusive,
                from_memory,
                payload,
                ..
            } => {
                if msg.vnet == Vnet::Writeback {
                    self.apply_writeback_data(now, msg.src, addr, payload.version, out);
                } else {
                    self.handle_data(now, addr, exclusive, from_memory, payload, out);
                }
            }
            MsgKind::WbAck => {
                self.wb_buffer.remove(&addr);
            }
            other => {
                debug_assert!(false, "Snooping received unexpected message {other:?}");
            }
        }
    }

    fn handle_timer(&mut self, _now: Cycle, _timer: Timer, _out: &mut Outbox) {
        // Snooping arms no timers.
    }

    fn stats(&self) -> ControllerStats {
        self.stats.clone()
    }

    fn audit_block(&self, addr: BlockAddr) -> Vec<BlockAudit> {
        let mut audits = Vec::new();
        if let Some(line) = self.l2.peek(addr) {
            audits.push(BlockAudit {
                tokens: 0,
                owner_token: line.state.is_owner(),
                readable: line.state.readable(),
                writable: line.state.writable(),
                data_version: line.version,
                in_memory: false,
            });
        }
        audits
    }

    fn audited_blocks(&self) -> Vec<BlockAddr> {
        self.l2.blocks()
    }

    fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{Address, MemOpKind, ProtocolKind};

    fn config() -> SystemConfig {
        SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(ProtocolKind::Snooping)
    }

    fn controller(node: usize) -> SnoopingController {
        SnoopingController::new(NodeId::new(node), &config())
    }

    fn load(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Load)
    }

    fn store(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Store)
    }

    /// Delivers messages to every addressed node in a fixed global order,
    /// mimicking the total order the tree interconnect provides.
    fn broadcast_round(out: &Outbox, nodes: &mut [SnoopingController], now: Cycle) -> Outbox {
        let mut next = Outbox::new();
        for msg in &out.messages {
            for node in nodes.iter_mut() {
                if msg.dest.includes(node.node(), msg.src) {
                    node.handle_message(now, msg.clone(), &mut next);
                }
            }
        }
        next
    }

    fn run_until_quiet(
        mut frontier: Outbox,
        nodes: &mut [SnoopingController],
        start: Cycle,
    ) -> Vec<MissCompletion> {
        let mut completions = Vec::new();
        let mut now = start;
        for _ in 0..12 {
            if frontier.messages.is_empty() {
                break;
            }
            now += 60;
            let next = broadcast_round(&frontier, nodes, now);
            completions.extend(next.completions.iter().copied());
            frontier = next;
        }
        completions
    }

    #[test]
    fn requests_are_broadcast_to_everyone_including_self() {
        let mut c = controller(1);
        let mut out = Outbox::new();
        c.access(0, &load(0, 1), &mut out);
        assert_eq!(out.messages.len(), 1);
        match &out.messages[0].dest {
            Destination::Multicast(nodes) => {
                assert_eq!(nodes.len(), 4);
                assert!(nodes.contains(&NodeId::new(1)));
            }
            other => panic!("expected a full multicast, got {other:?}"),
        }
    }

    #[test]
    fn memory_owner_bit_makes_memory_respond_exactly_once() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &load(0, 1), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 0);
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].cache_to_cache);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Shared
        );
        // Memory stays the owner for shared data.
        let home_stats = nodes[0].stats();
        assert_eq!(home_stats.counter("memory_responses"), 1);
    }

    #[test]
    fn write_miss_transfers_ownership_from_memory_to_cache() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[2].access(0, &store(0, 1), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 0);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].kind, MissKind::Write);
        assert_eq!(
            nodes[2].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );

        // A second writer obtains the block from the first cache, not memory.
        let mut out = Outbox::new();
        nodes[3].access(1000, &store(0, 2), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 1000);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].cache_to_cache);
        assert!(nodes[2].l2.peek(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn migratory_read_takes_the_whole_block() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[2].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        let mut out = Outbox::new();
        nodes[1].access(1000, &load(0, 2), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 1000);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].cache_to_cache);
        // With the migratory optimization the reader ends up with an
        // exclusive (Modified) copy and the old owner is invalidated.
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );
        assert!(nodes[2].l2.peek(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn upgrade_completes_when_its_own_request_is_ordered() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        // Get a shared copy at node 1.
        let mut out = Outbox::new();
        nodes[1].access(0, &load(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Shared
        );

        // Store to it: the upgrade completes once the GetM is ordered, even
        // though memory also supplies (redundant) data.
        let mut out = Outbox::new();
        assert_eq!(
            nodes[1].access(1000, &store(0, 2), &mut out),
            AccessOutcome::Miss
        );
        let completions = run_until_quiet(out, &mut nodes, 1000);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].kind, MissKind::Upgrade);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );
    }

    #[test]
    fn racing_writes_are_resolved_by_the_total_order() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        // Both node 1 and node 2 issue GetM for the same block "at once";
        // the delivery order (node 1 first) is the total order.
        let mut out1 = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out1);
        let mut out2 = Outbox::new();
        nodes[2].access(0, &store(0, 2), &mut out2);
        let mut combined = Outbox::new();
        combined.messages.extend(out1.messages);
        combined.messages.extend(out2.messages);

        let completions = run_until_quiet(combined, &mut nodes, 0);
        assert_eq!(completions.len(), 2, "both writers eventually complete");
        // Exactly one cache ends with the modified copy.
        let holders: Vec<_> = (0..4)
            .filter(|n| {
                nodes[*n]
                    .l2
                    .peek(BlockAddr::new(0))
                    .map(|l| l.state == MosiState::Modified)
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(holders.len(), 1);
        // The loser's write must be ordered after the winner's: its final
        // version is the globally newest.
        let winner_version = completions.iter().map(|c| c.data_version).max().unwrap();
        let holder = holders[0];
        assert_eq!(
            nodes[holder].l2.peek(BlockAddr::new(0)).unwrap().version,
            winner_version
        );
    }

    #[test]
    fn writeback_restores_the_memory_owner_bit() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        // Evict the modified line.
        let line = *nodes[1].l2.peek(BlockAddr::new(0)).unwrap();
        nodes[1].l2.remove(BlockAddr::new(0));
        let mut out = Outbox::new();
        nodes[1].evict(2000, BlockAddr::new(0), line, &mut out);
        assert!(out.messages.iter().any(|m| m.kind == MsgKind::PutM));
        run_until_quiet(out, &mut nodes, 2000);

        // A later read is served by memory again.
        let mut out = Outbox::new();
        nodes[3].access(3000, &load(0, 9), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 3000);
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].cache_to_cache);
        assert_eq!(completions[0].data_version, line.version);
    }
}
