//! Traditional MOSI split-transaction snooping on a totally-ordered
//! interconnect.
//!
//! Every request (and every writeback) is broadcast to *all* nodes —
//! including the requester itself — over the ordered tree interconnect. The
//! single root switch serializes the broadcasts, so every node observes every
//! request in the same order; that total order is what resolves races with no
//! home-node indirection. A single "owner bit" kept at the block's home
//! memory (following Frank's scheme, as the paper does) decides when memory
//! must supply the data, avoiding a snoop-response combining tree.
//!
//! The one place the total order is not enough is the **writeback race**: a
//! broadcast PutM is only an ordered *marker*, and between the marker and
//! the (unordered) writeback data reaching the home, the block has no cache
//! owner and memory does not yet have the data. Requests ordered in that
//! window used to be stranded forever — the deadlock that kept the snooping
//! baseline out of the contended sweeps. The fix is the
//! writeback-acknowledgement handshake (see [`crate::common::WbWindow`]):
//!
//! 1. The PutM marker opens a *writeback window* at the block's home; every
//!    request ordered while the window is open is queued there.
//! 2. When the writer observes its own PutM in the total order it answers
//!    with exactly one handshake message: the writeback **data** if it still
//!    holds the block (requests ordered *before* the PutM may have taken it),
//!    or an explicit **WbCancel** if it does not. Either way the writer's
//!    buffer entry is gone from that point on — requests ordered after the
//!    PutM are never the writer's responsibility.
//! 3. On data, memory applies the writeback, becomes the owner, and answers
//!    the queued requests (reads, then at most one write — the write's winner
//!    observes and answers everything ordered after it). On cancel, the
//!    queue is dropped: whichever cache took ownership before the PutM
//!    observes those same requests in its own ordered stream.
//!
//! The protocol is the low-latency baseline for cache-to-cache misses — but
//! it fundamentally cannot run on the unordered torus, which is exactly the
//! limitation TokenB removes.

use tc_memsys::{HomeMemory, L1Filter, MshrTable, OpList, OpSlab, SetAssocCache};
use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AccessOutcome, BlockAddr, BlockAudit, CoherenceController, ControllerStats, Cycle, DataPayload,
    Destination, HomeMap, LineStateStats, MemOp, Message, MissCompletion, MsgKind, NodeId, Outbox,
    ReqId, SystemConfig, Timer, Vnet,
};

use crate::common::{
    apply_pending_ops, emit_mosi_line, emit_pending_op, miss_kind, mosi_hit_path, read_mosi_line,
    read_pending_op, record_completed_miss, version_node_bits, MosiLine, MosiState, PendingOp,
    QueuedRequest, WbHandshake, WritebackPlane,
};

#[derive(Debug)]
struct SnoopMshr {
    pending: OpList,
    /// The request id this transaction was broadcast under. Every data
    /// response echoes it, so a late response to an already-completed
    /// transaction (for example the redundant memory response to an upgrade
    /// that completed via `still_valid`) can never complete a *later* miss
    /// for the same block.
    req_id: ReqId,
    write: bool,
    upgrade: bool,
    issued_at: Cycle,
    /// Whether this node has observed its own request in the total order.
    ordered: bool,
    data_received: bool,
    exclusive: bool,
    version: u64,
    dirty: bool,
    from_cache: bool,
    /// Whether the node still held a readable copy when its own request was
    /// ordered (upgrades complete without waiting for data).
    still_valid: bool,
    /// Requests by other nodes, observed after ours was ordered, that we must
    /// answer once we obtain the block.
    forward_queue: Vec<QueuedRequest>,
}

/// Memory-side state: the "owner bit" — true when memory must respond.
/// Writebacks in flight are tracked separately by the per-block handshake
/// windows of the [`WritebackPlane`].
#[derive(Debug, Clone, Copy)]
struct OwnerBit {
    memory_owner: bool,
}

impl Default for OwnerBit {
    fn default() -> Self {
        OwnerBit { memory_owner: true }
    }
}

/// The snooping controller for one node.
#[derive(Debug)]
pub struct SnoopingController {
    node: NodeId,
    home_map: HomeMap,
    l1: L1Filter,
    l2: SetAssocCache<MosiLine>,
    l2_latency: Cycle,
    controller_latency: Cycle,
    dram_latency: Cycle,
    memory: HomeMemory<OwnerBit>,
    mshrs: MshrTable<SnoopMshr>,
    /// In-flight writebacks plus (for the blocks this node homes) the
    /// ordered-PutM handshake windows, on the shared line-state plane.
    wb: WritebackPlane,
    migratory_optimization: bool,
    stats: ControllerStats,
    store_counter: u64,
    /// Pooled storage for every MSHR entry's pending-op list.
    pending_ops: OpSlab<PendingOp>,
    /// Reusable completion/deferral scratch for `apply_pending_ops`.
    completion_scratch: Vec<(ReqId, u64)>,
    deferred_scratch: Vec<PendingOp>,
    /// Cached all-nodes destination: snooping broadcasts every request, so
    /// this Arc-backed set is cloned (refcount bump, no allocation) per send.
    everyone: Destination,
}

impl SnoopingController {
    /// Creates the snooping controller for `node` under `config`.
    pub fn new(node: NodeId, config: &SystemConfig) -> Self {
        let home_map = HomeMap::new(config.num_nodes, config.block_bytes);
        SnoopingController {
            node,
            home_map,
            l1: L1Filter::new(&config.l1, config.block_bytes),
            l2: SetAssocCache::new(&config.l2, config.block_bytes),
            l2_latency: config.l2.latency_ns,
            controller_latency: config.controller_latency_ns,
            dram_latency: config.dram_latency_ns,
            memory: HomeMemory::new(node, home_map, config.dram_latency_ns),
            mshrs: MshrTable::new(config.processor.max_outstanding_misses.max(1)),
            wb: WritebackPlane::new(),
            migratory_optimization: config.token.migratory_optimization,
            stats: ControllerStats::new(),
            store_counter: 0,
            pending_ops: OpSlab::new(),
            completion_scratch: Vec::new(),
            deferred_scratch: Vec::new(),
            everyone: Destination::Multicast((0..config.num_nodes).map(NodeId::new).collect()),
        }
    }

    fn is_home(&self, addr: BlockAddr) -> bool {
        self.home_map.is_home(self.node, addr)
    }

    fn send(&mut self, out: &mut Outbox, msg: Message) {
        self.stats.messages_sent += 1;
        out.send(msg);
    }

    fn everyone(&self) -> Destination {
        self.everyone.clone()
    }

    fn unicast(
        &self,
        at: Cycle,
        dest: NodeId,
        addr: BlockAddr,
        kind: MsgKind,
        vnet: Vnet,
    ) -> Message {
        Message::new(self.node, Destination::Node(dest), addr, kind, vnet, at)
    }

    fn line_or_wb(&self, addr: BlockAddr) -> Option<MosiLine> {
        self.l2.peek(addr).copied().or_else(|| self.wb.line(addr))
    }

    // ------------------------------------------------------------------
    // Snoop handling: every node sees every request in the same order.
    // ------------------------------------------------------------------

    fn snoop_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        req_id: Option<ReqId>,
        out: &mut Outbox,
    ) {
        if requester == self.node {
            self.observe_own_request(now, addr, out);
        } else {
            self.snoop_other_request(now, requester, addr, write, req_id, out);
        }
        // Home-memory processing happens at every node for the blocks it
        // homes, regardless of who requested.
        if self.is_home(addr) {
            self.memory_snoop(now, requester, addr, write, req_id, out);
        }
    }

    fn observe_own_request(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let still_valid = self
            .l2
            .peek(addr)
            .map(|l| l.state.readable())
            .unwrap_or(false);
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            mshr.ordered = true;
            mshr.still_valid = still_valid;
        }
        self.try_complete(now, addr, out);
    }

    fn snoop_other_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        req_id: Option<ReqId>,
        out: &mut Outbox,
    ) {
        let at = now + self.controller_latency + self.l2_latency;

        // If we have an ordered outstanding request for this block, we are
        // (or are about to become) the block's owner in the total order, so
        // we must remember this request and answer it once our data arrives.
        let we_are_ordered_first = self.mshrs.get(addr).map(|m| m.ordered).unwrap_or(false);
        if we_are_ordered_first {
            if let Some(mshr) = self.mshrs.get_mut(addr) {
                mshr.forward_queue.push(QueuedRequest {
                    requester,
                    write,
                    req_id,
                });
            }
            return;
        }

        let in_live_cache = self.l2.contains(addr);
        let line = self.line_or_wb(addr);
        match line {
            Some(line) if line.state.is_owner() => {
                // The migratory hand-off is only applied from a live cache
                // line; a block sitting in the write-back buffer answers GetS
                // requests with a plain shared copy so that ownership only
                // leaves the buffer through a GetM (which the home can track).
                let migratory = !write
                    && self.migratory_optimization
                    && in_live_cache
                    && line.state == MosiState::Modified
                    && line.dirty;
                let exclusive = write || migratory;
                let mut data = self.unicast(
                    at,
                    requester,
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Response,
                );
                data.req_id = req_id;
                self.send(out, data);
                self.stats.bump("snoop_data_responses", 1);
                if exclusive {
                    self.l2.remove(addr);
                    self.l1.invalidate(addr);
                    // Ownership (and the writeback obligation) moves to the
                    // requester; the pending writeback is cancelled.
                    self.wb.take(addr);
                } else if let Some(l) = self.l2.get(addr) {
                    l.state = MosiState::Owned;
                } else if let Some(entry) = self.wb.line_mut(addr) {
                    // The shared copy came out of the writeback buffer: the
                    // entry must demote to Owned just like a live line, or a
                    // pullback (re-access before the PutM is ordered) would
                    // reinstall it as Modified and let a store hit locally
                    // while the requester's shared copy is never invalidated.
                    entry.state = MosiState::Owned;
                }
            }
            Some(_) if write => {
                // Another node's ordered GetM invalidates our shared copy; no
                // acknowledgement is needed because the order is authoritative.
                self.l2.remove(addr);
                self.l1.invalidate(addr);
                self.stats.bump("snoop_invalidations", 1);
            }
            _ => {}
        }

        // If this node's own (not yet ordered) request races with the other
        // node's ordered request, our copy is gone; we will simply wait for
        // data from the new owner.
    }

    fn memory_snoop(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        req_id: Option<ReqId>,
        out: &mut Outbox,
    ) {
        if self.memory.state_mut(addr).memory_owner {
            // Memory is the owner of record and answers directly, even while
            // a (necessarily stale) writeback window is open: a PutM ordered
            // while memory owns the block can only resolve to a cancel.
            if write {
                self.memory.state_mut(addr).memory_owner = false;
            }
            let version = self.memory.data_version(addr);
            self.send_memory_response(now, requester, addr, write, version, req_id, out);
        } else if self.wb.window_is_open(addr) {
            // No owner anywhere: the previous owner's writeback marker has
            // been ordered but its data (or cancel) is still in flight. Queue
            // the request; the handshake resolution answers it. This is the
            // request that used to be stranded.
            self.wb.window_queue_request(
                addr,
                QueuedRequest {
                    requester,
                    write,
                    req_id,
                },
            );
            self.stats.bump("wb_window_queued_requests", 1);
        }
        // Otherwise some cache owns the block and observes this same ordered
        // request; answering is its responsibility.
    }

    /// Sends a data response sourced by this node's home memory.
    #[allow(clippy::too_many_arguments)]
    fn send_memory_response(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        exclusive: bool,
        version: u64,
        req_id: Option<ReqId>,
        out: &mut Outbox,
    ) {
        let at = now + self.controller_latency + self.dram_latency;
        let mut data = self.unicast(
            at,
            requester,
            addr,
            MsgKind::Data {
                acks_expected: 0,
                exclusive,
                from_memory: true,
                payload: DataPayload::new(version),
            },
            Vnet::Response,
        );
        data.req_id = req_id;
        self.send(out, data);
        self.stats.bump("memory_responses", 1);
    }

    /// An ordered PutM marker: opens the home's writeback window, and — at
    /// the writer — triggers the handshake response (data or cancel).
    fn snoop_writeback(
        &mut self,
        now: Cycle,
        from: NodeId,
        addr: BlockAddr,
        version: u64,
        out: &mut Outbox,
    ) {
        if self.is_home(addr) {
            let resolutions = self.wb.window_on_putm(addr, from, version);
            // The handshake normally trails its marker, but cascade anyway in
            // case it was stashed.
            self.apply_wb_resolutions(now, addr, resolutions, out);
        }
        if from == self.node {
            // Observing our own PutM is the handshake point: from here on,
            // requests ordered after the PutM are the home's responsibility,
            // so the buffer entry must go either way. Ship the data if we
            // still hold the block *this marker announced* (the version
            // check: the block may have been pulled back, re-written and
            // re-evicted, in which case this marker is void and a later one
            // carries the data); cancel otherwise.
            let still_held = self
                .wb
                .line(addr)
                .map(|line| line.version == version)
                .unwrap_or(false);
            let home = self.home_map.home_of(addr);
            let handshake = if still_held {
                let line = self.wb.take(addr).expect("checked above");
                Message::new(
                    self.node,
                    Destination::Node(home),
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive: false,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Writeback,
                    now + self.controller_latency,
                )
            } else {
                self.stats.bump("writebacks_cancelled", 1);
                Message::new(
                    self.node,
                    Destination::Node(home),
                    addr,
                    MsgKind::WbCancel,
                    Vnet::Writeback,
                    now + self.controller_latency,
                )
                .with_req_id(ReqId::new(version))
            };
            self.send(out, handshake);
        }
    }

    /// The home receives a writeback handshake message (the data, or a
    /// cancel) from `writer`.
    fn on_wb_handshake(
        &mut self,
        now: Cycle,
        writer: NodeId,
        addr: BlockAddr,
        version: u64,
        outcome: WbHandshake,
        out: &mut Outbox,
    ) {
        debug_assert!(self.is_home(addr));
        let resolutions = self.wb.window_on_handshake(addr, writer, version, outcome);
        self.apply_wb_resolutions(now, addr, resolutions, out);
    }

    /// Applies resolved writeback markers: commits the data (memory becomes
    /// the owner) and answers the requests queued in each window.
    fn apply_wb_resolutions(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        resolutions: Vec<crate::common::WbResolution>,
        out: &mut Outbox,
    ) {
        for resolution in resolutions {
            if resolution.outcome == WbHandshake::Data {
                self.memory.write_data(addr, resolution.version);
                self.memory.state_mut(addr).memory_owner = true;
                for request in resolution.serve {
                    if request.write {
                        self.memory.state_mut(addr).memory_owner = false;
                    }
                    self.send_memory_response(
                        now,
                        request.requester,
                        addr,
                        request.write,
                        resolution.version,
                        request.req_id,
                        out,
                    );
                    self.stats.bump("wb_window_served_requests", 1);
                }
            }
            // A cancelled marker needs no action: ownership never left the
            // cache side, and the owner answers the dropped requests itself.
            // (The plane drops the window entry itself once it is empty.)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_data(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        exclusive: bool,
        from_memory: bool,
        payload: DataPayload,
        req_id: Option<ReqId>,
        out: &mut Outbox,
    ) {
        let Some(mshr) = self.mshrs.get_mut(addr) else {
            return;
        };
        // A response tagged for an earlier transaction on this block (for
        // example the redundant memory response to an upgrade that already
        // completed via `still_valid`) must not complete this one.
        if let Some(id) = req_id {
            if id != mshr.req_id {
                return;
            }
        }
        // A cache-supplied copy supersedes memory's copy (memory may respond
        // as well when its owner bit is stale for at most one transition).
        if !from_memory || !mshr.data_received {
            mshr.version = payload.version;
            mshr.dirty = !from_memory;
            mshr.from_cache |= !from_memory;
        }
        mshr.data_received = true;
        mshr.exclusive |= exclusive;
        self.try_complete(now, addr, out);
    }

    fn try_complete(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let Some(mshr) = self.mshrs.get(addr) else {
            return;
        };
        if !mshr.ordered {
            return;
        }
        let satisfied = if mshr.write {
            // An upgrade whose copy survived until its request was ordered
            // completes immediately; otherwise we need data.
            mshr.data_received || mshr.still_valid
        } else {
            mshr.data_received
        };
        if !satisfied {
            return;
        }
        let mut mshr = self.mshrs.release(addr).expect("checked above");

        // Determine the version we start from.
        let base_version = if mshr.data_received {
            mshr.version
        } else {
            self.l2.peek(addr).map(|l| l.version).unwrap_or(0)
        };
        let granted_exclusive = mshr.write || mshr.exclusive;
        let state = if granted_exclusive {
            MosiState::Modified
        } else {
            MosiState::Shared
        };
        let mut line = MosiLine {
            state,
            dirty: (mshr.dirty || mshr.write) && state.is_owner(),
            version: base_version,
            valid_since: mshr.issued_at,
        };
        // Stores merged into a read miss wait for their own upgrade.
        apply_pending_ops(
            &mut line,
            self.pending_ops.iter(&mshr.pending),
            granted_exclusive,
            &mut self.store_counter,
            version_node_bits(self.node),
            &mut self.completion_scratch,
            &mut self.deferred_scratch,
        );
        self.pending_ops.clear(&mut mshr.pending);
        if let Some(victim) = self.l2.insert(addr, line) {
            self.evict(now, victim.addr, victim.state, out);
        }

        let kind = miss_kind(mshr.write, mshr.upgrade);
        for (req_id, v) in self.completion_scratch.drain(..) {
            out.complete(MissCompletion {
                req_id,
                addr,
                kind,
                issued_at: mshr.issued_at,
                completed_at: now,
                data_version: v,
                cache_to_cache: mshr.from_cache,
            });
        }
        let latency = now.saturating_sub(mshr.issued_at);
        record_completed_miss(&mut self.stats, kind, latency, mshr.from_cache);

        // Serve the requests we promised to answer, in order, until one of
        // them takes ownership away from us.
        let mut still_owner = self
            .l2
            .peek(addr)
            .map(|l| l.state.is_owner())
            .unwrap_or(false);
        for request in mshr.forward_queue {
            let QueuedRequest {
                requester, write, ..
            } = request;
            if !still_owner {
                // The request is someone else's responsibility now; if it was
                // an exclusive request, our copy must go.
                if write {
                    self.l2.remove(addr);
                    self.l1.invalidate(addr);
                }
                continue;
            }
            let line = match self.l2.peek(addr).copied() {
                Some(line) => line,
                None => break,
            };
            let at = now + self.controller_latency + self.l2_latency;
            let migratory = !write
                && self.migratory_optimization
                && line.state == MosiState::Modified
                && line.dirty;
            let exclusive = write || migratory;
            let mut data = self.unicast(
                at,
                requester,
                addr,
                MsgKind::Data {
                    acks_expected: 0,
                    exclusive,
                    from_memory: false,
                    payload: DataPayload::new(line.version),
                },
                Vnet::Response,
            );
            data.req_id = request.req_id;
            self.send(out, data);
            if exclusive {
                self.l2.remove(addr);
                self.l1.invalidate(addr);
                still_owner = false;
            } else if let Some(l) = self.l2.get(addr) {
                l.state = MosiState::Owned;
            }
        }

        // Re-issue merged stores as an upgrade transaction of their own.
        if !self.deferred_scratch.is_empty() {
            self.stats.bump("merged_store_upgrades", 1);
            let upgrade_req_id = self.deferred_scratch[0].req_id;
            let mut deferred = OpList::new();
            for i in 0..self.deferred_scratch.len() {
                let op = self.deferred_scratch[i];
                self.pending_ops.push(&mut deferred, op);
            }
            self.deferred_scratch.clear();
            let upgrade = SnoopMshr {
                pending: deferred,
                req_id: upgrade_req_id,
                write: true,
                upgrade: true,
                issued_at: now,
                ordered: false,
                data_received: false,
                exclusive: false,
                version: 0,
                dirty: false,
                from_cache: false,
                still_valid: false,
                forward_queue: Vec::new(),
            };
            self.mshrs
                .allocate(addr, upgrade)
                .unwrap_or_else(|_| panic!("upgrade MSHR conflict at {}", self.node));
            let getm = Message::new(
                self.node,
                self.everyone(),
                addr,
                MsgKind::GetM,
                Vnet::Request,
                now + self.controller_latency,
            )
            .with_req_id(upgrade_req_id);
            self.send(out, getm);
        }
    }

    fn evict(&mut self, now: Cycle, addr: BlockAddr, line: MosiLine, out: &mut Outbox) {
        self.l1.invalidate(addr);
        if line.state.is_owner() {
            self.stats.misses.writebacks += 1;
            self.wb.stash(addr, line);
            // Writebacks are broadcast so the total order covers them too.
            let putm = Message::new(
                self.node,
                self.everyone(),
                addr,
                MsgKind::PutM,
                Vnet::Writeback,
                now + self.controller_latency,
            )
            .with_req_id(ReqId::new(line.version));
            self.send(out, putm);
        }
    }
}

impl CoherenceController for SnoopingController {
    fn node(&self) -> NodeId {
        self.node
    }

    fn protocol_name(&self) -> &'static str {
        "Snooping"
    }

    fn access(&mut self, now: Cycle, op: &MemOp, out: &mut Outbox) -> AccessOutcome {
        let addr = op.addr.block(self.home_map.block_bytes());
        let write = op.kind.is_write();

        // A block sitting in the writeback buffer is pulled straight back
        // into the cache: this node is still the block's owner of record, so
        // broadcasting a request for it would go unanswered (the old
        // self-deadlock). The in-flight PutM resolves as a WbCancel when this
        // node observes it with the buffer entry gone.
        if let Some(line) = self.wb.take(addr) {
            self.stats.bump("writeback_pullbacks", 1);
            if let Some(victim) = self.l2.insert(addr, line) {
                self.evict(now, victim.addr, victim.state, out);
            }
        }

        // Read hits report the copy's `valid_since` (not `now`): an
        // unacknowledged ordered broadcast is coherent but not linearizable,
        // so the legality window opens at the copy's serialization bound.
        if let Some(outcome) = mosi_hit_path(
            &mut self.l1,
            &mut self.l2,
            addr,
            write,
            now,
            self.l2_latency,
            &mut self.store_counter,
            version_node_bits(self.node),
            &mut self.stats.misses,
            true,
        ) {
            return outcome;
        }

        let had_copy = self
            .l2
            .peek(addr)
            .map(|l| l.state.readable())
            .unwrap_or(false);
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            // Merge into the outstanding miss; stores that arrive without
            // write permission are re-issued as an upgrade once the current
            // transaction completes.
            self.pending_ops.push(
                &mut mshr.pending,
                PendingOp {
                    req_id: op.id,
                    write,
                },
            );
            return AccessOutcome::Miss;
        }

        let mshr = SnoopMshr {
            pending: self.pending_ops.singleton(PendingOp {
                req_id: op.id,
                write,
            }),
            req_id: op.id,
            write,
            upgrade: write && had_copy,
            issued_at: now,
            ordered: false,
            data_received: false,
            exclusive: false,
            version: 0,
            dirty: false,
            from_cache: false,
            still_valid: false,
            forward_queue: Vec::new(),
        };
        self.mshrs
            .allocate(addr, mshr)
            .unwrap_or_else(|_| panic!("MSHR overflow at {}", self.node));
        let kind = if write { MsgKind::GetM } else { MsgKind::GetS };
        // The request is broadcast to every node, *including this one*: the
        // self-delivery, ordered by the root switch, tells the requester
        // where its request falls in the total order.
        let msg = Message::new(
            self.node,
            self.everyone(),
            addr,
            kind,
            Vnet::Request,
            now + self.controller_latency,
        )
        .with_req_id(op.id);
        self.send(out, msg);
        AccessOutcome::Miss
    }

    fn handle_message(&mut self, now: Cycle, msg: &Message, out: &mut Outbox) {
        self.stats.messages_received += 1;
        let addr = msg.addr;
        match &msg.kind {
            MsgKind::GetS => self.snoop_request(now, msg.src, addr, false, msg.req_id, out),
            MsgKind::GetM => self.snoop_request(now, msg.src, addr, true, msg.req_id, out),
            MsgKind::PutM => {
                let version = msg.req_id.map(|r| r.value()).unwrap_or(0);
                self.snoop_writeback(now, msg.src, addr, version, out);
            }
            MsgKind::Data {
                exclusive,
                from_memory,
                payload,
                ..
            } => {
                if msg.vnet == Vnet::Writeback {
                    self.on_wb_handshake(
                        now,
                        msg.src,
                        addr,
                        payload.version,
                        WbHandshake::Data,
                        out,
                    );
                } else {
                    self.handle_data(
                        now,
                        addr,
                        *exclusive,
                        *from_memory,
                        *payload,
                        msg.req_id,
                        out,
                    );
                }
            }
            MsgKind::WbCancel => {
                let version = msg.req_id.map(|r| r.value()).unwrap_or(0);
                self.on_wb_handshake(now, msg.src, addr, version, WbHandshake::Cancel, out);
            }
            other => {
                debug_assert!(false, "Snooping received unexpected message {other:?}");
            }
        }
    }

    fn handle_timer(&mut self, _now: Cycle, _timer: Timer, _out: &mut Outbox) {
        // Snooping arms no timers.
    }

    fn stats(&self) -> ControllerStats {
        self.stats.clone()
    }

    fn audit_block(&self, addr: BlockAddr) -> Vec<BlockAudit> {
        let mut audits = Vec::new();
        if let Some(line) = self.l2.peek(addr) {
            audits.push(BlockAudit {
                tokens: 0,
                owner_token: line.state.is_owner(),
                readable: line.state.readable(),
                writable: line.state.writable(),
                data_version: line.version,
                in_memory: false,
            });
        }
        audits
    }

    fn audited_blocks(&self) -> Vec<BlockAddr> {
        self.l2.blocks()
    }

    fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    fn outstanding_blocks(&self) -> Vec<BlockAddr> {
        self.mshrs.blocks_sorted()
    }

    fn line_state_stats(&self) -> LineStateStats {
        let (wb_buffer_peak, wb_window_peak) = self.wb.peaks();
        LineStateStats {
            mshr_peak: self.mshrs.high_water() as u64,
            wb_buffer_peak,
            wb_window_peak,
            home_peak: self.memory.entries_high_water(),
            persistent_peak: 0,
            state_bytes: self.mshrs.state_bytes()
                + self.wb.state_bytes()
                + self.memory.state_bytes(),
            retired_bytes_est: self.mshrs.retired_bytes_estimate()
                + self.wb.retired_bytes_estimate()
                + self.memory.retired_bytes_estimate(),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.store_counter);
        self.stats.save_state(w);
        self.l1.save_state(w);
        self.l2.save_state(w, emit_mosi_line);
        self.memory.save_state(w, |w, bit| w.bool(bit.memory_owner));
        self.mshrs
            .save_state(w, |w, mshr| emit_snoop_mshr(w, mshr, &self.pending_ops));
        self.wb.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.store_counter = r.u64()?;
        self.stats = ControllerStats::load_state(r)?;
        self.l1.load_state(r)?;
        self.l2.load_state(r, read_mosi_line)?;
        self.memory.load_state(r, |r| {
            Ok(OwnerBit {
                memory_owner: r.bool()?,
            })
        })?;
        // Rebuild the pending-op pool from scratch; handles saved inside the
        // reloaded MSHR entries are re-minted as they are read.
        self.pending_ops.reset();
        let slab = &mut self.pending_ops;
        self.mshrs.load_state(r, |r| read_snoop_mshr(r, slab))?;
        self.wb.load_state(r)?;
        Ok(())
    }
}

fn emit_snoop_mshr(w: &mut SnapWriter, mshr: &SnoopMshr, slab: &OpSlab<PendingOp>) {
    w.seq(slab.iter(&mshr.pending), emit_pending_op);
    w.u64(mshr.req_id.value());
    w.bool(mshr.write);
    w.bool(mshr.upgrade);
    w.u64(mshr.issued_at);
    w.bool(mshr.ordered);
    w.bool(mshr.data_received);
    w.bool(mshr.exclusive);
    w.u64(mshr.version);
    w.bool(mshr.dirty);
    w.bool(mshr.from_cache);
    w.bool(mshr.still_valid);
    w.seq(mshr.forward_queue.iter(), |w, q| {
        w.u32(q.requester.index() as u32);
        w.bool(q.write);
        w.option(q.req_id, |w, id| w.u64(id.value()));
    });
}

fn read_snoop_mshr(
    r: &mut SnapReader<'_>,
    slab: &mut OpSlab<PendingOp>,
) -> Result<SnoopMshr, SnapshotError> {
    let pending_len = r.bounded_len(9)?;
    let mut pending = OpList::new();
    for _ in 0..pending_len {
        slab.push(&mut pending, read_pending_op(r)?);
    }
    let req_id = ReqId::new(r.u64()?);
    let write = r.bool()?;
    let upgrade = r.bool()?;
    let issued_at = r.u64()?;
    let ordered = r.bool()?;
    let data_received = r.bool()?;
    let exclusive = r.bool()?;
    let version = r.u64()?;
    let dirty = r.bool()?;
    let from_cache = r.bool()?;
    let still_valid = r.bool()?;
    let forward_len = r.bounded_len(6)?;
    let mut forward_queue = Vec::with_capacity(forward_len);
    for _ in 0..forward_len {
        forward_queue.push(QueuedRequest {
            requester: NodeId::new(r.u32()? as usize),
            write: r.bool()?,
            req_id: r.option(|r| Ok(ReqId::new(r.u64()?)))?,
        });
    }
    Ok(SnoopMshr {
        pending,
        req_id,
        write,
        upgrade,
        issued_at,
        ordered,
        data_received,
        exclusive,
        version,
        dirty,
        from_cache,
        still_valid,
        forward_queue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{Address, MemOpKind, MissKind, ProtocolKind};

    fn config() -> SystemConfig {
        SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(ProtocolKind::Snooping)
    }

    fn controller(node: usize) -> SnoopingController {
        SnoopingController::new(NodeId::new(node), &config())
    }

    fn load(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Load)
    }

    fn store(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Store)
    }

    /// Delivers messages to every addressed node in a fixed global order,
    /// mimicking the total order the tree interconnect provides.
    fn broadcast_round(out: &Outbox, nodes: &mut [SnoopingController], now: Cycle) -> Outbox {
        let mut next = Outbox::new();
        for msg in &out.messages {
            for node in nodes.iter_mut() {
                if msg.dest.includes(node.node(), msg.src) {
                    node.handle_message(now, msg, &mut next);
                }
            }
        }
        next
    }

    fn run_until_quiet(
        mut frontier: Outbox,
        nodes: &mut [SnoopingController],
        start: Cycle,
    ) -> Vec<MissCompletion> {
        let mut completions = Vec::new();
        let mut now = start;
        for _ in 0..12 {
            if frontier.messages.is_empty() {
                break;
            }
            now += 60;
            let next = broadcast_round(&frontier, nodes, now);
            completions.extend(next.completions.iter().copied());
            frontier = next;
        }
        completions
    }

    #[test]
    fn requests_are_broadcast_to_everyone_including_self() {
        let mut c = controller(1);
        let mut out = Outbox::new();
        c.access(0, &load(0, 1), &mut out);
        assert_eq!(out.messages.len(), 1);
        match &out.messages[0].dest {
            Destination::Multicast(nodes) => {
                assert_eq!(nodes.len(), 4);
                assert!(nodes.contains(&NodeId::new(1)));
            }
            other => panic!("expected a full multicast, got {other:?}"),
        }
    }

    #[test]
    fn memory_owner_bit_makes_memory_respond_exactly_once() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &load(0, 1), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 0);
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].cache_to_cache);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Shared
        );
        // Memory stays the owner for shared data.
        let home_stats = nodes[0].stats();
        assert_eq!(home_stats.counter("memory_responses"), 1);
    }

    #[test]
    fn write_miss_transfers_ownership_from_memory_to_cache() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[2].access(0, &store(0, 1), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 0);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].kind, MissKind::Write);
        assert_eq!(
            nodes[2].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );

        // A second writer obtains the block from the first cache, not memory.
        let mut out = Outbox::new();
        nodes[3].access(1000, &store(0, 2), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 1000);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].cache_to_cache);
        assert!(nodes[2].l2.peek(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn migratory_read_takes_the_whole_block() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[2].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        let mut out = Outbox::new();
        nodes[1].access(1000, &load(0, 2), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 1000);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].cache_to_cache);
        // With the migratory optimization the reader ends up with an
        // exclusive (Modified) copy and the old owner is invalidated.
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );
        assert!(nodes[2].l2.peek(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn upgrade_completes_when_its_own_request_is_ordered() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        // Get a shared copy at node 1.
        let mut out = Outbox::new();
        nodes[1].access(0, &load(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Shared
        );

        // Store to it: the upgrade completes once the GetM is ordered, even
        // though memory also supplies (redundant) data.
        let mut out = Outbox::new();
        assert_eq!(
            nodes[1].access(1000, &store(0, 2), &mut out),
            AccessOutcome::Miss
        );
        let completions = run_until_quiet(out, &mut nodes, 1000);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].kind, MissKind::Upgrade);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );
    }

    #[test]
    fn racing_writes_are_resolved_by_the_total_order() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        // Both node 1 and node 2 issue GetM for the same block "at once";
        // the delivery order (node 1 first) is the total order.
        let mut out1 = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out1);
        let mut out2 = Outbox::new();
        nodes[2].access(0, &store(0, 2), &mut out2);
        let mut combined = Outbox::new();
        combined.messages.extend(out1.messages);
        combined.messages.extend(out2.messages);

        let completions = run_until_quiet(combined, &mut nodes, 0);
        assert_eq!(completions.len(), 2, "both writers eventually complete");
        // Exactly one cache ends with the modified copy.
        let holders: Vec<_> = (0..4)
            .filter(|n| {
                nodes[*n]
                    .l2
                    .peek(BlockAddr::new(0))
                    .map(|l| l.state == MosiState::Modified)
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(holders.len(), 1);
        // The loser's write must be ordered after the winner's: its final
        // version is the globally newest.
        let winner_version = completions.iter().map(|c| c.data_version).max().unwrap();
        let holder = holders[0];
        assert_eq!(
            nodes[holder].l2.peek(BlockAddr::new(0)).unwrap().version,
            winner_version
        );
    }

    /// A request ordered *inside* the writeback window — after the PutM
    /// marker but before the writeback data reaches the home — used to be
    /// stranded forever. The handshake queues it at the home and serves it
    /// when the data arrives.
    #[test]
    fn request_ordered_in_the_writeback_window_is_served_by_memory() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        // Evict the modified line: the PutM marker is broadcast.
        let line = *nodes[1].l2.peek(BlockAddr::new(0)).unwrap();
        nodes[1].l2.remove(BlockAddr::new(0));
        let mut out = Outbox::new();
        nodes[1].evict(2000, BlockAddr::new(0), line, &mut out);
        let putm = out.messages[0].clone();
        assert_eq!(putm.kind, MsgKind::PutM);

        // Deliver the marker everywhere. The writer ships the data; hold it.
        let mut handshake = Outbox::new();
        for node in nodes.iter_mut() {
            node.handle_message(2100, &putm, &mut handshake);
        }
        let data = handshake.messages.pop().expect("writeback data shipped");
        assert_eq!(data.vnet, Vnet::Writeback);
        assert!(nodes[1].wb.buffer_is_empty(), "entry dropped at handshake");

        // A read ordered inside the window: nobody owns the block, so the
        // home queues it rather than leaving it stranded.
        let mut out = Outbox::new();
        nodes[3].access(2200, &load(0, 9), &mut out);
        let gets = out.messages[0].clone();
        let mut after_gets = Outbox::new();
        for node in nodes.iter_mut() {
            node.handle_message(2300, &gets, &mut after_gets);
        }
        assert!(
            after_gets.messages.is_empty(),
            "no response while the window is open"
        );
        assert_eq!(nodes[0].stats().counter("wb_window_queued_requests"), 1);

        // The writeback data arrives: memory applies it and serves the queue.
        let mut served = Outbox::new();
        nodes[0].handle_message(2400, &data, &mut served);
        assert_eq!(served.messages.len(), 1);
        let completions = run_until_quiet(served, &mut nodes, 2400);
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].cache_to_cache);
        assert_eq!(completions[0].data_version, line.version);
        assert_eq!(nodes[0].stats().counter("wb_window_served_requests"), 1);
    }

    /// Re-accessing a block whose writeback is still in flight pulls it back
    /// out of the writeback buffer (the node is still the owner of record);
    /// the in-flight PutM then resolves as an explicit WbCancel at the home.
    #[test]
    fn reaccess_during_writeback_pulls_the_block_back_and_cancels() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        let line = *nodes[1].l2.peek(BlockAddr::new(0)).unwrap();
        nodes[1].l2.remove(BlockAddr::new(0));
        let mut out = Outbox::new();
        nodes[1].evict(2000, BlockAddr::new(0), line, &mut out);
        let putm = out.messages[0].clone();
        assert!(nodes[1].wb.contains(BlockAddr::new(0)));

        // Re-access before the PutM is ordered: a hit straight out of the
        // writeback buffer, no broadcast.
        let mut out = Outbox::new();
        let outcome = nodes[1].access(2050, &load(0, 2), &mut out);
        assert!(matches!(outcome, AccessOutcome::Hit { .. }));
        assert!(out.messages.is_empty());
        assert!(nodes[1].wb.buffer_is_empty());
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );

        // The stale marker resolves as a cancel; memory does not become the
        // owner and the node still answers later requests.
        let mut handshake = Outbox::new();
        for node in nodes.iter_mut() {
            node.handle_message(2100, &putm, &mut handshake);
        }
        assert_eq!(handshake.messages.len(), 1);
        assert_eq!(handshake.messages[0].kind, MsgKind::WbCancel);
        let mut quiet = Outbox::new();
        nodes[0].handle_message(2200, &handshake.messages[0], &mut quiet);
        assert!(quiet.messages.is_empty());
        assert_eq!(nodes[1].stats().counter("writeback_pullbacks"), 1);
        assert_eq!(nodes[1].stats().counter("writebacks_cancelled"), 1);

        let mut out = Outbox::new();
        nodes[3].access(3000, &load(0, 9), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 3000);
        assert_eq!(completions.len(), 1);
        assert!(
            completions[0].cache_to_cache,
            "the pulled-back owner serves"
        );
    }

    /// A GetS answered out of the writeback buffer must demote the buffer
    /// entry to Owned: if the block is then pulled back by a local store,
    /// the store must take the upgrade-broadcast path (invalidating the
    /// reader) — never hit a silently-still-Modified line while the
    /// reader's shared copy lives on.
    #[test]
    fn store_after_wb_buffer_answered_a_gets_takes_the_upgrade_path() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        // Evict the modified line; hold the PutM.
        let line = *nodes[1].l2.peek(BlockAddr::new(0)).unwrap();
        nodes[1].l2.remove(BlockAddr::new(0));
        let mut out = Outbox::new();
        nodes[1].evict(2000, BlockAddr::new(0), line, &mut out);
        let putm = out.messages[0].clone();

        // A read ordered before the PutM is answered from the buffer with a
        // shared copy; the buffer entry demotes to Owned.
        let mut out = Outbox::new();
        nodes[3].access(2100, &load(0, 2), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 2100);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].cache_to_cache);
        assert_eq!(
            nodes[1].wb.line(BlockAddr::new(0)).unwrap().state,
            MosiState::Owned
        );

        // The writer re-accesses with a store: the pullback yields an Owned
        // (not writable) line, so the store must miss and broadcast.
        let mut upgrade_out = Outbox::new();
        let outcome = nodes[1].access(2200, &store(0, 3), &mut upgrade_out);
        assert_eq!(outcome, AccessOutcome::Miss, "store must not hit silently");
        assert!(upgrade_out.messages.iter().any(|m| m.kind == MsgKind::GetM));

        // Deliver the stale PutM (resolves as a cancel), then the upgrade.
        let mut putm_out = Outbox::new();
        putm_out.messages.push(putm);
        let cancel_round = broadcast_round(&putm_out, &mut nodes, 2300);
        run_until_quiet(cancel_round, &mut nodes, 2300);
        let completions = run_until_quiet(upgrade_out, &mut nodes, 2400);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].kind, MissKind::Upgrade);
        assert_eq!(
            nodes[1].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );
        assert!(
            nodes[3].l2.peek(BlockAddr::new(0)).is_none(),
            "the reader's shared copy must be invalidated by the upgrade"
        );
    }

    #[test]
    fn writeback_restores_the_memory_owner_bit() {
        let mut nodes: Vec<SnoopingController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &store(0, 1), &mut out);
        run_until_quiet(out, &mut nodes, 0);

        // Evict the modified line.
        let line = *nodes[1].l2.peek(BlockAddr::new(0)).unwrap();
        nodes[1].l2.remove(BlockAddr::new(0));
        let mut out = Outbox::new();
        nodes[1].evict(2000, BlockAddr::new(0), line, &mut out);
        assert!(out.messages.iter().any(|m| m.kind == MsgKind::PutM));
        run_until_quiet(out, &mut nodes, 2000);

        // A later read is served by memory again.
        let mut out = Outbox::new();
        nodes[3].access(3000, &load(0, 9), &mut out);
        let completions = run_until_quiet(out, &mut nodes, 3000);
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].cache_to_cache);
        assert_eq!(completions[0].data_version, line.version);
    }
}
