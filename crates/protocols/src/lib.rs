//! Baseline coherence protocols.
//!
//! The paper compares TokenB against three baselines (Section 5.1), all MOSI
//! invalidation protocols with the migratory-sharing optimization:
//!
//! * [`SnoopingController`] — a traditional split-transaction snooping
//!   protocol in the style of the Sun Starfire. Every request is broadcast on
//!   the totally-ordered tree interconnect; the order established by the root
//!   switch resolves all races, and a single "owner bit" held in memory
//!   decides when memory must respond. It cannot run on the unordered torus.
//! * [`DirectoryController`] — a full-map blocking directory protocol in the
//!   style of the SGI Origin 2000 and Alpha 21364. Requests are sent to the
//!   block's home node, which forwards them to the current owner and issues
//!   invalidations; the directory state lives in DRAM (or in a "perfect"
//!   zero-latency directory cache for the sensitivity study).
//! * [`HammerController`] — a reverse-engineered approximation of AMD's
//!   Hammer protocol: requests go to the home node, which broadcasts a probe
//!   to every node; every node answers the requester directly (data from the
//!   owner, acknowledgements from everyone else), trading directory state and
//!   lookup latency for broadcast and acknowledgement traffic.
//!
//! All three implement the same [`tc_types::CoherenceController`] interface
//! as the TokenB controller in `tc-core`, so the system runner and the
//! benchmark harness can swap protocols freely.
//!
//! Construction goes through the [`registry`]: a table of
//! [`registry::ProtocolFactory`] functions keyed by [`tc_types::ProtocolKind`]
//! and by name, with all four paper protocols registered by default. The
//! system runner builds controllers from the registry, so a new protocol
//! variant is a registration, not an engine edit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod directory;
pub mod hammer;
pub mod registry;
pub mod snooping;

pub use common::{MosiLine, MosiState, WritebackPlane};
pub use directory::DirectoryController;
pub use hammer::HammerController;
pub use registry::{default_registry, ProtocolEntry, ProtocolFactory, ProtocolRegistry};
pub use snooping::SnoopingController;
