//! The pluggable protocol registry: construction without a closed `match`.
//!
//! The paper's thesis is that the correctness substrate is independent of
//! the performance protocol, so adding a protocol variant must not require
//! editing the engine. This module replaces the system runner's closed
//! constructor `match` over [`ProtocolKind`] with a table of
//! [`ProtocolFactory`] functions: the runner asks the registry to build each
//! node's controller, and a fifth protocol variant is one
//! [`ProtocolRegistry::register`] call instead of a runner edit.
//!
//! [`ProtocolKind`] itself deliberately stays a closed enum: it is the
//! *configuration* vocabulary — `SystemConfig::validate` uses it to reject
//! impossible systems (for example Snooping on the unordered torus) without
//! knowing anything about controller implementations. The registry opens the
//! *construction* side: several factories may be registered under the same
//! kind (an experimental TokenB variant still validates as TokenB), and
//! lookup by name picks between them.
//!
//! The four paper protocols are registered in
//! [`ProtocolRegistry::with_defaults`], which also backs the process-wide
//! [`default_registry`] used by `tc_system::System::build`. Custom variants
//! go through an owned registry and `System::build_with`:
//!
//! ```
//! use tc_protocols::registry::ProtocolRegistry;
//! use tc_types::{CoherenceController, NodeId, ProtocolKind, SystemConfig};
//!
//! fn noisy_tokenb(node: NodeId, config: &SystemConfig) -> Box<dyn CoherenceController> {
//!     // A variant would wrap or replace the stock controller here.
//!     Box::new(tc_core::TokenBController::new(node, config))
//! }
//!
//! let mut registry = ProtocolRegistry::with_defaults();
//! registry.register("TokenB-noisy", ProtocolKind::TokenB, noisy_tokenb);
//! assert_eq!(registry.resolve_name("tokenb-noisy").unwrap().kind, ProtocolKind::TokenB);
//! // The plain kind lookup now resolves to the latest registration.
//! assert_eq!(registry.resolve(ProtocolKind::TokenB).unwrap().name, "TokenB-noisy");
//! ```

use std::sync::OnceLock;

use tc_core::TokenBController;
use tc_types::{CoherenceController, NodeId, ProtocolKind, SystemConfig};

use crate::{DirectoryController, HammerController, SnoopingController};

/// Builds one node's coherence controller from the system configuration.
///
/// A plain function pointer rather than a closure: factories carry no state
/// (everything a controller needs is in `SystemConfig`), and `fn` keeps the
/// registry `Copy`-cheap, `Send + Sync`, and trivially cloneable into
/// campaign worker threads.
pub type ProtocolFactory = fn(NodeId, &SystemConfig) -> Box<dyn CoherenceController>;

/// One registered protocol variant.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolEntry {
    /// Unique (case-insensitive) name of the variant, e.g. `"TokenB"`.
    pub name: &'static str,
    /// The configuration kind this variant validates and reports as.
    pub kind: ProtocolKind,
    /// Constructor for one node's controller.
    pub factory: ProtocolFactory,
}

/// A table of protocol constructors keyed by [`ProtocolKind`] and by name.
///
/// Registration order matters for kind lookup: [`ProtocolRegistry::resolve`]
/// returns the *most recently registered* entry of a kind, so registering a
/// variant under an existing kind overrides the stock implementation without
/// removing it from name lookup.
#[derive(Debug, Clone, Default)]
pub struct ProtocolRegistry {
    entries: Vec<ProtocolEntry>,
}

impl ProtocolRegistry {
    /// An empty registry (no protocols constructible).
    pub fn empty() -> Self {
        ProtocolRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the four paper protocols registered under their
    /// standard names.
    pub fn with_defaults() -> Self {
        let mut registry = ProtocolRegistry::empty();
        registry.register(ProtocolKind::TokenB.name(), ProtocolKind::TokenB, |n, c| {
            Box::new(TokenBController::new(n, c))
        });
        registry.register(
            ProtocolKind::Snooping.name(),
            ProtocolKind::Snooping,
            |n, c| Box::new(SnoopingController::new(n, c)),
        );
        registry.register(
            ProtocolKind::Directory.name(),
            ProtocolKind::Directory,
            |n, c| Box::new(DirectoryController::new(n, c)),
        );
        registry.register(ProtocolKind::Hammer.name(), ProtocolKind::Hammer, |n, c| {
            Box::new(HammerController::new(n, c))
        });
        registry
    }

    /// Registers (or replaces, matching case-insensitively by name) a
    /// protocol variant. The entry always lands at the *end* of the table —
    /// a replacement is removed from its old position first — so
    /// [`ProtocolRegistry::resolve`]'s most-recently-registered rule holds
    /// even when re-registering an existing name.
    pub fn register(&mut self, name: &'static str, kind: ProtocolKind, factory: ProtocolFactory) {
        self.entries.retain(|e| !e.name.eq_ignore_ascii_case(name));
        self.entries.push(ProtocolEntry {
            name,
            kind,
            factory,
        });
    }

    /// The most recently registered entry of `kind`, if any.
    pub fn resolve(&self, kind: ProtocolKind) -> Option<&ProtocolEntry> {
        self.entries.iter().rev().find(|e| e.kind == kind)
    }

    /// The entry registered under `name` (case-insensitive), if any.
    pub fn resolve_name(&self, name: &str) -> Option<&ProtocolEntry> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// Builds a controller for `node` running `config.protocol`.
    ///
    /// # Panics
    ///
    /// Panics if no factory is registered for `config.protocol` — only
    /// possible with a hand-built registry, never with
    /// [`ProtocolRegistry::with_defaults`].
    pub fn build(&self, node: NodeId, config: &SystemConfig) -> Box<dyn CoherenceController> {
        let entry = self.resolve(config.protocol).unwrap_or_else(|| {
            panic!(
                "no protocol factory registered for {:?} (registered: {:?})",
                config.protocol,
                self.entries.iter().map(|e| e.name).collect::<Vec<_>>()
            )
        });
        (entry.factory)(node, config)
    }

    /// Every registered entry, in registration order.
    pub fn entries(&self) -> &[ProtocolEntry] {
        &self.entries
    }

    /// Number of registered variants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide default registry: the four paper protocols. Systems
/// built through `tc_system::System::build` construct their controllers
/// here; custom variants belong in an owned
/// [`ProtocolRegistry::with_defaults`] clone passed to `build_with`.
pub fn default_registry() -> &'static ProtocolRegistry {
    static DEFAULT: OnceLock<ProtocolRegistry> = OnceLock::new();
    DEFAULT.get_or_init(ProtocolRegistry::with_defaults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_protocol_kind() {
        let registry = ProtocolRegistry::with_defaults();
        assert_eq!(registry.len(), ProtocolKind::ALL.len());
        for kind in ProtocolKind::ALL {
            let entry = registry.resolve(kind).expect("kind registered");
            assert_eq!(entry.kind, kind);
            assert_eq!(entry.name, kind.name());
            let controller = registry.build(
                NodeId::new(0),
                &SystemConfig::isca03_default().with_protocol(kind),
            );
            assert_eq!(controller.protocol_name(), kind.name());
        }
    }

    #[test]
    fn name_lookup_is_case_insensitive() {
        let registry = ProtocolRegistry::with_defaults();
        assert!(registry.resolve_name("tokenb").is_some());
        assert!(registry.resolve_name("HAMMER").is_some());
        assert!(registry.resolve_name("mesi-2024").is_none());
    }

    #[test]
    fn a_fifth_variant_is_a_registration_not_an_engine_edit() {
        fn tokenb_variant(node: NodeId, config: &SystemConfig) -> Box<dyn CoherenceController> {
            Box::new(TokenBController::new(node, config))
        }
        let mut registry = ProtocolRegistry::with_defaults();
        registry.register("TokenB-experimental", ProtocolKind::TokenB, tokenb_variant);
        assert_eq!(registry.len(), 5);
        // Kind lookup now prefers the newest registration...
        assert_eq!(
            registry.resolve(ProtocolKind::TokenB).unwrap().name,
            "TokenB-experimental"
        );
        // ...while the stock entry stays reachable by name.
        assert_eq!(registry.resolve_name("TokenB").unwrap().name, "TokenB");
        // Re-registering the same name replaces instead of duplicating.
        registry.register("tokenb-EXPERIMENTAL", ProtocolKind::TokenB, tokenb_variant);
        assert_eq!(registry.len(), 5);
        // A replacement moves to the end of the table, so re-registering the
        // stock name restores it as the kind's most-recent entry.
        registry.register("TokenB", ProtocolKind::TokenB, tokenb_variant);
        assert_eq!(registry.len(), 5);
        assert_eq!(
            registry.resolve(ProtocolKind::TokenB).unwrap().name,
            "TokenB"
        );
    }

    #[test]
    fn empty_registry_reports_nothing() {
        let registry = ProtocolRegistry::empty();
        assert!(registry.is_empty());
        assert!(registry.resolve(ProtocolKind::TokenB).is_none());
    }

    #[test]
    fn default_registry_is_shared_and_complete() {
        let registry = default_registry();
        for kind in ProtocolKind::ALL {
            assert!(registry.resolve(kind).is_some());
        }
        assert!(std::ptr::eq(registry, default_registry()));
    }
}
