//! State shared by the MOSI baseline protocols: the stable MOSI states and
//! the home-side writeback-handshake window used by the snooping baseline.

use std::collections::VecDeque;
use std::fmt;

use tc_types::{Cycle, NodeId, ReqId};

/// Stable MOSI cache states used by the Snooping, Directory, and Hammer
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MosiState {
    /// Modified: this cache owns the only copy and it is dirty.
    Modified,
    /// Owned: this cache owns the block (must supply data, responsible for
    /// writeback) but other shared copies may exist.
    Owned,
    /// Shared: read-only copy; some other agent (cache or memory) owns it.
    Shared,
    /// Invalid: no permission.
    #[default]
    Invalid,
}

impl MosiState {
    /// Whether the block may be read in this state.
    pub fn readable(self) -> bool {
        !matches!(self, MosiState::Invalid)
    }

    /// Whether the block may be written in this state.
    pub fn writable(self) -> bool {
        matches!(self, MosiState::Modified)
    }

    /// Whether this cache is responsible for supplying data.
    pub fn is_owner(self) -> bool {
        matches!(self, MosiState::Modified | MosiState::Owned)
    }

    /// Single-letter name for traces and tests.
    pub fn letter(self) -> &'static str {
        match self {
            MosiState::Modified => "M",
            MosiState::Owned => "O",
            MosiState::Shared => "S",
            MosiState::Invalid => "I",
        }
    }
}

impl fmt::Display for MosiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.letter())
    }
}

/// A cache line in one of the MOSI baseline protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MosiLine {
    /// Stable coherence state.
    pub state: MosiState,
    /// Whether the data differs from memory (needs writeback when evicted).
    pub dirty: bool,
    /// Simulated block contents (version number).
    pub version: u64,
    /// When the transaction that installed this copy was issued — a lower
    /// bound on the copy's serialization point. Snooping reports this as the
    /// start of the legality window for read hits: on an unacknowledged
    /// ordered broadcast, a copy may legally be read until the invalidating
    /// request *arrives* at this node, which (under broadcast delivery skew)
    /// can be after the invalidating write already completed at its writer —
    /// coherent behaviour that a wall-clock freshness check would misflag.
    pub valid_since: Cycle,
}

impl MosiLine {
    /// A shared, clean line holding `version`.
    pub fn shared(version: u64) -> Self {
        MosiLine {
            state: MosiState::Shared,
            dirty: false,
            version,
            valid_since: 0,
        }
    }

    /// A modified line holding `version`.
    pub fn modified(version: u64) -> Self {
        MosiLine {
            state: MosiState::Modified,
            dirty: true,
            version,
            valid_since: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// The writeback-acknowledgement handshake window (snooping baseline).
// ---------------------------------------------------------------------------

/// How the writer resolved one ordered PutM marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbHandshake {
    /// The writer still held the block when it observed its own PutM: the
    /// writeback data is on its way to the home (or has arrived).
    Data,
    /// The writer no longer held the block (ownership was taken by a request
    /// ordered before the PutM, or the block was pulled back into the cache):
    /// no data will follow and the marker is void.
    Cancel,
}

/// A request that the home must answer once a writeback window resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The node that broadcast the request.
    pub requester: NodeId,
    /// Whether the request was a GetM (write) rather than a GetS (read).
    pub write: bool,
    /// The requester's outstanding-request id, echoed in the data response so
    /// stale responses can never complete a later miss for the same block.
    pub req_id: Option<ReqId>,
}

/// The outcome of one resolved PutM marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WbResolution {
    /// The node that broadcast the PutM.
    pub writer: NodeId,
    /// The version the PutM carried.
    pub version: u64,
    /// `Data` if memory must apply the writeback and become the owner;
    /// `Cancel` if the marker was void.
    pub outcome: WbHandshake,
    /// The queued requests memory must now answer, in order. Populated only
    /// for `Data` resolutions: reads first, then at most one trailing write
    /// (which takes ownership away from memory again). Requests queued behind
    /// that write — or behind a cancelled marker — are dropped here because
    /// the cache that took ownership observes them in its own ordered stream
    /// and answers them itself.
    pub serve: Vec<QueuedRequest>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WbEntry {
    /// An ordered PutM whose handshake (data or cancel) is still pending.
    Marker { writer: NodeId, version: u64 },
    /// A request ordered inside the window, waiting on the marker above it.
    Request(QueuedRequest),
}

/// The home-side state machine of the writeback-acknowledgement handshake.
///
/// On the ordered tree every PutM is a broadcast *marker*: the data follows
/// as a separate unordered message once the writer has confirmed — by
/// observing its own PutM in the total order — that it still owns the block.
/// Between the marker and the data (or an explicit [`WbHandshake::Cancel`]),
/// the block has no cache owner and memory does not yet have the data: any
/// request ordered in that window would previously be stranded, which is
/// exactly the race that deadlocked the snooping baseline under contention.
///
/// The window closes the race by queueing, at the home, every request
/// ordered while a marker is unresolved, and replaying the queue when the
/// handshake arrives:
///
/// * **Data** — memory applies the writeback, becomes the owner, and answers
///   the queued reads plus at most the first queued write (which takes
///   ownership away again; everything ordered after that write is observed —
///   and answered — by the write's winner).
/// * **Cancel** — the marker was void because ownership left the writer via a
///   request ordered *before* the PutM; that owner (or its successors)
///   observes and answers everything in the window, so the queue is dropped.
///
/// Markers and their resolutions are matched by `(writer, version)`.
/// Handshakes from one writer arrive in that writer's observation order
/// (same source, same destination, same virtual network — FIFO), which is
/// also the order of its markers in the total order; handshakes from
/// *different* writers can overtake each other, so resolutions that arrive
/// while an earlier marker is still open are stashed until their marker
/// reaches the head of the window.
#[derive(Debug, Clone, Default)]
pub struct WbWindow {
    queue: VecDeque<WbEntry>,
    /// Resolutions that arrived before their marker reached the head,
    /// in arrival order.
    stash: VecDeque<(NodeId, u64, WbHandshake)>,
}

impl WbWindow {
    /// Creates an empty (closed) window.
    pub fn new() -> Self {
        WbWindow::default()
    }

    /// Whether a PutM marker is unresolved (requests must queue).
    pub fn is_open(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Whether the window holds no state at all (no open marker *and* no
    /// stashed handshake) and can be dropped by its owner.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.stash.is_empty()
    }

    /// Number of queued (unanswered) requests, for audits and tests.
    pub fn queued_requests(&self) -> usize {
        self.queue
            .iter()
            .filter(|e| matches!(e, WbEntry::Request(_)))
            .count()
    }

    /// An ordered PutM from `writer` carrying `version` opens (or extends)
    /// the window. Returns any resolutions that can now be cascaded (a
    /// handshake for this marker may already have been stashed).
    pub fn on_putm(&mut self, writer: NodeId, version: u64) -> Vec<WbResolution> {
        self.queue.push_back(WbEntry::Marker { writer, version });
        self.cascade()
    }

    /// A request ordered while the window is open joins the queue.
    ///
    /// # Panics
    ///
    /// Panics if the window is closed; the caller must check
    /// [`WbWindow::is_open`] first (a request ordered outside any window is
    /// the current owner's responsibility, not memory's).
    pub fn on_request(&mut self, request: QueuedRequest) {
        assert!(
            self.is_open(),
            "request queued on a closed writeback window"
        );
        self.queue.push_back(WbEntry::Request(request));
    }

    /// The writer's handshake for `(writer, version)` arrived. Returns every
    /// marker resolution this unlocks, oldest first.
    pub fn on_handshake(
        &mut self,
        writer: NodeId,
        version: u64,
        outcome: WbHandshake,
    ) -> Vec<WbResolution> {
        self.stash.push_back((writer, version, outcome));
        self.cascade()
    }

    /// Resolves head markers against stashed handshakes until the head
    /// marker has no matching handshake (or the window empties).
    fn cascade(&mut self) -> Vec<WbResolution> {
        let mut resolutions = Vec::new();
        // The queue head is always a marker (requests are only ever queued
        // behind one, and each resolution consumes the marker plus its
        // requests), so this iterates marker by marker.
        while let Some(WbEntry::Marker { writer, version }) = self.queue.front().cloned() {
            // The oldest stashed handshake with a matching key belongs to the
            // head marker: per-writer handshakes arrive in marker order.
            let Some(stash_index) = self
                .stash
                .iter()
                .position(|(w, v, _)| *w == writer && *v == version)
            else {
                break;
            };
            let (_, _, outcome) = self.stash.remove(stash_index).expect("index just found");
            self.queue.pop_front();
            let mut serve = Vec::new();
            // Collect this marker's requests (everything up to the next
            // marker). For Data: serve reads, then at most one write; drop
            // the remainder (the write's winner answers them). For Cancel:
            // drop them all (the pre-PutM owner answers them).
            let mut ownership_left_memory = outcome == WbHandshake::Cancel;
            while let Some(WbEntry::Request(request)) = self.queue.front().cloned() {
                self.queue.pop_front();
                if !ownership_left_memory {
                    serve.push(request);
                    if request.write {
                        ownership_left_memory = true;
                    }
                }
            }
            resolutions.push(WbResolution {
                writer,
                version,
                outcome,
                serve,
            });
        }
        resolutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions_follow_mosi_semantics() {
        assert!(MosiState::Modified.readable() && MosiState::Modified.writable());
        assert!(MosiState::Owned.readable() && !MosiState::Owned.writable());
        assert!(MosiState::Shared.readable() && !MosiState::Shared.writable());
        assert!(!MosiState::Invalid.readable() && !MosiState::Invalid.writable());
    }

    #[test]
    fn ownership_is_m_or_o() {
        assert!(MosiState::Modified.is_owner());
        assert!(MosiState::Owned.is_owner());
        assert!(!MosiState::Shared.is_owner());
        assert!(!MosiState::Invalid.is_owner());
    }

    #[test]
    fn letters_are_distinct() {
        let letters = [
            MosiState::Modified.letter(),
            MosiState::Owned.letter(),
            MosiState::Shared.letter(),
            MosiState::Invalid.letter(),
        ];
        let set: std::collections::HashSet<_> = letters.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn constructors_set_expected_state() {
        assert_eq!(MosiLine::shared(3).state, MosiState::Shared);
        assert!(!MosiLine::shared(3).dirty);
        assert_eq!(MosiLine::modified(4).state, MosiState::Modified);
        assert!(MosiLine::modified(4).dirty);
        assert_eq!(MosiLine::default().state, MosiState::Invalid);
    }

    // -- WbWindow ----------------------------------------------------------

    fn read(node: usize) -> QueuedRequest {
        QueuedRequest {
            requester: NodeId::new(node),
            write: false,
            req_id: Some(ReqId::new(node as u64)),
        }
    }

    fn write(node: usize) -> QueuedRequest {
        QueuedRequest {
            write: true,
            ..read(node)
        }
    }

    #[test]
    fn data_resolution_serves_queued_reads() {
        let mut w = WbWindow::new();
        assert!(!w.is_open());
        assert!(w.on_putm(NodeId::new(1), 7).is_empty());
        assert!(w.is_open());
        w.on_request(read(2));
        w.on_request(read(3));
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Data);
        assert_eq!(resolutions[0].serve, vec![read(2), read(3)]);
        assert!(!w.is_open());
    }

    #[test]
    fn serving_stops_at_the_first_write() {
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        w.on_request(write(3));
        w.on_request(read(0)); // answered by node 3, which observes it
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(resolutions[0].serve, vec![read(2), write(3)]);
        assert!(!w.is_open());
    }

    #[test]
    fn cancel_drops_the_queue() {
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Cancel);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Cancel);
        assert!(resolutions[0].serve.is_empty());
        assert!(!w.is_open());
    }

    #[test]
    fn out_of_order_handshakes_wait_for_their_marker() {
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        w.on_putm(NodeId::new(3), 9);
        w.on_request(read(0));
        // Writer 3's data overtakes writer 1's handshake: nothing resolves.
        assert!(w
            .on_handshake(NodeId::new(3), 9, WbHandshake::Data)
            .is_empty());
        assert!(w.is_open());
        // Writer 1's cancel unlocks both markers in order.
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Cancel);
        assert_eq!(resolutions.len(), 2);
        assert_eq!(resolutions[0].version, 7);
        assert_eq!(resolutions[0].outcome, WbHandshake::Cancel);
        assert!(resolutions[0].serve.is_empty());
        assert_eq!(resolutions[1].version, 9);
        assert_eq!(resolutions[1].serve, vec![read(0)]);
        assert!(!w.is_open());
    }

    #[test]
    fn handshake_arriving_before_its_marker_is_stashed() {
        let mut w = WbWindow::new();
        assert!(w
            .on_handshake(NodeId::new(1), 7, WbHandshake::Data)
            .is_empty());
        let resolutions = w.on_putm(NodeId::new(1), 7);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Data);
    }

    #[test]
    fn duplicate_versions_from_one_writer_resolve_in_arrival_order() {
        // A block evicted, pulled back by a read (version unchanged), and
        // evicted again produces two markers with the same (writer, version);
        // per-writer FIFO delivery associates the first handshake with the
        // first marker.
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        w.on_putm(NodeId::new(1), 7);
        let first = w.on_handshake(NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].serve, vec![read(2)]);
        assert!(w.is_open());
        let second = w.on_handshake(NodeId::new(1), 7, WbHandshake::Cancel);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].outcome, WbHandshake::Cancel);
        assert!(!w.is_open());
    }

    #[test]
    #[should_panic(expected = "closed writeback window")]
    fn queueing_on_a_closed_window_panics() {
        let mut w = WbWindow::new();
        w.on_request(read(2));
    }
}
