//! State shared by the MOSI baseline protocols.

use std::fmt;

/// Stable MOSI cache states used by the Snooping, Directory, and Hammer
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MosiState {
    /// Modified: this cache owns the only copy and it is dirty.
    Modified,
    /// Owned: this cache owns the block (must supply data, responsible for
    /// writeback) but other shared copies may exist.
    Owned,
    /// Shared: read-only copy; some other agent (cache or memory) owns it.
    Shared,
    /// Invalid: no permission.
    #[default]
    Invalid,
}

impl MosiState {
    /// Whether the block may be read in this state.
    pub fn readable(self) -> bool {
        !matches!(self, MosiState::Invalid)
    }

    /// Whether the block may be written in this state.
    pub fn writable(self) -> bool {
        matches!(self, MosiState::Modified)
    }

    /// Whether this cache is responsible for supplying data.
    pub fn is_owner(self) -> bool {
        matches!(self, MosiState::Modified | MosiState::Owned)
    }

    /// Single-letter name for traces and tests.
    pub fn letter(self) -> &'static str {
        match self {
            MosiState::Modified => "M",
            MosiState::Owned => "O",
            MosiState::Shared => "S",
            MosiState::Invalid => "I",
        }
    }
}

impl fmt::Display for MosiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.letter())
    }
}

/// A cache line in one of the MOSI baseline protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MosiLine {
    /// Stable coherence state.
    pub state: MosiState,
    /// Whether the data differs from memory (needs writeback when evicted).
    pub dirty: bool,
    /// Simulated block contents (version number).
    pub version: u64,
}

impl MosiLine {
    /// A shared, clean line holding `version`.
    pub fn shared(version: u64) -> Self {
        MosiLine {
            state: MosiState::Shared,
            dirty: false,
            version,
        }
    }

    /// A modified line holding `version`.
    pub fn modified(version: u64) -> Self {
        MosiLine {
            state: MosiState::Modified,
            dirty: true,
            version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions_follow_mosi_semantics() {
        assert!(MosiState::Modified.readable() && MosiState::Modified.writable());
        assert!(MosiState::Owned.readable() && !MosiState::Owned.writable());
        assert!(MosiState::Shared.readable() && !MosiState::Shared.writable());
        assert!(!MosiState::Invalid.readable() && !MosiState::Invalid.writable());
    }

    #[test]
    fn ownership_is_m_or_o() {
        assert!(MosiState::Modified.is_owner());
        assert!(MosiState::Owned.is_owner());
        assert!(!MosiState::Shared.is_owner());
        assert!(!MosiState::Invalid.is_owner());
    }

    #[test]
    fn letters_are_distinct() {
        let letters = [
            MosiState::Modified.letter(),
            MosiState::Owned.letter(),
            MosiState::Shared.letter(),
            MosiState::Invalid.letter(),
        ];
        let set: std::collections::HashSet<_> = letters.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn constructors_set_expected_state() {
        assert_eq!(MosiLine::shared(3).state, MosiState::Shared);
        assert!(!MosiLine::shared(3).dirty);
        assert_eq!(MosiLine::modified(4).state, MosiState::Modified);
        assert!(MosiLine::modified(4).dirty);
        assert_eq!(MosiLine::default().state, MosiState::Invalid);
    }
}
