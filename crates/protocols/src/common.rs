//! State shared by the MOSI baseline protocols: the stable MOSI states, the
//! home-side writeback-handshake window used by the snooping baseline, the
//! [`WritebackPlane`] all three baselines keep their in-flight writebacks in,
//! and the shared L1-hinted hit path / miss accounting helpers.

use std::collections::VecDeque;
use std::fmt;

use tc_memsys::{hinted_get, L1Filter, LineTable, SetAssocCache};
use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AccessOutcome, BlockAddr, ControllerStats, Cycle, MissKind, MissStats, NodeId, ReqId,
};

/// Stable MOSI cache states used by the Snooping, Directory, and Hammer
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MosiState {
    /// Modified: this cache owns the only copy and it is dirty.
    Modified,
    /// Owned: this cache owns the block (must supply data, responsible for
    /// writeback) but other shared copies may exist.
    Owned,
    /// Shared: read-only copy; some other agent (cache or memory) owns it.
    Shared,
    /// Invalid: no permission.
    #[default]
    Invalid,
}

impl MosiState {
    /// Whether the block may be read in this state.
    pub fn readable(self) -> bool {
        !matches!(self, MosiState::Invalid)
    }

    /// Whether the block may be written in this state.
    pub fn writable(self) -> bool {
        matches!(self, MosiState::Modified)
    }

    /// Whether this cache is responsible for supplying data.
    pub fn is_owner(self) -> bool {
        matches!(self, MosiState::Modified | MosiState::Owned)
    }

    /// Single-letter name for traces and tests.
    pub fn letter(self) -> &'static str {
        match self {
            MosiState::Modified => "M",
            MosiState::Owned => "O",
            MosiState::Shared => "S",
            MosiState::Invalid => "I",
        }
    }
}

impl fmt::Display for MosiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.letter())
    }
}

/// A cache line in one of the MOSI baseline protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MosiLine {
    /// Stable coherence state.
    pub state: MosiState,
    /// Whether the data differs from memory (needs writeback when evicted).
    pub dirty: bool,
    /// Simulated block contents (version number).
    pub version: u64,
    /// When the transaction that installed this copy was issued — a lower
    /// bound on the copy's serialization point. Snooping reports this as the
    /// start of the legality window for read hits: on an unacknowledged
    /// ordered broadcast, a copy may legally be read until the invalidating
    /// request *arrives* at this node, which (under broadcast delivery skew)
    /// can be after the invalidating write already completed at its writer —
    /// coherent behaviour that a wall-clock freshness check would misflag.
    pub valid_since: Cycle,
}

impl MosiLine {
    /// A shared, clean line holding `version`.
    pub fn shared(version: u64) -> Self {
        MosiLine {
            state: MosiState::Shared,
            dirty: false,
            version,
            valid_since: 0,
        }
    }

    /// A modified line holding `version`.
    pub fn modified(version: u64) -> Self {
        MosiLine {
            state: MosiState::Modified,
            dirty: true,
            version,
            valid_since: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// The writeback-acknowledgement handshake window (snooping baseline).
// ---------------------------------------------------------------------------

/// How the writer resolved one ordered PutM marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbHandshake {
    /// The writer still held the block when it observed its own PutM: the
    /// writeback data is on its way to the home (or has arrived).
    Data,
    /// The writer no longer held the block (ownership was taken by a request
    /// ordered before the PutM, or the block was pulled back into the cache):
    /// no data will follow and the marker is void.
    Cancel,
}

/// A request that the home must answer once a writeback window resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The node that broadcast the request.
    pub requester: NodeId,
    /// Whether the request was a GetM (write) rather than a GetS (read).
    pub write: bool,
    /// The requester's outstanding-request id, echoed in the data response so
    /// stale responses can never complete a later miss for the same block.
    pub req_id: Option<ReqId>,
}

/// The outcome of one resolved PutM marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WbResolution {
    /// The node that broadcast the PutM.
    pub writer: NodeId,
    /// The version the PutM carried.
    pub version: u64,
    /// `Data` if memory must apply the writeback and become the owner;
    /// `Cancel` if the marker was void.
    pub outcome: WbHandshake,
    /// The queued requests memory must now answer, in order. Populated only
    /// for `Data` resolutions: reads first, then at most one trailing write
    /// (which takes ownership away from memory again). Requests queued behind
    /// that write — or behind a cancelled marker — are dropped here because
    /// the cache that took ownership observes them in its own ordered stream
    /// and answers them itself.
    pub serve: Vec<QueuedRequest>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WbEntry {
    /// An ordered PutM whose handshake (data or cancel) is still pending.
    Marker { writer: NodeId, version: u64 },
    /// A request ordered inside the window, waiting on the marker above it.
    Request(QueuedRequest),
}

/// The home-side state machine of the writeback-acknowledgement handshake.
///
/// On the ordered tree every PutM is a broadcast *marker*: the data follows
/// as a separate unordered message once the writer has confirmed — by
/// observing its own PutM in the total order — that it still owns the block.
/// Between the marker and the data (or an explicit [`WbHandshake::Cancel`]),
/// the block has no cache owner and memory does not yet have the data: any
/// request ordered in that window would previously be stranded, which is
/// exactly the race that deadlocked the snooping baseline under contention.
///
/// The window closes the race by queueing, at the home, every request
/// ordered while a marker is unresolved, and replaying the queue when the
/// handshake arrives:
///
/// * **Data** — memory applies the writeback, becomes the owner, and answers
///   the queued reads plus at most the first queued write (which takes
///   ownership away again; everything ordered after that write is observed —
///   and answered — by the write's winner).
/// * **Cancel** — the marker was void because ownership left the writer via a
///   request ordered *before* the PutM; that owner (or its successors)
///   observes and answers everything in the window, so the queue is dropped.
///
/// Markers and their resolutions are matched by `(writer, version)`.
/// Handshakes from one writer arrive in that writer's observation order
/// (same source, same destination, same virtual network — FIFO), which is
/// also the order of its markers in the total order; handshakes from
/// *different* writers can overtake each other, so resolutions that arrive
/// while an earlier marker is still open are stashed until their marker
/// reaches the head of the window.
#[derive(Debug, Clone, Default)]
pub struct WbWindow {
    queue: VecDeque<WbEntry>,
    /// Resolutions that arrived before their marker reached the head,
    /// in arrival order.
    stash: VecDeque<(NodeId, u64, WbHandshake)>,
}

impl WbWindow {
    /// Creates an empty (closed) window.
    pub fn new() -> Self {
        WbWindow::default()
    }

    /// Whether a PutM marker is unresolved (requests must queue).
    pub fn is_open(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Whether the window holds no state at all (no open marker *and* no
    /// stashed handshake) and can be dropped by its owner.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.stash.is_empty()
    }

    /// Number of queued (unanswered) requests, for audits and tests.
    pub fn queued_requests(&self) -> usize {
        self.queue
            .iter()
            .filter(|e| matches!(e, WbEntry::Request(_)))
            .count()
    }

    /// An ordered PutM from `writer` carrying `version` opens (or extends)
    /// the window. Returns any resolutions that can now be cascaded (a
    /// handshake for this marker may already have been stashed).
    pub fn on_putm(&mut self, writer: NodeId, version: u64) -> Vec<WbResolution> {
        self.queue.push_back(WbEntry::Marker { writer, version });
        self.cascade()
    }

    /// A request ordered while the window is open joins the queue.
    ///
    /// # Panics
    ///
    /// Panics if the window is closed; the caller must check
    /// [`WbWindow::is_open`] first (a request ordered outside any window is
    /// the current owner's responsibility, not memory's).
    pub fn on_request(&mut self, request: QueuedRequest) {
        assert!(
            self.is_open(),
            "request queued on a closed writeback window"
        );
        self.queue.push_back(WbEntry::Request(request));
    }

    /// The writer's handshake for `(writer, version)` arrived. Returns every
    /// marker resolution this unlocks, oldest first.
    pub fn on_handshake(
        &mut self,
        writer: NodeId,
        version: u64,
        outcome: WbHandshake,
    ) -> Vec<WbResolution> {
        self.stash.push_back((writer, version, outcome));
        self.cascade()
    }

    /// Resolves head markers against stashed handshakes until the head
    /// marker has no matching handshake (or the window empties).
    fn cascade(&mut self) -> Vec<WbResolution> {
        let mut resolutions = Vec::new();
        // The queue head is always a marker (requests are only ever queued
        // behind one, and each resolution consumes the marker plus its
        // requests), so this iterates marker by marker.
        while let Some(WbEntry::Marker { writer, version }) = self.queue.front().cloned() {
            // The oldest stashed handshake with a matching key belongs to the
            // head marker: per-writer handshakes arrive in marker order.
            let Some(stash_index) = self
                .stash
                .iter()
                .position(|(w, v, _)| *w == writer && *v == version)
            else {
                break;
            };
            let (_, _, outcome) = self.stash.remove(stash_index).expect("index just found");
            self.queue.pop_front();
            let mut serve = Vec::new();
            // Collect this marker's requests (everything up to the next
            // marker). For Data: serve reads, then at most one write; drop
            // the remainder (the write's winner answers them). For Cancel:
            // drop them all (the pre-PutM owner answers them).
            let mut ownership_left_memory = outcome == WbHandshake::Cancel;
            while let Some(WbEntry::Request(request)) = self.queue.front().cloned() {
                self.queue.pop_front();
                if !ownership_left_memory {
                    serve.push(request);
                    if request.write {
                        ownership_left_memory = true;
                    }
                }
            }
            resolutions.push(WbResolution {
                writer,
                version,
                outcome,
                serve,
            });
        }
        resolutions
    }
}

// ---------------------------------------------------------------------------
// The shared writeback plane.
// ---------------------------------------------------------------------------

/// The per-node writeback state every MOSI baseline keeps: the buffer of
/// dirty lines whose writeback is in flight, plus (for the snooping baseline,
/// at the home side) the ordered-PutM handshake windows.
///
/// This used to be hand-rolled `BTreeMap`s triplicated across
/// `snooping.rs` / `directory.rs` / `hammer.rs`; both maps now sit on the
/// compact [`LineTable`] plane, which also gives the engine its
/// per-structure occupancy peaks for free.
#[derive(Debug, Clone, Default)]
pub struct WritebackPlane {
    buffer: LineTable<MosiLine>,
    windows: LineTable<WbWindow>,
}

impl WritebackPlane {
    /// Creates an empty plane.
    pub fn new() -> Self {
        WritebackPlane::default()
    }

    // -- buffer side (all three baselines) ---------------------------------

    /// Parks an evicted owner line while its writeback is in flight.
    pub fn stash(&mut self, addr: BlockAddr, line: MosiLine) {
        self.buffer.insert(addr, line);
    }

    /// Removes and returns the buffered line (writeback acknowledged,
    /// ownership handed off, or the block pulled back into the cache).
    pub fn take(&mut self, addr: BlockAddr) -> Option<MosiLine> {
        self.buffer.remove(addr)
    }

    /// The buffered line for `addr`, copied.
    pub fn line(&self, addr: BlockAddr) -> Option<MosiLine> {
        self.buffer.get(addr).copied()
    }

    /// The buffered line for `addr`, mutably (the snooping baseline demotes
    /// a buffered line to Owned when it answers a GetS from the buffer).
    pub fn line_mut(&mut self, addr: BlockAddr) -> Option<&mut MosiLine> {
        self.buffer.get_mut(addr)
    }

    /// Returns `true` if a writeback for `addr` is buffered.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.buffer.contains(addr)
    }

    /// Returns `true` if no writebacks are buffered.
    pub fn buffer_is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    // -- window side (snooping home nodes) ---------------------------------

    /// Whether an unresolved PutM marker keeps `addr`'s window open
    /// (requests must queue at the home).
    pub fn window_is_open(&self, addr: BlockAddr) -> bool {
        self.windows
            .get(addr)
            .map(WbWindow::is_open)
            .unwrap_or(false)
    }

    /// An ordered PutM marker for `addr` opens (or extends) the home-side
    /// window; returns any resolutions a stashed handshake already unlocks.
    pub fn window_on_putm(
        &mut self,
        addr: BlockAddr,
        writer: NodeId,
        version: u64,
    ) -> Vec<WbResolution> {
        let resolutions = self.windows.or_default(addr).on_putm(writer, version);
        self.drop_window_if_empty(addr);
        resolutions
    }

    /// Queues a request ordered while `addr`'s window is open.
    ///
    /// # Panics
    ///
    /// Panics if the window is closed; check [`WritebackPlane::window_is_open`]
    /// first (a request ordered outside any window is the owner's business).
    pub fn window_queue_request(&mut self, addr: BlockAddr, request: QueuedRequest) {
        self.windows
            .get_mut(addr)
            .expect("request queued on a closed writeback window")
            .on_request(request);
    }

    /// The writer's handshake for `(writer, version)` arrived at the home;
    /// returns every resolution it unlocks, oldest first. Empty windows are
    /// dropped so the plane holds state only while a handshake is pending.
    pub fn window_on_handshake(
        &mut self,
        addr: BlockAddr,
        writer: NodeId,
        version: u64,
        outcome: WbHandshake,
    ) -> Vec<WbResolution> {
        let resolutions = self
            .windows
            .or_default(addr)
            .on_handshake(writer, version, outcome);
        self.drop_window_if_empty(addr);
        resolutions
    }

    fn drop_window_if_empty(&mut self, addr: BlockAddr) {
        if self
            .windows
            .get(addr)
            .map(WbWindow::is_empty)
            .unwrap_or(false)
        {
            self.windows.remove(addr);
        }
    }

    // -- accounting --------------------------------------------------------

    /// (peak buffered writebacks, peak open windows).
    pub fn peaks(&self) -> (u64, u64) {
        (
            self.buffer.high_water() as u64,
            self.windows.high_water() as u64,
        )
    }

    /// Bytes allocated by the plane's line tables.
    pub fn state_bytes(&self) -> u64 {
        self.buffer.allocated_bytes() + self.windows.allocated_bytes()
    }

    /// The retired-`BTreeMap` cost estimate for the same peak populations.
    pub fn retired_bytes_estimate(&self) -> u64 {
        self.buffer.retired_container_bytes_estimate()
            + self.windows.retired_container_bytes_estimate()
    }

    /// Serializes the plane: the buffered lines then the handshake windows.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.buffer.save_state(w, emit_mosi_line);
        self.windows.save_state(w, |w, window| window.save_state(w));
    }

    /// Restores [`WritebackPlane::save_state`] bytes.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.buffer = LineTable::load_state(r, read_mosi_line)?;
        self.windows = LineTable::load_state(r, WbWindow::load_state)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs for the shared MOSI state.
//
// Tags are part of the snapshot wire format; append new variants, never
// renumber.
// ---------------------------------------------------------------------------

impl MosiState {
    fn snapshot_tag(self) -> u8 {
        match self {
            MosiState::Modified => 0,
            MosiState::Owned => 1,
            MosiState::Shared => 2,
            MosiState::Invalid => 3,
        }
    }

    fn from_snapshot_tag(tag: u8) -> Result<Self, SnapshotError> {
        Ok(match tag {
            0 => MosiState::Modified,
            1 => MosiState::Owned,
            2 => MosiState::Shared,
            3 => MosiState::Invalid,
            other => return Err(SnapshotError::Corrupt(format!("MOSI state tag {other}"))),
        })
    }
}

/// Emits one [`MosiLine`] (state tag, dirty, version, valid_since).
pub(crate) fn emit_mosi_line(w: &mut SnapWriter, line: &MosiLine) {
    w.u8(line.state.snapshot_tag());
    w.bool(line.dirty);
    w.u64(line.version);
    w.u64(line.valid_since);
}

/// Reads one [`MosiLine`].
pub(crate) fn read_mosi_line(r: &mut SnapReader<'_>) -> Result<MosiLine, SnapshotError> {
    Ok(MosiLine {
        state: MosiState::from_snapshot_tag(r.u8()?)?,
        dirty: r.bool()?,
        version: r.u64()?,
        valid_since: r.u64()?,
    })
}

/// Emits one [`PendingOp`].
pub(crate) fn emit_pending_op(w: &mut SnapWriter, op: &PendingOp) {
    w.u64(op.req_id.value());
    w.bool(op.write);
}

/// Reads one [`PendingOp`].
pub(crate) fn read_pending_op(r: &mut SnapReader<'_>) -> Result<PendingOp, SnapshotError> {
    Ok(PendingOp {
        req_id: ReqId::new(r.u64()?),
        write: r.bool()?,
    })
}

fn emit_queued_request(w: &mut SnapWriter, q: &QueuedRequest) {
    w.u32(q.requester.index() as u32);
    w.bool(q.write);
    w.option(q.req_id, |w, id| w.u64(id.value()));
}

fn read_queued_request(r: &mut SnapReader<'_>) -> Result<QueuedRequest, SnapshotError> {
    Ok(QueuedRequest {
        requester: NodeId::new(r.u32()? as usize),
        write: r.bool()?,
        req_id: r.option(|r| Ok(ReqId::new(r.u64()?)))?,
    })
}

impl WbHandshake {
    fn snapshot_tag(self) -> u8 {
        match self {
            WbHandshake::Data => 0,
            WbHandshake::Cancel => 1,
        }
    }

    fn from_snapshot_tag(tag: u8) -> Result<Self, SnapshotError> {
        Ok(match tag {
            0 => WbHandshake::Data,
            1 => WbHandshake::Cancel,
            other => return Err(SnapshotError::Corrupt(format!("handshake tag {other}"))),
        })
    }
}

impl WbWindow {
    fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.queue.iter(), |w, entry| match entry {
            WbEntry::Marker { writer, version } => {
                w.u8(0);
                w.u32(writer.index() as u32);
                w.u64(*version);
            }
            WbEntry::Request(q) => {
                w.u8(1);
                emit_queued_request(w, q);
            }
        });
        w.seq(self.stash.iter(), |w, (writer, version, outcome)| {
            w.u32(writer.index() as u32);
            w.u64(*version);
            w.u8(outcome.snapshot_tag());
        });
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<WbWindow, SnapshotError> {
        let queue_len = r.bounded_len(10)?;
        let mut queue = VecDeque::with_capacity(queue_len);
        for _ in 0..queue_len {
            queue.push_back(match r.u8()? {
                0 => WbEntry::Marker {
                    writer: NodeId::new(r.u32()? as usize),
                    version: r.u64()?,
                },
                1 => WbEntry::Request(read_queued_request(r)?),
                other => {
                    return Err(SnapshotError::Corrupt(format!("wb entry tag {other}")));
                }
            });
        }
        let stash_len = r.bounded_len(13)?;
        let mut stash = VecDeque::with_capacity(stash_len);
        for _ in 0..stash_len {
            stash.push_back((
                NodeId::new(r.u32()? as usize),
                r.u64()?,
                WbHandshake::from_snapshot_tag(r.u8()?)?,
            ));
        }
        Ok(WbWindow { queue, stash })
    }
}

// ---------------------------------------------------------------------------
// Shared hit path and miss accounting.
// ---------------------------------------------------------------------------

/// One pending processor operation merged into an outstanding miss — the
/// same shape in all four protocols.
#[derive(Debug, Clone, Copy)]
pub struct PendingOp {
    /// The processor request to complete.
    pub req_id: ReqId,
    /// Whether it is a store.
    pub write: bool,
}

/// The version-counter node tag: per-node store versions are
/// `((node + 1) << 40) | counter`, unique across nodes and monotone per
/// node.
#[inline]
pub fn version_node_bits(node: NodeId) -> u64 {
    (node.index() as u64 + 1) << 40
}

/// The shared MOSI hit path: one L1-hinted L2 access serving both the
/// permission check and (for write hits) the in-place version bump.
///
/// Returns `Some(outcome)` when the access hits locally; `None` sends the
/// caller down its protocol-specific miss path. `read_valid_since_from_line`
/// selects the read-hit legality bound: the snooping baseline reports the
/// copy's `valid_since` (unacknowledged ordered broadcasts are coherent but
/// not wall-clock fresh — see [`MosiLine::valid_since`]), the acknowledged
/// protocols report `now`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mosi_hit_path(
    l1: &mut L1Filter,
    l2: &mut SetAssocCache<MosiLine>,
    addr: BlockAddr,
    write: bool,
    now: Cycle,
    l2_latency: Cycle,
    store_counter: &mut u64,
    node_bits: u64,
    misses: &mut MissStats,
    read_valid_since_from_line: bool,
) -> Option<AccessOutcome> {
    let (l1_hit, line) = hinted_get(l1, l2, addr);
    let hit_latency = if l1_hit {
        l1.latency_ns()
    } else {
        l1.latency_ns() + l2_latency
    };
    let line = line?;
    if write && line.state.writable() {
        *store_counter += 1;
        let version = node_bits | *store_counter;
        line.version = version;
        line.dirty = true;
        if l1_hit {
            misses.l1_hits += 1;
        } else {
            misses.l2_hits += 1;
        }
        return Some(AccessOutcome::Hit {
            latency: hit_latency,
            version,
            valid_since: now,
        });
    }
    if !write && line.state.readable() {
        let valid_since = if read_valid_since_from_line {
            line.valid_since
        } else {
            now
        };
        let version = line.version;
        if l1_hit {
            misses.l1_hits += 1;
        } else {
            misses.l2_hits += 1;
        }
        return Some(AccessOutcome::Hit {
            latency: hit_latency,
            version,
            valid_since,
        });
    }
    None
}

/// Performs the pending operations of a completing MOSI miss against the
/// line: stores not granted exclusivity are deferred (left in `deferred`
/// for re-issue as an upgrade), everything else yields `(req_id, version)`
/// completions in order. The output buffers are controller-owned scratch —
/// cleared here and reused across misses so the completion path allocates
/// nothing in the steady state.
pub(crate) fn apply_pending_ops<'a>(
    line: &mut MosiLine,
    pending: impl Iterator<Item = &'a PendingOp>,
    granted_exclusive: bool,
    store_counter: &mut u64,
    node_bits: u64,
    completions: &mut Vec<(ReqId, u64)>,
    deferred: &mut Vec<PendingOp>,
) {
    completions.clear();
    deferred.clear();
    for op in pending {
        if op.write && !granted_exclusive {
            deferred.push(*op);
            continue;
        }
        let version = if op.write {
            *store_counter += 1;
            let v = node_bits | *store_counter;
            line.version = v;
            line.dirty = true;
            v
        } else {
            line.version
        };
        completions.push((op.req_id, version));
    }
}

/// The miss classification every protocol shares.
#[inline]
pub(crate) fn miss_kind(write: bool, upgrade: bool) -> MissKind {
    if write {
        if upgrade {
            MissKind::Upgrade
        } else {
            MissKind::Write
        }
    } else {
        MissKind::Read
    }
}

/// Records one completed baseline-protocol miss in the controller statistics
/// (latency, class histogram, data source, and the never-reissued bucket the
/// non-token protocols always land in).
pub(crate) fn record_completed_miss(
    stats: &mut ControllerStats,
    kind: MissKind,
    latency: Cycle,
    from_cache: bool,
) {
    stats.misses.completed_misses += 1;
    stats.misses.total_miss_latency += latency;
    match kind {
        MissKind::Read => stats.misses.read_misses += 1,
        MissKind::Write => stats.misses.write_misses += 1,
        MissKind::Upgrade => stats.misses.upgrade_misses += 1,
    }
    if from_cache {
        stats.misses.cache_to_cache += 1;
    } else {
        stats.misses.from_memory += 1;
    }
    stats.reissue.not_reissued += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions_follow_mosi_semantics() {
        assert!(MosiState::Modified.readable() && MosiState::Modified.writable());
        assert!(MosiState::Owned.readable() && !MosiState::Owned.writable());
        assert!(MosiState::Shared.readable() && !MosiState::Shared.writable());
        assert!(!MosiState::Invalid.readable() && !MosiState::Invalid.writable());
    }

    #[test]
    fn ownership_is_m_or_o() {
        assert!(MosiState::Modified.is_owner());
        assert!(MosiState::Owned.is_owner());
        assert!(!MosiState::Shared.is_owner());
        assert!(!MosiState::Invalid.is_owner());
    }

    #[test]
    fn letters_are_distinct() {
        let letters = [
            MosiState::Modified.letter(),
            MosiState::Owned.letter(),
            MosiState::Shared.letter(),
            MosiState::Invalid.letter(),
        ];
        let set: std::collections::HashSet<_> = letters.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn constructors_set_expected_state() {
        assert_eq!(MosiLine::shared(3).state, MosiState::Shared);
        assert!(!MosiLine::shared(3).dirty);
        assert_eq!(MosiLine::modified(4).state, MosiState::Modified);
        assert!(MosiLine::modified(4).dirty);
        assert_eq!(MosiLine::default().state, MosiState::Invalid);
    }

    // -- WbWindow ----------------------------------------------------------

    fn read(node: usize) -> QueuedRequest {
        QueuedRequest {
            requester: NodeId::new(node),
            write: false,
            req_id: Some(ReqId::new(node as u64)),
        }
    }

    fn write(node: usize) -> QueuedRequest {
        QueuedRequest {
            write: true,
            ..read(node)
        }
    }

    #[test]
    fn data_resolution_serves_queued_reads() {
        let mut w = WbWindow::new();
        assert!(!w.is_open());
        assert!(w.on_putm(NodeId::new(1), 7).is_empty());
        assert!(w.is_open());
        w.on_request(read(2));
        w.on_request(read(3));
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Data);
        assert_eq!(resolutions[0].serve, vec![read(2), read(3)]);
        assert!(!w.is_open());
    }

    #[test]
    fn serving_stops_at_the_first_write() {
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        w.on_request(write(3));
        w.on_request(read(0)); // answered by node 3, which observes it
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(resolutions[0].serve, vec![read(2), write(3)]);
        assert!(!w.is_open());
    }

    #[test]
    fn cancel_drops_the_queue() {
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Cancel);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Cancel);
        assert!(resolutions[0].serve.is_empty());
        assert!(!w.is_open());
    }

    #[test]
    fn out_of_order_handshakes_wait_for_their_marker() {
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        w.on_putm(NodeId::new(3), 9);
        w.on_request(read(0));
        // Writer 3's data overtakes writer 1's handshake: nothing resolves.
        assert!(w
            .on_handshake(NodeId::new(3), 9, WbHandshake::Data)
            .is_empty());
        assert!(w.is_open());
        // Writer 1's cancel unlocks both markers in order.
        let resolutions = w.on_handshake(NodeId::new(1), 7, WbHandshake::Cancel);
        assert_eq!(resolutions.len(), 2);
        assert_eq!(resolutions[0].version, 7);
        assert_eq!(resolutions[0].outcome, WbHandshake::Cancel);
        assert!(resolutions[0].serve.is_empty());
        assert_eq!(resolutions[1].version, 9);
        assert_eq!(resolutions[1].serve, vec![read(0)]);
        assert!(!w.is_open());
    }

    #[test]
    fn handshake_arriving_before_its_marker_is_stashed() {
        let mut w = WbWindow::new();
        assert!(w
            .on_handshake(NodeId::new(1), 7, WbHandshake::Data)
            .is_empty());
        let resolutions = w.on_putm(NodeId::new(1), 7);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Data);
    }

    #[test]
    fn duplicate_versions_from_one_writer_resolve_in_arrival_order() {
        // A block evicted, pulled back by a read (version unchanged), and
        // evicted again produces two markers with the same (writer, version);
        // per-writer FIFO delivery associates the first handshake with the
        // first marker.
        let mut w = WbWindow::new();
        w.on_putm(NodeId::new(1), 7);
        w.on_request(read(2));
        w.on_putm(NodeId::new(1), 7);
        let first = w.on_handshake(NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].serve, vec![read(2)]);
        assert!(w.is_open());
        let second = w.on_handshake(NodeId::new(1), 7, WbHandshake::Cancel);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].outcome, WbHandshake::Cancel);
        assert!(!w.is_open());
    }

    #[test]
    #[should_panic(expected = "closed writeback window")]
    fn queueing_on_a_closed_window_panics() {
        let mut w = WbWindow::new();
        w.on_request(read(2));
    }

    // -- WritebackPlane ----------------------------------------------------

    #[test]
    fn plane_buffer_stash_take_round_trips() {
        let mut plane = WritebackPlane::new();
        let addr = BlockAddr::new(5);
        assert!(plane.buffer_is_empty());
        plane.stash(addr, MosiLine::modified(7));
        assert!(plane.contains(addr));
        assert_eq!(plane.line(addr).unwrap().version, 7);
        plane.line_mut(addr).unwrap().state = MosiState::Owned;
        assert_eq!(plane.take(addr).unwrap().state, MosiState::Owned);
        assert!(plane.take(addr).is_none());
        assert!(plane.buffer_is_empty());
    }

    #[test]
    fn plane_windows_open_queue_resolve_and_self_clean() {
        let mut plane = WritebackPlane::new();
        let addr = BlockAddr::new(9);
        assert!(!plane.window_is_open(addr));
        assert!(plane.window_on_putm(addr, NodeId::new(1), 7).is_empty());
        assert!(plane.window_is_open(addr));
        plane.window_queue_request(addr, read(2));
        let resolutions = plane.window_on_handshake(addr, NodeId::new(1), 7, WbHandshake::Data);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].serve, vec![read(2)]);
        // The resolved (empty) window is dropped by the plane itself.
        assert!(!plane.window_is_open(addr));
        let (_, window_peak) = plane.peaks();
        assert_eq!(window_peak, 1, "the open window counted toward the peak");
    }

    #[test]
    fn plane_stashed_handshake_keeps_the_window_entry_alive() {
        let mut plane = WritebackPlane::new();
        let addr = BlockAddr::new(3);
        // Handshake overtakes its marker: not open, but not droppable either.
        assert!(plane
            .window_on_handshake(addr, NodeId::new(1), 7, WbHandshake::Data)
            .is_empty());
        assert!(!plane.window_is_open(addr));
        let resolutions = plane.window_on_putm(addr, NodeId::new(1), 7);
        assert_eq!(resolutions.len(), 1);
        assert_eq!(resolutions[0].outcome, WbHandshake::Data);
        assert!(!plane.window_is_open(addr));
    }

    #[test]
    #[should_panic(expected = "closed writeback window")]
    fn plane_queueing_without_an_open_window_panics() {
        let mut plane = WritebackPlane::new();
        plane.window_queue_request(BlockAddr::new(1), read(2));
    }

    #[test]
    fn plane_accounting_tracks_peaks_and_bytes() {
        let mut plane = WritebackPlane::new();
        for i in 0..6u64 {
            plane.stash(BlockAddr::new(i), MosiLine::modified(i));
        }
        for i in 0..6u64 {
            plane.take(BlockAddr::new(i));
        }
        let (buffer_peak, window_peak) = plane.peaks();
        assert_eq!(buffer_peak, 6);
        assert_eq!(window_peak, 0);
        assert!(plane.state_bytes() > 0);
        assert!(plane.retired_bytes_estimate() > 0);
    }
}
