//! AMD-Hammer-style broadcast protocol.
//!
//! The Hammer protocol (and its relatives: Intel's E8870 Scalability Port,
//! IBM's xSeries Summit) avoids directory storage and directory lookup
//! latency by broadcasting. A requester sends its request to the block's home
//! node; the home immediately broadcasts a probe to every other node and, in
//! parallel, fetches the block from memory. Every probed node answers the
//! requester directly — the owning cache with data, everyone else with an
//! acknowledgement — and the requester finishes when it has heard from
//! everyone (N-1 probe responses plus the memory response), then unblocks the
//! home. The home serializes requests per block while one is outstanding.
//!
//! Compared with a directory protocol this removes the directory lookup from
//! the critical path but keeps the home-node indirection, and it costs far
//! more interconnect traffic because every miss triggers a broadcast and a
//! full set of acknowledgements (the paper's Figure 5b).

use std::collections::VecDeque;

use tc_memsys::{HomeMemory, L1Filter, MshrTable, OpList, OpSlab, SetAssocCache};
use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AccessOutcome, BlockAddr, BlockAudit, CoherenceController, ControllerStats, Cycle, DataPayload,
    Destination, HomeMap, LineStateStats, MemOp, Message, MissCompletion, MsgKind, NodeId, Outbox,
    ReqId, SystemConfig, Timer, Vnet,
};

use crate::common::{
    apply_pending_ops, emit_mosi_line, emit_pending_op, miss_kind, mosi_hit_path, read_mosi_line,
    read_pending_op, record_completed_miss, version_node_bits, MosiLine, MosiState, PendingOp,
    WritebackPlane,
};

#[derive(Debug)]
struct HammerMshr {
    pending: OpList,
    write: bool,
    upgrade: bool,
    issued_at: Cycle,
    responses_expected: u32,
    responses_received: u32,
    data_received: bool,
    exclusive: bool,
    version: u64,
    dirty: bool,
    from_cache: bool,
    memory_version: u64,
    memory_data_received: bool,
}

/// Home-side serialization state for one block.
#[derive(Debug, Clone, Default)]
struct HammerEntry {
    busy: bool,
    queue: VecDeque<(NodeId, bool)>,
}

/// The Hammer-protocol controller for one node.
#[derive(Debug)]
pub struct HammerController {
    node: NodeId,
    num_nodes: usize,
    home_map: HomeMap,
    l1: L1Filter,
    l2: SetAssocCache<MosiLine>,
    l2_latency: Cycle,
    controller_latency: Cycle,
    dram_latency: Cycle,
    memory: HomeMemory<HammerEntry>,
    mshrs: MshrTable<HammerMshr>,
    /// In-flight writebacks (PutM sent, WbAck pending) on the shared plane.
    wb: WritebackPlane,
    migratory_optimization: bool,
    stats: ControllerStats,
    store_counter: u64,
    /// Pooled storage for every MSHR entry's pending-op list.
    pending_ops: OpSlab<PendingOp>,
    /// Reusable completion/deferral scratch for `apply_pending_ops`.
    completion_scratch: Vec<(ReqId, u64)>,
    deferred_scratch: Vec<PendingOp>,
}

impl HammerController {
    /// Creates the Hammer controller for `node` under `config`.
    pub fn new(node: NodeId, config: &SystemConfig) -> Self {
        let home_map = HomeMap::new(config.num_nodes, config.block_bytes);
        HammerController {
            node,
            num_nodes: config.num_nodes,
            home_map,
            l1: L1Filter::new(&config.l1, config.block_bytes),
            l2: SetAssocCache::new(&config.l2, config.block_bytes),
            l2_latency: config.l2.latency_ns,
            controller_latency: config.controller_latency_ns,
            dram_latency: config.dram_latency_ns,
            memory: HomeMemory::new(node, home_map, config.dram_latency_ns),
            mshrs: MshrTable::new(config.processor.max_outstanding_misses.max(1)),
            wb: WritebackPlane::new(),
            migratory_optimization: config.token.migratory_optimization,
            stats: ControllerStats::new(),
            store_counter: 0,
            pending_ops: OpSlab::new(),
            completion_scratch: Vec::new(),
            deferred_scratch: Vec::new(),
        }
    }

    fn home_of(&self, addr: BlockAddr) -> NodeId {
        self.home_map.home_of(addr)
    }

    fn is_home(&self, addr: BlockAddr) -> bool {
        self.home_map.is_home(self.node, addr)
    }

    fn send(&mut self, out: &mut Outbox, msg: Message) {
        self.stats.messages_sent += 1;
        out.send(msg);
    }

    fn unicast(
        &self,
        at: Cycle,
        dest: NodeId,
        addr: BlockAddr,
        kind: MsgKind,
        vnet: Vnet,
    ) -> Message {
        Message::new(self.node, Destination::Node(dest), addr, kind, vnet, at)
    }

    // ------------------------------------------------------------------
    // Home side.
    // ------------------------------------------------------------------

    fn home_handle_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        debug_assert!(self.is_home(addr));
        let entry = self.memory.state_mut(addr);
        if entry.busy {
            entry.queue.push_back((requester, write));
            return;
        }
        entry.busy = true;
        self.serve_at_home(now, requester, addr, write, out);
    }

    fn serve_at_home(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        // Probe every node except the requester (including this home node's
        // own cache, which receives the probe like any other node).
        let probe_targets: Vec<NodeId> = (0..self.num_nodes)
            .map(NodeId::new)
            .filter(|n| *n != requester)
            .collect();
        let probe = Message::new(
            self.node,
            Destination::multicast(probe_targets),
            addr,
            MsgKind::HammerProbe { requester, write },
            Vnet::Forwarded,
            now + self.controller_latency,
        );
        self.send(out, probe);
        self.stats.bump("hammer_probes", 1);

        // In parallel, memory supplies its copy of the data.
        let version = self.memory.data_version(addr);
        let data = self.unicast(
            now + self.controller_latency + self.dram_latency,
            requester,
            addr,
            MsgKind::Data {
                acks_expected: 0,
                exclusive: write,
                from_memory: true,
                payload: DataPayload::new(version),
            },
            Vnet::Response,
        );
        self.send(out, data);
    }

    fn home_handle_unblock(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let next = {
            let entry = self.memory.state_mut(addr);
            entry.busy = false;
            entry.queue.pop_front()
        };
        if let Some((requester, write)) = next {
            let entry = self.memory.state_mut(addr);
            entry.busy = true;
            self.serve_at_home(now, requester, addr, write, out);
        }
    }

    fn home_handle_putm(
        &mut self,
        now: Cycle,
        from: NodeId,
        addr: BlockAddr,
        version: u64,
        out: &mut Outbox,
    ) {
        self.memory.write_data(addr, version);
        let ack = self.unicast(
            now + self.controller_latency,
            from,
            addr,
            MsgKind::WbAck,
            Vnet::Response,
        );
        self.send(out, ack);
    }

    // ------------------------------------------------------------------
    // Cache side.
    // ------------------------------------------------------------------

    fn line_or_wb(&self, addr: BlockAddr) -> Option<MosiLine> {
        self.l2.peek(addr).copied().or_else(|| self.wb.line(addr))
    }

    fn handle_probe(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        let at = now + self.controller_latency + self.l2_latency;
        let line = self.line_or_wb(addr);
        match line {
            Some(line) if line.state.is_owner() => {
                let migratory = !write
                    && self.migratory_optimization
                    && line.state == MosiState::Modified
                    && line.dirty;
                let exclusive = write || migratory;
                let data = self.unicast(
                    at,
                    requester,
                    addr,
                    MsgKind::Data {
                        acks_expected: 0,
                        exclusive,
                        from_memory: false,
                        payload: DataPayload::new(line.version),
                    },
                    Vnet::Response,
                );
                self.send(out, data);
                if exclusive {
                    self.l2.remove(addr);
                    self.l1.invalidate(addr);
                } else if let Some(l) = self.l2.get(addr) {
                    l.state = MosiState::Owned;
                }
            }
            Some(_) if write => {
                // A shared copy: invalidate and acknowledge.
                self.l2.remove(addr);
                self.l1.invalidate(addr);
                let ack = self.unicast(at, requester, addr, MsgKind::InvAck, Vnet::Response);
                self.send(out, ack);
            }
            _ => {
                // Nothing (or a read probe at a plain sharer): acknowledge.
                let ack = self.unicast(at, requester, addr, MsgKind::InvAck, Vnet::Response);
                self.send(out, ack);
            }
        }
    }

    fn handle_response(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        data: Option<(bool, bool, DataPayload)>,
        out: &mut Outbox,
    ) {
        let Some(mshr) = self.mshrs.get_mut(addr) else {
            return;
        };
        mshr.responses_received += 1;
        if let Some((exclusive, from_memory, payload)) = data {
            if from_memory {
                mshr.memory_data_received = true;
                mshr.memory_version = payload.version;
            } else {
                // A cache's copy supersedes memory's possibly stale copy.
                mshr.data_received = true;
                mshr.version = payload.version;
                mshr.dirty = true;
                mshr.from_cache = true;
            }
            mshr.exclusive |= exclusive;
        }
        self.try_complete(now, addr, out);
    }

    fn try_complete(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let Some(mshr) = self.mshrs.get(addr) else {
            return;
        };
        if mshr.responses_received < mshr.responses_expected {
            return;
        }
        if !mshr.data_received && !mshr.memory_data_received {
            return;
        }
        let mut mshr = self.mshrs.release(addr).expect("checked above");

        let (version, dirty, from_cache) = if mshr.data_received {
            (mshr.version, mshr.dirty, true)
        } else {
            (mshr.memory_version, false, false)
        };
        let granted_exclusive = mshr.write || mshr.exclusive;
        let state = if granted_exclusive {
            MosiState::Modified
        } else {
            MosiState::Shared
        };
        let mut line = MosiLine {
            state,
            dirty: dirty && state.is_owner(),
            version,
            valid_since: mshr.issued_at,
        };
        // Stores merged into a read miss wait for an upgrade transaction.
        apply_pending_ops(
            &mut line,
            self.pending_ops.iter(&mshr.pending),
            granted_exclusive,
            &mut self.store_counter,
            version_node_bits(self.node),
            &mut self.completion_scratch,
            &mut self.deferred_scratch,
        );
        self.pending_ops.clear(&mut mshr.pending);
        if let Some(victim) = self.l2.insert(addr, line) {
            self.evict(now, victim.addr, victim.state, out);
        }

        let kind = miss_kind(mshr.write, mshr.upgrade);
        for (req_id, v) in self.completion_scratch.drain(..) {
            out.complete(MissCompletion {
                req_id,
                addr,
                kind,
                issued_at: mshr.issued_at,
                completed_at: now,
                data_version: v,
                cache_to_cache: from_cache,
            });
        }

        let latency = now.saturating_sub(mshr.issued_at);
        record_completed_miss(&mut self.stats, kind, latency, from_cache);

        let home = self.home_of(addr);
        let unblock = self.unicast(
            now + self.controller_latency,
            home,
            addr,
            MsgKind::Unblock,
            Vnet::Response,
        );
        self.send(out, unblock);

        // Re-issue merged stores as an upgrade transaction.
        if !self.deferred_scratch.is_empty() {
            self.stats.bump("merged_store_upgrades", 1);
            let mut deferred = OpList::new();
            for i in 0..self.deferred_scratch.len() {
                let op = self.deferred_scratch[i];
                self.pending_ops.push(&mut deferred, op);
            }
            self.deferred_scratch.clear();
            let upgrade = HammerMshr {
                pending: deferred,
                write: true,
                upgrade: true,
                issued_at: now,
                responses_expected: self.num_nodes as u32,
                responses_received: 0,
                data_received: false,
                exclusive: false,
                version: 0,
                dirty: false,
                from_cache: false,
                memory_version: 0,
                memory_data_received: false,
            };
            self.mshrs
                .allocate(addr, upgrade)
                .unwrap_or_else(|_| panic!("upgrade MSHR conflict at {}", self.node));
            let getm = self.unicast(
                now + self.controller_latency,
                home,
                addr,
                MsgKind::GetM,
                Vnet::Request,
            );
            self.send(out, getm);
        }
    }

    fn evict(&mut self, now: Cycle, addr: BlockAddr, line: MosiLine, out: &mut Outbox) {
        self.l1.invalidate(addr);
        if line.state.is_owner() {
            self.stats.misses.writebacks += 1;
            self.wb.stash(addr, line);
            let home = self.home_of(addr);
            let putm = Message::new(
                self.node,
                Destination::Node(home),
                addr,
                MsgKind::PutM,
                Vnet::Writeback,
                now + self.controller_latency,
            )
            .with_req_id(ReqId::new(line.version));
            self.send(out, putm);
        }
    }
}

impl CoherenceController for HammerController {
    fn node(&self) -> NodeId {
        self.node
    }

    fn protocol_name(&self) -> &'static str {
        "Hammer"
    }

    fn access(&mut self, now: Cycle, op: &MemOp, out: &mut Outbox) -> AccessOutcome {
        let addr = op.addr.block(self.home_map.block_bytes());
        let write = op.kind.is_write();
        // Hammer hits are probe/ack-protected, so read hits are wall-clock
        // fresh (`valid_since = now`).
        if let Some(outcome) = mosi_hit_path(
            &mut self.l1,
            &mut self.l2,
            addr,
            write,
            now,
            self.l2_latency,
            &mut self.store_counter,
            version_node_bits(self.node),
            &mut self.stats.misses,
            false,
        ) {
            return outcome;
        }

        let had_copy = self
            .l2
            .peek(addr)
            .map(|l| l.state.readable())
            .unwrap_or(false);
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            self.pending_ops.push(
                &mut mshr.pending,
                PendingOp {
                    req_id: op.id,
                    write,
                },
            );
            // A later write merged into a read miss simply waits; the miss
            // will complete with whatever permission was requested first and
            // the store will retry as an upgrade (kept simple: Hammer is a
            // baseline).
            return AccessOutcome::Miss;
        }

        let mshr = HammerMshr {
            pending: self.pending_ops.singleton(PendingOp {
                req_id: op.id,
                write,
            }),
            write,
            upgrade: write && had_copy,
            issued_at: now,
            // N-1 probe responses plus the memory response.
            responses_expected: self.num_nodes as u32,
            responses_received: 0,
            data_received: false,
            exclusive: false,
            version: 0,
            dirty: false,
            from_cache: false,
            memory_version: 0,
            memory_data_received: false,
        };
        self.mshrs
            .allocate(addr, mshr)
            .unwrap_or_else(|_| panic!("MSHR overflow at {}", self.node));
        let home = self.home_of(addr);
        let kind = if write { MsgKind::GetM } else { MsgKind::GetS };
        let msg = self.unicast(
            now + self.controller_latency,
            home,
            addr,
            kind,
            Vnet::Request,
        );
        self.send(out, msg);
        AccessOutcome::Miss
    }

    fn handle_message(&mut self, now: Cycle, msg: &Message, out: &mut Outbox) {
        self.stats.messages_received += 1;
        let addr = msg.addr;
        match &msg.kind {
            MsgKind::GetS => self.home_handle_request(now, msg.src, addr, false, out),
            MsgKind::GetM => self.home_handle_request(now, msg.src, addr, true, out),
            MsgKind::HammerProbe { requester, write } => {
                self.handle_probe(now, *requester, addr, *write, out)
            }
            MsgKind::Data {
                exclusive,
                from_memory,
                payload,
                ..
            } => self.handle_response(now, addr, Some((*exclusive, *from_memory, *payload)), out),
            MsgKind::InvAck => self.handle_response(now, addr, None, out),
            MsgKind::Unblock => self.home_handle_unblock(now, addr, out),
            MsgKind::PutM => {
                let version = msg.req_id.map(|r| r.value()).unwrap_or(0);
                self.home_handle_putm(now, msg.src, addr, version, out);
            }
            MsgKind::WbAck => {
                self.wb.take(addr);
            }
            other => {
                debug_assert!(false, "Hammer received unexpected message {other:?}");
            }
        }
    }

    fn handle_timer(&mut self, _now: Cycle, _timer: Timer, _out: &mut Outbox) {
        // Hammer arms no timers.
    }

    fn stats(&self) -> ControllerStats {
        self.stats.clone()
    }

    fn audit_block(&self, addr: BlockAddr) -> Vec<BlockAudit> {
        let mut audits = Vec::new();
        if let Some(line) = self.l2.peek(addr) {
            audits.push(BlockAudit {
                tokens: 0,
                owner_token: line.state.is_owner(),
                readable: line.state.readable(),
                writable: line.state.writable(),
                data_version: line.version,
                in_memory: false,
            });
        }
        audits
    }

    fn audited_blocks(&self) -> Vec<BlockAddr> {
        self.l2.blocks()
    }

    fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    fn outstanding_blocks(&self) -> Vec<BlockAddr> {
        self.mshrs.blocks_sorted()
    }

    fn line_state_stats(&self) -> LineStateStats {
        let (wb_buffer_peak, wb_window_peak) = self.wb.peaks();
        LineStateStats {
            mshr_peak: self.mshrs.high_water() as u64,
            wb_buffer_peak,
            wb_window_peak,
            home_peak: self.memory.entries_high_water(),
            persistent_peak: 0,
            state_bytes: self.mshrs.state_bytes()
                + self.wb.state_bytes()
                + self.memory.state_bytes(),
            retired_bytes_est: self.mshrs.retired_bytes_estimate()
                + self.wb.retired_bytes_estimate()
                + self.memory.retired_bytes_estimate(),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.store_counter);
        self.stats.save_state(w);
        self.l1.save_state(w);
        self.l2.save_state(w, emit_mosi_line);
        self.memory.save_state(w, emit_hammer_entry);
        self.mshrs
            .save_state(w, |w, mshr| emit_hammer_mshr(w, mshr, &self.pending_ops));
        self.wb.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.store_counter = r.u64()?;
        self.stats = ControllerStats::load_state(r)?;
        self.l1.load_state(r)?;
        self.l2.load_state(r, read_mosi_line)?;
        self.memory.load_state(r, read_hammer_entry)?;
        // Rebuild the pending-op pool from scratch; handles saved inside the
        // reloaded MSHR entries are re-minted as they are read.
        self.pending_ops.reset();
        let slab = &mut self.pending_ops;
        self.mshrs.load_state(r, |r| read_hammer_mshr(r, slab))?;
        self.wb.load_state(r)?;
        Ok(())
    }
}

fn emit_hammer_entry(w: &mut SnapWriter, entry: &HammerEntry) {
    w.bool(entry.busy);
    w.seq(entry.queue.iter(), |w, &(node, write)| {
        w.u32(node.index() as u32);
        w.bool(write);
    });
}

fn read_hammer_entry(r: &mut SnapReader<'_>) -> Result<HammerEntry, SnapshotError> {
    let busy = r.bool()?;
    let queue_len = r.bounded_len(5)?;
    let mut queue = VecDeque::with_capacity(queue_len);
    for _ in 0..queue_len {
        queue.push_back((NodeId::new(r.u32()? as usize), r.bool()?));
    }
    Ok(HammerEntry { busy, queue })
}

fn emit_hammer_mshr(w: &mut SnapWriter, mshr: &HammerMshr, slab: &OpSlab<PendingOp>) {
    w.seq(slab.iter(&mshr.pending), emit_pending_op);
    w.bool(mshr.write);
    w.bool(mshr.upgrade);
    w.u64(mshr.issued_at);
    w.u32(mshr.responses_expected);
    w.u32(mshr.responses_received);
    w.bool(mshr.data_received);
    w.bool(mshr.exclusive);
    w.u64(mshr.version);
    w.bool(mshr.dirty);
    w.bool(mshr.from_cache);
    w.u64(mshr.memory_version);
    w.bool(mshr.memory_data_received);
}

fn read_hammer_mshr(
    r: &mut SnapReader<'_>,
    slab: &mut OpSlab<PendingOp>,
) -> Result<HammerMshr, SnapshotError> {
    let pending_len = r.bounded_len(9)?;
    let mut pending = OpList::new();
    for _ in 0..pending_len {
        slab.push(&mut pending, read_pending_op(r)?);
    }
    Ok(HammerMshr {
        pending,
        write: r.bool()?,
        upgrade: r.bool()?,
        issued_at: r.u64()?,
        responses_expected: r.u32()?,
        responses_received: r.u32()?,
        data_received: r.bool()?,
        exclusive: r.bool()?,
        version: r.u64()?,
        dirty: r.bool()?,
        from_cache: r.bool()?,
        memory_version: r.u64()?,
        memory_data_received: r.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{Address, MemOpKind, MissKind};

    fn config() -> SystemConfig {
        SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(tc_types::ProtocolKind::Hammer)
            .with_topology(tc_types::TopologyKind::Torus)
    }

    fn controller(node: usize) -> HammerController {
        HammerController::new(NodeId::new(node), &config())
    }

    fn load(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Load)
    }

    fn store(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Store)
    }

    fn deliver_all(out: &Outbox, nodes: &mut [HammerController], now: Cycle) -> Outbox {
        let mut next = Outbox::new();
        for msg in &out.messages {
            for node in nodes.iter_mut() {
                if msg.dest.includes(node.node(), msg.src) {
                    node.handle_message(now, msg, &mut next);
                }
            }
        }
        next
    }

    #[test]
    fn home_broadcasts_probes_and_memory_data() {
        let mut home = controller(0);
        let mut requester = controller(1);
        let mut out = Outbox::new();
        requester.access(0, &load(0, 1), &mut out);
        assert_eq!(out.messages[0].dest, Destination::Node(NodeId::new(0)));

        let mut home_only = [home];
        let home_out = deliver_all(&out, &mut home_only, 10);
        home = home_only.into_iter().next().unwrap();
        let probe = home_out
            .messages
            .iter()
            .find(|m| matches!(m.kind, MsgKind::HammerProbe { .. }))
            .expect("probe broadcast");
        match &probe.dest {
            Destination::Multicast(nodes) => {
                assert_eq!(nodes.len(), 3);
                assert!(!nodes.contains(&NodeId::new(1)));
            }
            other => panic!("expected multicast, got {other:?}"),
        }
        assert!(home_out.messages.iter().any(|m| matches!(
            m.kind,
            MsgKind::Data {
                from_memory: true,
                ..
            }
        )));
        let _ = home;
    }

    #[test]
    fn requester_waits_for_every_response() {
        let mut nodes: Vec<HammerController> = (0..4).map(controller).collect();
        // Node 1 issues a read miss for block 0 (homed at node 0).
        let mut out = Outbox::new();
        nodes[1].access(0, &load(0, 1), &mut out);

        // Deliver the request to the home, then fan everything out until the
        // requester completes.
        let mut frontier = out;
        let mut completions = Vec::new();
        for step in 0..6 {
            let produced = {
                let mut next = Outbox::new();
                for msg in &frontier.messages {
                    for node in nodes.iter_mut() {
                        if msg.dest.includes(node.node(), msg.src) {
                            node.handle_message(10 * (step + 1), msg, &mut next);
                        }
                    }
                }
                next
            };
            completions.extend(produced.completions.iter().copied());
            frontier = produced;
            if !completions.is_empty() {
                break;
            }
        }
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].kind, MissKind::Read);
        assert!(!completions[0].cache_to_cache, "data came from memory");
    }

    #[test]
    fn dirty_owner_data_supersedes_memory_data() {
        let mut nodes: Vec<HammerController> = (0..4).map(controller).collect();

        // Node 2 takes block 0 to M (run the full exchange).
        let mut frontier = Outbox::new();
        nodes[2].access(0, &store(0, 1), &mut frontier);
        for step in 0..6 {
            let mut next = Outbox::new();
            for msg in &frontier.messages {
                for node in nodes.iter_mut() {
                    if msg.dest.includes(node.node(), msg.src) {
                        node.handle_message(100 * (step + 1), msg, &mut next);
                    }
                }
            }
            frontier = next;
        }
        assert_eq!(
            nodes[2].l2.peek(BlockAddr::new(0)).unwrap().state,
            MosiState::Modified
        );
        let written_version = nodes[2].l2.peek(BlockAddr::new(0)).unwrap().version;

        // Node 3 now reads the block; the dirty copy at node 2 must win over
        // the stale memory copy.
        let mut frontier = Outbox::new();
        nodes[3].access(1000, &load(0, 2), &mut frontier);
        let mut observed = None;
        for step in 0..6 {
            let mut next = Outbox::new();
            for msg in &frontier.messages {
                for node in nodes.iter_mut() {
                    if msg.dest.includes(node.node(), msg.src) {
                        node.handle_message(1000 + 100 * (step + 1), msg, &mut next);
                    }
                }
            }
            for c in &next.completions {
                observed = Some(*c);
            }
            frontier = next;
            if observed.is_some() {
                break;
            }
        }
        let completion = observed.expect("read must complete");
        assert!(completion.cache_to_cache);
        assert_eq!(completion.data_version, written_version);
    }

    #[test]
    fn probes_generate_many_acknowledgements() {
        let mut nodes: Vec<HammerController> = (0..4).map(controller).collect();
        let mut out = Outbox::new();
        nodes[1].access(0, &load(0, 1), &mut out);
        // Request reaches home.
        let mut home_out = Outbox::new();
        for msg in &out.messages {
            nodes[0].handle_message(10, msg, &mut home_out);
        }
        // Probes reach the other nodes; every one answers.
        let mut acks = 0;
        for msg in &home_out.messages {
            if let MsgKind::HammerProbe { .. } = msg.kind {
                for target in msg.dest.expand(4, msg.src) {
                    let mut reply = Outbox::new();
                    nodes[target.index()].handle_message(20, msg, &mut reply);
                    acks += reply
                        .messages
                        .iter()
                        .filter(|m| m.kind == MsgKind::InvAck)
                        .count();
                }
            }
        }
        assert_eq!(acks, 3, "every probed node acknowledges");
    }

    #[test]
    fn home_serializes_requests_per_block() {
        let mut home = controller(0);
        let req_a = Message::new(
            NodeId::new(1),
            Destination::Node(NodeId::new(0)),
            BlockAddr::new(0),
            MsgKind::GetM,
            Vnet::Request,
            0,
        );
        let req_b = Message::new(
            NodeId::new(2),
            Destination::Node(NodeId::new(0)),
            BlockAddr::new(0),
            MsgKind::GetM,
            Vnet::Request,
            5,
        );
        let mut out = Outbox::new();
        home.handle_message(10, &req_a, &mut out);
        let first_probes = out.messages.len();
        let mut out2 = Outbox::new();
        home.handle_message(15, &req_b, &mut out2);
        assert!(out2.messages.is_empty(), "second request must queue");
        // The unblock from the first requester releases the second.
        let unblock = Message::new(
            NodeId::new(1),
            Destination::Node(NodeId::new(0)),
            BlockAddr::new(0),
            MsgKind::Unblock,
            Vnet::Response,
            50,
        );
        let mut out3 = Outbox::new();
        home.handle_message(60, &unblock, &mut out3);
        assert_eq!(out3.messages.len(), first_probes);
    }
}
