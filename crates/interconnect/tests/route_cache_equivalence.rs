//! Property test: the route-cached, scratch-array fabric must be
//! observationally identical to a naive fabric that recomputes every route on
//! every send.
//!
//! The reference implementation below is the pre-optimization `send`
//! algorithm, kept verbatim: `Topology::route` per destination per send,
//! link deduplication through a hash set, and arrival times in a hash map.
//! Both fabrics are driven with the same deterministic pseudo-random message
//! stream across tree and torus topologies, unicast/multicast/broadcast
//! destinations, and both bandwidth modes; every delivery (node, time,
//! message), the traffic accounting, and the per-link utilization must
//! match exactly. Cases are drawn from a [`DeterministicRng`] rather than
//! proptest (unavailable in the offline build environment), so every run
//! covers the same cases.

use std::collections::HashMap;

use tc_interconnect::fabric::Delivery;
use tc_interconnect::{Interconnect, LinkId, RouterId, Topology};
use tc_sim::DeterministicRng;
use tc_types::{
    BandwidthMode, BlockAddr, Cycle, DataPayload, Destination, InterconnectConfig, Message,
    MsgKind, NodeId, TopologyKind, TrafficClass, TrafficStats, Vnet,
};

/// The pre-optimization fabric: same timing model, no caching.
struct NaiveFabric {
    topology: Box<dyn Topology>,
    config: InterconnectConfig,
    free_at: Vec<Cycle>,
    bytes: Vec<u64>,
    traffic: TrafficStats,
    injection_free_at: Vec<Cycle>,
}

impl NaiveFabric {
    fn new(num_nodes: usize, config: InterconnectConfig) -> Self {
        let topology: Box<dyn Topology> = match config.topology {
            TopologyKind::Tree => Box::new(tc_interconnect::TreeTopology::new(num_nodes)),
            TopologyKind::Torus => Box::new(tc_interconnect::TorusTopology::new(num_nodes)),
        };
        let links = topology.links().len();
        NaiveFabric {
            topology,
            config,
            free_at: vec![0; links],
            bytes: vec![0; links],
            traffic: TrafficStats::new(),
            injection_free_at: vec![0; num_nodes],
        }
    }

    fn serialization_ns(&self, bytes: u64) -> Cycle {
        match self.config.bandwidth {
            BandwidthMode::Unlimited => 0,
            BandwidthMode::Limited => {
                (bytes as f64 / self.config.link_bandwidth_bytes_per_ns).ceil() as Cycle
            }
        }
    }

    fn send(&mut self, now: Cycle, msg: Message) -> Vec<Delivery> {
        let destinations = msg.dest.expand(self.topology.num_nodes(), msg.src);
        if destinations.is_empty() {
            return Vec::new();
        }
        let size = msg.size_bytes();
        let serialization = self.serialization_ns(size);
        let latency = self.config.link_latency_ns;
        let limited = matches!(self.config.bandwidth, BandwidthMode::Limited);

        let src_index = msg.src.index();
        let inject_start = if limited {
            let start = now.max(self.injection_free_at[src_index]);
            self.injection_free_at[src_index] = start + serialization;
            start
        } else {
            now
        };

        let src_router = self.topology.node_router(msg.src);
        let mut arrival: HashMap<RouterId, Cycle> = HashMap::new();
        arrival.insert(src_router, inject_start);
        let mut tree_links: Vec<LinkId> = Vec::new();
        let mut seen: HashMap<LinkId, ()> = HashMap::new();
        let mut paths = Vec::new();
        for dst in &destinations {
            // Self-routes go through the topology too: on the ordered tree a
            // node's own copy pays the same root round trip (and queues on
            // the same links) as everyone else's, which is what keeps the
            // per-node delivery order equal to the root serialization order.
            let path = self.topology.route(msg.src, *dst);
            for link in &path {
                if seen.insert(*link, ()).is_none() {
                    tree_links.push(*link);
                }
            }
            paths.push((*dst, path));
        }

        for link_id in &tree_links {
            let descriptor = self.topology.links()[link_id.index()];
            let upstream = arrival[&descriptor.from];
            let start = if limited {
                upstream.max(self.free_at[link_id.index()])
            } else {
                upstream
            };
            let done = start + serialization;
            if limited {
                self.free_at[link_id.index()] = done;
            }
            self.bytes[link_id.index()] += size;
            let reach = done + latency;
            if descriptor.to == src_router {
                // The tail link of a self-route must not `min` against the
                // injection-time stamp: the self-copy arrives with the link.
                arrival.insert(descriptor.to, reach);
            } else {
                arrival
                    .entry(descriptor.to)
                    .and_modify(|t| *t = (*t).min(reach))
                    .or_insert(reach);
            }
        }

        self.traffic
            .record(TrafficClass::of(&msg), size, tree_links.len() as u64);

        let mut deliveries = Vec::new();
        for (dst, path) in paths {
            let at = if path.is_empty() {
                inject_start
            } else {
                let last = self.topology.links()[path.last().unwrap().index()];
                arrival[&last.to]
            };
            deliveries.push(Delivery {
                at,
                node: dst,
                msg: msg.clone(),
            });
        }
        deliveries
    }
}

/// Draws a pseudo-random message: any source, any destination shape
/// (unicast incl. self-sends, broadcast, multicast of a random subset),
/// control or data size.
fn random_message(rng: &mut DeterministicRng, num_nodes: usize, at: Cycle) -> Message {
    let src = NodeId::new(rng.next_below(num_nodes as u64) as usize);
    let dest = match rng.next_below(4) {
        0 => Destination::Node(NodeId::new(rng.next_below(num_nodes as u64) as usize)),
        1 => Destination::Broadcast,
        _ => {
            // A random subset; may include the source, may be empty.
            let nodes: Vec<NodeId> = (0..num_nodes)
                .map(NodeId::new)
                .filter(|_| rng.chance(0.4))
                .collect();
            Destination::multicast(nodes)
        }
    };
    let kind = if rng.chance(0.5) {
        MsgKind::GetS
    } else {
        MsgKind::Data {
            acks_expected: 0,
            exclusive: false,
            from_memory: true,
            payload: DataPayload::default(),
        }
    };
    let vnet = if kind == MsgKind::GetS {
        Vnet::Request
    } else {
        Vnet::Response
    };
    Message::new(
        src,
        dest,
        BlockAddr::new(rng.next_below(64)),
        kind,
        vnet,
        at,
    )
}

fn drive_pair(topology: TopologyKind, bandwidth: BandwidthMode, num_nodes: usize, seed: u64) {
    let config = InterconnectConfig {
        topology,
        link_bandwidth_bytes_per_ns: 3.2,
        link_latency_ns: 15,
        bandwidth,
    };
    let mut cached = Interconnect::new(num_nodes, config);
    let mut naive = NaiveFabric::new(num_nodes, config);
    let mut rng = DeterministicRng::new(seed);
    let mut now: Cycle = 0;
    for step in 0..400 {
        now += rng.next_below(40);
        let msg = random_message(&mut rng, num_nodes, now);
        let expected = naive.send(now, msg.clone());
        let got = cached.send(now, msg.clone());
        assert_eq!(
            got, expected,
            "{topology:?}/{bandwidth:?}/{num_nodes} nodes, seed {seed}, step {step}: \
             deliveries diverged for {msg}"
        );
    }
    assert_eq!(
        cached.traffic(),
        &naive.traffic,
        "{topology:?}/{bandwidth:?}/{num_nodes} nodes, seed {seed}: traffic stats diverged"
    );
    let cached_bytes: Vec<u64> = cached.link_utilization().iter().map(|u| u.bytes).collect();
    assert_eq!(
        cached_bytes, naive.bytes,
        "{topology:?}/{bandwidth:?}/{num_nodes} nodes, seed {seed}: per-link bytes diverged"
    );
}

#[test]
fn cached_fabric_matches_naive_reference_on_all_configurations() {
    let mut seeds = DeterministicRng::new(0xCAFE);
    for topology in [TopologyKind::Tree, TopologyKind::Torus] {
        for bandwidth in [BandwidthMode::Limited, BandwidthMode::Unlimited] {
            for num_nodes in [4, 16] {
                drive_pair(topology, bandwidth, num_nodes, seeds.next_u64());
            }
        }
    }
}

#[test]
fn cached_fabric_matches_naive_reference_on_odd_node_counts() {
    // Non-square, non-power-of-two node counts exercise the torus
    // factorization and partially filled tree leaf groups.
    let mut seeds = DeterministicRng::new(0xBEEF);
    for topology in [TopologyKind::Tree, TopologyKind::Torus] {
        for num_nodes in [2, 5, 12] {
            drive_pair(
                topology,
                BandwidthMode::Limited,
                num_nodes,
                seeds.next_u64(),
            );
        }
    }
}
