//! Property test: the ordered tree delivers broadcasts in one total order —
//! to *every* node, *including the sender itself*, under link contention.
//!
//! This is the property the snooping protocol's races and writeback-ack
//! handshake are resolved against, and it is easy to lose: an earlier fabric
//! version delivered a node's own broadcast with a fixed four-crossing
//! latency instead of routing it through the real (contended) root links, so
//! under load a sender could observe its own request *before* a broadcast
//! the root had serialized ahead of it. Two racing requesters then each
//! believed they were ordered first, each handed the block to the other, and
//! the second hand-off hit a completed MSHR and was dropped — losing
//! ownership and deadlocking the protocol. This test fails loudly on that
//! fabric.

use tc_interconnect::Interconnect;
use tc_sim::DeterministicRng;
use tc_types::{
    BandwidthMode, BlockAddr, Cycle, DataPayload, Destination, InterconnectConfig, Message,
    MsgKind, NodeId, TopologyKind, Vnet,
};

fn tree_config(bandwidth: BandwidthMode) -> InterconnectConfig {
    InterconnectConfig {
        topology: TopologyKind::Tree,
        link_bandwidth_bytes_per_ns: 3.2,
        link_latency_ns: 15,
        bandwidth,
    }
}

/// A self-inclusive broadcast (what snooping sends for every request),
/// tagged with a sequence number through the block address.
fn ordered_broadcast(src: usize, sequence: u64, num_nodes: usize, at: Cycle) -> Message {
    let everyone: Vec<NodeId> = (0..num_nodes).map(NodeId::new).collect();
    Message::new(
        NodeId::new(src),
        Destination::multicast(everyone),
        BlockAddr::new(sequence),
        MsgKind::GetS,
        Vnet::Request,
        at,
    )
}

/// Unordered unicast noise (data responses) competing for the same links.
fn unicast_noise(rng: &mut DeterministicRng, num_nodes: usize, at: Cycle) -> Message {
    let src = NodeId::new(rng.next_below(num_nodes as u64) as usize);
    let dst = NodeId::new(rng.next_below(num_nodes as u64) as usize);
    Message::new(
        src,
        Destination::Node(dst),
        BlockAddr::new(1_000_000),
        MsgKind::Data {
            acks_expected: 0,
            exclusive: false,
            from_memory: true,
            payload: DataPayload::default(),
        },
        Vnet::Response,
        at,
    )
}

fn drive(bandwidth: BandwidthMode, num_nodes: usize, seed: u64) {
    let mut net = Interconnect::new(num_nodes, tree_config(bandwidth));
    let mut rng = DeterministicRng::new(seed);
    let mut now: Cycle = 0;
    // Per node: (arrival time, broadcast sequence), in delivery order.
    let mut observed: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); num_nodes];
    let mut sequence = 0;

    for _ in 0..300 {
        now += rng.next_below(25);
        if rng.chance(0.5) {
            let src = rng.next_below(num_nodes as u64) as usize;
            let msg = ordered_broadcast(src, sequence, num_nodes, now);
            sequence += 1;
            for delivery in net.send(now, msg) {
                observed[delivery.node.index()].push((delivery.at, delivery.msg.addr.value()));
            }
        } else {
            // Noise traffic shifts link occupancy between broadcasts, which
            // is exactly what used to skew the (link-bypassing) self-send.
            net.send(now, unicast_noise(&mut rng, num_nodes, now));
        }
    }

    for (node, deliveries) in observed.iter().enumerate() {
        let mut sorted = deliveries.clone();
        sorted.sort_by_key(|&(at, seq)| (at, seq));
        // No two broadcasts may arrive at one node at the same instant under
        // limited bandwidth (the shared down-link serializes them), so the
        // sort order above is the delivery order, unambiguously.
        if bandwidth == BandwidthMode::Limited {
            for pair in sorted.windows(2) {
                assert_ne!(
                    pair[0].0, pair[1].0,
                    "node {node}: two broadcasts arrived at the same instant (seed {seed})"
                );
            }
        }
        let order: Vec<u64> = sorted.iter().map(|&(_, seq)| seq).collect();
        let expected: Vec<u64> = (0..sequence).collect();
        assert_eq!(
            order, expected,
            "node {node} observed broadcasts out of the injection total order \
             (seed {seed}, bandwidth {bandwidth:?})"
        );
    }
}

#[test]
fn every_node_sees_broadcasts_in_injection_order_under_contention() {
    let mut seeds = DeterministicRng::new(0x0FDE);
    for num_nodes in [4, 8, 16] {
        drive(BandwidthMode::Limited, num_nodes, seeds.next_u64());
    }
}

#[test]
fn total_order_also_holds_without_bandwidth_limits() {
    let mut seeds = DeterministicRng::new(0x0FDF);
    for num_nodes in [4, 16] {
        drive(BandwidthMode::Unlimited, num_nodes, seeds.next_u64());
    }
}

/// The specific regression: a sender's own copy must queue behind an earlier
/// broadcast from another node even when the sender's links are idle.
#[test]
fn self_delivery_queues_behind_earlier_broadcasts() {
    let num_nodes = 8;
    let mut net = Interconnect::new(num_nodes, tree_config(BandwidthMode::Limited));
    // Node 0 broadcasts first; node 5 broadcasts immediately after. Node 5's
    // own copy must arrive after node 0's copy arrives at node 5.
    let first = net.send(0, ordered_broadcast(0, 1, num_nodes, 0));
    let second = net.send(1, ordered_broadcast(5, 2, num_nodes, 1));
    let first_at_5 = first
        .iter()
        .find(|d| d.node == NodeId::new(5))
        .expect("broadcast reaches node 5")
        .at;
    let own_at_5 = second
        .iter()
        .find(|d| d.node == NodeId::new(5))
        .expect("self-delivery exists")
        .at;
    assert!(
        own_at_5 > first_at_5,
        "node 5 observed its own broadcast (at {own_at_5}) before the \
         earlier-serialized broadcast from node 0 (at {first_at_5})"
    );
}
