//! The fault plane: deterministic, seeded injection of message loss,
//! duplication, delay jitter, reordering, and link outages.
//!
//! The plane sits between [`Interconnect::send_arrivals`](
//! crate::Interconnect::send_arrivals) and the runner's arena parking step:
//! it rewrites the computed arrival list in place, so a dropped arrival is
//! simply never parked (the arena slot count shrinks) and a duplicated one
//! parks an extra generation-checked reference (the slot count grows). The
//! runner's existing `insert_shared(msg, arrivals.len())` call makes both
//! safe without any arena API changes.
//!
//! # Determinism contract
//!
//! The plane owns a [`DeterministicRng`] stream forked from
//! `(run seed, FaultSpec::seed)` and independent of the workload streams.
//! Arrivals are processed in the order the topology emitted them, and an
//! RNG draw happens *only* when the corresponding fault class is enabled in
//! the spec, tolerated by the protocol, and (for loss/duplication) the
//! message is eligible — all deterministic per `(protocol, message)` — so a
//! `(seed, FaultSpec)` pair reproduces the exact same fault sequence
//! bit-for-bit regardless of host, thread count, or wall-clock.

use tc_sim::{DeterministicRng, SnapReader, SnapWriter, SnapshotError};
use tc_types::fault::{FaultSpec, FaultStats};
use tc_types::{Cycle, Message, NodeId, ProtocolKind};

/// Distinct stream tag so the fault RNG never collides with the workload or
/// pump streams forked from the same run seed.
const FAULT_STREAM: u64 = 0xFA_17_B1_A5;

/// Executes a [`FaultSpec`] against every send's computed arrival list.
///
/// One plane exists per run (only when the spec is non-empty); it carries
/// the spec, its private RNG stream, and the accumulated [`FaultStats`].
#[derive(Debug)]
pub struct FaultPlane {
    spec: FaultSpec,
    protocol: ProtocolKind,
    rng: DeterministicRng,
    /// Per-source-node streams for the sharded runner (empty in the serial
    /// engine's single-stream mode): each node's sends draw faults from the
    /// node's own stream, forked off the same base as `rng` by node index.
    /// Every node lives on exactly one shard, so these are the sharded
    /// runner's per-shard streams — and because a draw depends only on the
    /// source node's own message sequence, the injected schedule is
    /// identical at every shard count.
    node_rngs: Vec<DeterministicRng>,
    stats: FaultStats,
    /// Skew quantum for reorder/duplicate scheduling, set to the link
    /// latency so one reorder step is one link hop of displacement.
    quantum: u64,
    /// Scratch buffer reused across `apply` calls.
    scratch: Vec<(Cycle, NodeId)>,
}

impl FaultPlane {
    /// Creates the plane for one run.
    ///
    /// `run_seed` is the system config's seed; the spec's own seed is
    /// folded in so fault schedules can be varied independently of the
    /// workload. `link_latency_ns` becomes the reorder/duplication skew
    /// quantum.
    pub fn new(
        spec: FaultSpec,
        protocol: ProtocolKind,
        run_seed: u64,
        link_latency_ns: u64,
    ) -> Self {
        let rng = DeterministicRng::new(run_seed ^ spec.seed.rotate_left(17)).fork(FAULT_STREAM);
        FaultPlane {
            spec,
            protocol,
            rng,
            node_rngs: Vec::new(),
            stats: FaultStats::default(),
            quantum: link_latency_ns.max(1),
            scratch: Vec::new(),
        }
    }

    /// [`FaultPlane::new`] in per-source-node stream mode, for the sharded
    /// runner: node `n`'s sends draw from a stream forked off the same
    /// `(run seed, spec seed)` base on tag `FAULT_STREAM ^ (n + 1)`,
    /// exactly the stream-id scheme the workload generators use. Same
    /// `(seed, spec)` ⇒ same per-node fault schedule, at any shard count.
    pub fn new_per_node(
        spec: FaultSpec,
        protocol: ProtocolKind,
        run_seed: u64,
        link_latency_ns: u64,
        num_nodes: usize,
    ) -> Self {
        let mut plane = FaultPlane::new(spec, protocol, run_seed, link_latency_ns);
        let mut base = DeterministicRng::new(run_seed ^ spec.seed.rotate_left(17));
        plane.node_rngs = (0..num_nodes)
            .map(|n| base.fork(FAULT_STREAM ^ (n as u64 + 1)))
            .collect();
        plane
    }

    /// The spec this plane executes.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Mutable access to the counters, for recovery-side numbers (reissues
    /// sent, persistent activations) that the runner observes rather than
    /// the plane itself.
    pub fn stats_mut(&mut self) -> &mut FaultStats {
        &mut self.stats
    }

    #[inline]
    fn roll(rng: &mut DeterministicRng, ppm: u32) -> bool {
        rng.next_below(u64::from(tc_types::fault::PPM)) < u64::from(ppm)
    }

    /// Rewrites `arrivals` (as produced by `send_arrivals` for `msg` at
    /// time `now`) according to the spec. Entries may be removed (drops),
    /// added (duplicates), or have their arrival time moved later (delay,
    /// reorder, link-outage deferral). Arrival times never move earlier
    /// than the fault-free schedule, so causality is preserved.
    pub fn apply(&mut self, now: Cycle, msg: &Message, arrivals: &mut Vec<(Cycle, NodeId)>) {
        let _ = now;
        let loss_ok = (self.spec.drop_ppm > 0 || self.spec.dup_ppm > 0)
            && FaultSpec::loss_eligible(self.protocol, msg);
        let src = msg.src.index() as u32;
        // Split borrows: the stream for this message's source (or the
        // single global stream) alongside the stats and scratch fields.
        let rng = match self.node_rngs.is_empty() {
            true => &mut self.rng,
            false => &mut self.node_rngs[msg.src.index()],
        };

        self.scratch.clear();
        for &(original_at, node) in arrivals.iter() {
            let mut at = original_at;

            // Link outage: defer the arrival past the window, with a small
            // jitter so a burst of deferred messages does not collapse onto
            // one cycle.
            if let Some(until) = outage_until(&self.spec, src, node.index() as u32, at) {
                at = until + 1 + rng.next_below(self.quantum);
                self.stats.link_deferred += 1;
            }

            // Drop: the arrival is never parked.
            if loss_ok && self.spec.drop_ppm > 0 && Self::roll(rng, self.spec.drop_ppm) {
                self.stats.dropped += 1;
                continue;
            }

            // Delay jitter.
            if self.spec.delay_ppm > 0 && Self::roll(rng, self.spec.delay_ppm) {
                at += 1 + rng.next_below(self.spec.delay_max_ns.max(1));
                self.stats.delayed += 1;
            }

            // Reorder: skew every arrival by up to `depth` link quanta, so
            // messages on the same path can overtake each other.
            if self.spec.reorder_depth > 0 {
                let skew = rng.next_below(u64::from(self.spec.reorder_depth) + 1);
                if skew > 0 {
                    at += skew * self.quantum;
                    self.stats.reordered += 1;
                }
            }

            self.scratch.push((at, node));

            // Duplicate: a second copy of this arrival, skewed later.
            if loss_ok && self.spec.dup_ppm > 0 && Self::roll(rng, self.spec.dup_ppm) {
                let skew = 1 + rng.next_below(2 * self.quantum);
                self.scratch.push((at + skew, node));
                self.stats.duplicated += 1;
            }
        }
        std::mem::swap(arrivals, &mut self.scratch);
    }

    /// Serializes the plane's mutable state: the RNG stream position(s) and
    /// the accumulated counters. Spec, protocol, and quantum are
    /// config-derived.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.rng.state());
        w.seq(self.node_rngs.iter(), |w, rng| w.u64(rng.state()));
        self.stats.save_state(w);
    }

    /// Restores [`FaultPlane::save_state`] bytes onto a same-config plane.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rng = DeterministicRng::from_state(r.u64()?);
        self.node_rngs = r.seq(|r| Ok(DeterministicRng::from_state(r.u64()?)))?;
        self.stats = FaultStats::load_state(r)?;
        Ok(())
    }
}

/// If the `src -> dst` arrival at `at` crosses a downed link, returns the
/// end of the longest covering outage window.
fn outage_until(spec: &FaultSpec, src: u32, dst: u32, at: Cycle) -> Option<Cycle> {
    let mut until = None;
    for outage in spec.outages.iter().flatten() {
        if outage.covers(src, dst, at) {
            until = Some(until.map_or(outage.until, |u: Cycle| u.max(outage.until)));
        }
    }
    until
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{BlockAddr, Destination, MsgKind, Vnet};

    fn request(src: usize, dest: Destination) -> Message {
        Message::new(
            NodeId::new(src),
            dest,
            BlockAddr::new(7),
            MsgKind::GetM,
            Vnet::Request,
            100,
        )
    }

    fn token_response(src: usize, dest: usize) -> Message {
        Message::new(
            NodeId::new(src),
            Destination::Node(NodeId::new(dest)),
            BlockAddr::new(7),
            MsgKind::TokenOnly { tokens: 2 },
            Vnet::Response,
            100,
        )
    }

    fn arrivals(n: usize) -> Vec<(Cycle, NodeId)> {
        (0..n)
            .map(|i| (100 + 15 * i as u64, NodeId::new(i)))
            .collect()
    }

    #[test]
    fn same_seed_and_spec_replay_identically() {
        let spec = FaultSpec::none()
            .with_drop(0.2)
            .with_dup(0.2)
            .with_delay(0.3, 90)
            .with_reorder(3);
        let run = |seed: u64| {
            let mut plane = FaultPlane::new(spec, ProtocolKind::TokenB, seed, 15);
            let mut log = Vec::new();
            for step in 0..200 {
                let msg = request(step % 4, Destination::Broadcast);
                let mut a = arrivals(4);
                plane.apply(100, &msg, &mut a);
                log.push(a);
            }
            (log, plane.stats())
        };
        assert_eq!(run(12), run(12));
        assert_ne!(run(12), run(13), "different seeds should differ");
    }

    #[test]
    fn fault_seed_varies_the_schedule_independently() {
        let base = FaultSpec::none().with_drop(0.5);
        let mut a = FaultPlane::new(base, ProtocolKind::TokenB, 12, 15);
        let mut b = FaultPlane::new(base.with_seed(99), ProtocolKind::TokenB, 12, 15);
        let msg = request(0, Destination::Broadcast);
        let (mut la, mut lb) = (Vec::new(), Vec::new());
        for _ in 0..64 {
            let mut x = arrivals(4);
            a.apply(100, &msg, &mut x);
            la.push(x);
            let mut y = arrivals(4);
            b.apply(100, &msg, &mut y);
            lb.push(y);
        }
        assert_ne!(la, lb);
    }

    #[test]
    fn token_carrying_messages_are_never_dropped_or_duplicated() {
        let spec = FaultSpec::none().with_drop(1.0).with_dup(1.0);
        let mut plane = FaultPlane::new(spec, ProtocolKind::TokenB, 1, 15);
        let msg = token_response(1, 0);
        let mut a = arrivals(1);
        plane.apply(100, &msg, &mut a);
        assert_eq!(a, arrivals(1), "token response must pass untouched");
        assert_eq!(plane.stats().dropped, 0);
        assert_eq!(plane.stats().duplicated, 0);

        // A transient request under the same spec is always dropped.
        let mut a = arrivals(3);
        plane.apply(100, &request(0, Destination::Broadcast), &mut a);
        assert!(a.is_empty());
        assert_eq!(plane.stats().dropped, 3);
    }

    #[test]
    fn duplicates_grow_the_arrival_list_and_land_later() {
        let spec = FaultSpec::none().with_dup(1.0);
        let mut plane = FaultPlane::new(spec, ProtocolKind::TokenB, 5, 15);
        let mut a = arrivals(2);
        plane.apply(100, &request(0, Destination::Broadcast), &mut a);
        assert_eq!(a.len(), 4);
        assert!(a[1].0 > a[0].0, "copy arrives strictly after the original");
        assert_eq!(a[0].1, a[1].1, "copy goes to the same node");
        assert_eq!(plane.stats().duplicated, 2);
    }

    #[test]
    fn delay_and_reorder_never_move_arrivals_earlier() {
        let spec = FaultSpec::none().with_delay(1.0, 120).with_reorder(4);
        let mut plane = FaultPlane::new(spec, ProtocolKind::Hammer, 5, 15);
        for step in 0..100 {
            let before = arrivals(4);
            let mut after = before.clone();
            plane.apply(
                100 + step,
                &request(step as usize % 4, Destination::Broadcast),
                &mut after,
            );
            assert_eq!(after.len(), before.len());
            for (b, a) in before.iter().zip(&after) {
                assert!(a.0 >= b.0, "arrival moved earlier: {b:?} -> {a:?}");
            }
        }
        assert!(plane.stats().delayed > 0);
        assert!(plane.stats().reordered > 0);
    }

    #[test]
    fn link_outage_defers_arrivals_past_the_window_in_both_directions() {
        let spec = FaultSpec::none().with_outage(0, 2, 50, 500);
        let mut plane = FaultPlane::new(spec, ProtocolKind::TokenB, 9, 15);

        // src 0 -> node 2 inside the window: deferred past cycle 500.
        let mut a = vec![(100, NodeId::new(2))];
        plane.apply(100, &request(0, Destination::Node(NodeId::new(2))), &mut a);
        assert!(a[0].0 > 500, "arrival not deferred: {:?}", a);

        // Reverse direction is the same link.
        let mut a = vec![(100, NodeId::new(0))];
        plane.apply(100, &request(2, Destination::Node(NodeId::new(0))), &mut a);
        assert!(a[0].0 > 500);

        // Outside the window: untouched.
        let mut a = vec![(600, NodeId::new(2))];
        plane.apply(600, &request(0, Destination::Node(NodeId::new(2))), &mut a);
        assert_eq!(a, vec![(600, NodeId::new(2))]);

        // Unrelated pair: untouched.
        let mut a = vec![(100, NodeId::new(3))];
        plane.apply(100, &request(0, Destination::Node(NodeId::new(3))), &mut a);
        assert_eq!(a, vec![(100, NodeId::new(3))]);

        assert_eq!(plane.stats().link_deferred, 2);
    }

    #[test]
    fn empty_spec_plane_is_a_no_op() {
        let mut plane = FaultPlane::new(FaultSpec::none(), ProtocolKind::TokenB, 3, 15);
        let mut a = arrivals(4);
        plane.apply(100, &request(0, Destination::Broadcast), &mut a);
        assert_eq!(a, arrivals(4));
        assert_eq!(plane.stats(), FaultStats::default());
    }
}
