//! The adversary plane: deterministic, seeded worst-case scheduling inside
//! the fabric's legal latitude.
//!
//! The plane sits in the same seam as the fault plane — between
//! [`Interconnect::send_arrivals`](crate::Interconnect::send_arrivals) and
//! the runner's arena parking step — but is strictly weaker than a fault:
//! it never adds or removes arrivals, it only moves them **later**. Every
//! schedule it produces is one an unordered interconnect could have
//! produced on its own (congestion, routing, buffering), so a protocol that
//! breaks under the adversary is broken, full stop — there is no fault
//! contract to hide behind.
//!
//! # Determinism contract
//!
//! The plane owns a [`DeterministicRng`] stream forked from
//! `(run seed, AdversarySpec::seed)` on its own stream tag, independent of
//! the workload and fault streams. Arrivals are processed in the order the
//! topology emitted them and a draw happens only for enabled classes, so a
//! `(seed, AdversarySpec)` pair reproduces the exact same schedule
//! bit-for-bit regardless of host, thread count, or wall-clock.

use tc_sim::{DeterministicRng, SnapReader, SnapWriter, SnapshotError};
use tc_types::adversary::{AdversarySpec, AdversaryStats};
use tc_types::{BlockAddr, Cycle, Message, MsgKind, NodeId};

/// Distinct stream tag so the adversary RNG never collides with the
/// workload, pump, or fault streams forked from the same run seed.
const ADVERSARY_STREAM: u64 = 0xAD_5E_47_21;

/// Executes an [`AdversarySpec`] against every send's computed arrival
/// list. One plane exists per run (only when the spec is non-empty); it
/// carries the spec, its private RNG stream, and the accumulated
/// [`AdversaryStats`].
#[derive(Debug)]
pub struct Adversary {
    spec: AdversarySpec,
    rng: DeterministicRng,
    /// Per-source-node streams for the sharded runner (empty in the serial
    /// engine's single-stream mode); see `FaultPlane::node_rngs` — the same
    /// scheme, on the adversary's stream tag.
    node_rngs: Vec<DeterministicRng>,
    stats: AdversaryStats,
    /// Skew quantum for reorder scheduling, set to the link latency so one
    /// reorder step is one link hop of displacement — the same "legal
    /// latitude" unit the fault plane uses.
    quantum: u64,
}

impl Adversary {
    /// Creates the plane for one run. `run_seed` is the system config's
    /// seed; the spec's own seed is folded in so adversarial schedules can
    /// be varied independently of the workload. `link_latency_ns` becomes
    /// the reorder skew quantum.
    pub fn new(spec: AdversarySpec, run_seed: u64, link_latency_ns: u64) -> Self {
        let rng =
            DeterministicRng::new(run_seed ^ spec.seed.rotate_left(17)).fork(ADVERSARY_STREAM);
        Adversary {
            spec,
            rng,
            node_rngs: Vec::new(),
            stats: AdversaryStats::default(),
            quantum: link_latency_ns.max(1),
        }
    }

    /// [`Adversary::new`] in per-source-node stream mode, for the sharded
    /// runner: node `n`'s sends draw from a stream forked off the same
    /// `(run seed, spec seed)` base on tag `ADVERSARY_STREAM ^ (n + 1)`, so
    /// the perturbation schedule depends only on each node's own message
    /// sequence — identical at any shard count.
    pub fn new_per_node(
        spec: AdversarySpec,
        run_seed: u64,
        link_latency_ns: u64,
        num_nodes: usize,
    ) -> Self {
        let mut plane = Adversary::new(spec, run_seed, link_latency_ns);
        let mut base = DeterministicRng::new(run_seed ^ spec.seed.rotate_left(17));
        plane.node_rngs = (0..num_nodes)
            .map(|n| base.fork(ADVERSARY_STREAM ^ (n as u64 + 1)))
            .collect();
        plane
    }

    /// The spec this plane executes.
    pub fn spec(&self) -> AdversarySpec {
        self.spec
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> AdversaryStats {
        self.stats
    }

    /// Rewrites the arrival times in `arrivals` (as produced by
    /// `send_arrivals` for `msg` at time `now`) according to the spec.
    /// Entries are never added or removed, and arrival times never move
    /// earlier than the fault-free schedule — the adversary stays inside
    /// the latitude the unordered fabric already grants.
    pub fn apply(&mut self, now: Cycle, msg: &Message, arrivals: &mut [(Cycle, NodeId)]) {
        let _ = now;
        let victim_block = BlockAddr::new(self.spec.victim_block);
        let on_victim_block = msg.addr == victim_block;
        let victim_node = self.spec.victim_node as usize;
        // A competing request: write-racing traffic for the victim block
        // from anyone *other* than the victim — the raw material of a
        // retry storm.
        let competing = on_victim_block
            && msg.src.index() != victim_node
            && matches!(msg.kind, MsgKind::GetM | MsgKind::GetS);
        // Split borrows: the stream for this message's source (or the
        // single global stream) alongside the stats field.
        let rng = match self.node_rngs.is_empty() {
            true => &mut self.rng,
            false => &mut self.node_rngs[msg.src.index()],
        };

        for (at, node) in arrivals.iter_mut() {
            let original_at = *at;

            // Reorder: skew every arrival by up to `window` link quanta, so
            // messages on the same path can overtake each other.
            if self.spec.reorder_window > 0 {
                let skew = rng.next_below(u64::from(self.spec.reorder_window) + 1);
                if skew > 0 {
                    *at += skew * self.quantum;
                    self.stats.reordered += 1;
                }
            }

            // Targeted delay: anything on the victim block travelling to or
            // from the victim node — its outbound requests and its inbound
            // responses — is pushed later by a bounded random amount.
            if self.spec.target_delay_ns > 0
                && on_victim_block
                && (msg.src.index() == victim_node || node.index() == victim_node)
            {
                *at += 1 + rng.next_below(u64::from(self.spec.target_delay_ns));
                self.stats.targeted += 1;
            }

            // Retry storm: competing requests for the victim block are
            // aligned to land just before the next storm-window boundary,
            // so they arrive in synchronized bursts timed against the
            // victim's reissue cadence instead of spreading out.
            if self.spec.storm_window_ns > 0 && competing {
                let w = u64::from(self.spec.storm_window_ns);
                let aligned = (*at / w + 1) * w - 1;
                debug_assert!(aligned >= *at);
                *at = aligned;
                self.stats.stormed += 1;
            }

            self.stats.max_skew_ns = self.stats.max_skew_ns.max(*at - original_at);
        }
    }

    /// Serializes the plane's mutable state: the RNG stream position(s)
    /// and the accumulated counters. Spec and quantum are config-derived.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.rng.state());
        w.seq(self.node_rngs.iter(), |w, rng| w.u64(rng.state()));
        self.stats.save_state(w);
    }

    /// Restores [`Adversary::save_state`] bytes onto a same-config plane.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rng = DeterministicRng::from_state(r.u64()?);
        self.node_rngs = r.seq(|r| Ok(DeterministicRng::from_state(r.u64()?)))?;
        self.stats = AdversaryStats::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{Destination, Vnet};

    fn request(src: usize, block: u64, kind: MsgKind) -> Message {
        Message::new(
            NodeId::new(src),
            Destination::Broadcast,
            BlockAddr::new(block),
            kind,
            Vnet::Request,
            100,
        )
    }

    fn arrivals(n: usize) -> Vec<(Cycle, NodeId)> {
        (0..n)
            .map(|i| (100 + 15 * i as u64, NodeId::new(i)))
            .collect()
    }

    #[test]
    fn same_seed_and_spec_replay_identically() {
        let spec = AdversarySpec::none()
            .with_reorder(3)
            .with_victim(1, 7)
            .with_target_delay(200)
            .with_storm(450);
        let run = |seed: u64| {
            let mut plane = Adversary::new(spec, seed, 15);
            let mut log = Vec::new();
            for step in 0..200 {
                let msg = request(step % 4, 7, MsgKind::GetM);
                let mut a = arrivals(4);
                plane.apply(100, &msg, &mut a);
                log.push(a);
            }
            (log, plane.stats())
        };
        assert_eq!(run(12), run(12));
        assert_ne!(run(12), run(13), "different seeds should differ");
    }

    #[test]
    fn adversary_seed_varies_the_schedule_independently() {
        let base = AdversarySpec::none().with_reorder(4);
        let mut a = Adversary::new(base, 12, 15);
        let mut b = Adversary::new(base.with_seed(99), 12, 15);
        let msg = request(0, 7, MsgKind::GetM);
        let (mut la, mut lb) = (Vec::new(), Vec::new());
        for _ in 0..64 {
            let mut x = arrivals(4);
            a.apply(100, &msg, &mut x);
            la.push(x);
            let mut y = arrivals(4);
            b.apply(100, &msg, &mut y);
            lb.push(y);
        }
        assert_ne!(la, lb);
    }

    #[test]
    fn arrivals_never_move_earlier_and_are_never_added_or_removed() {
        let spec = AdversarySpec::none()
            .with_reorder(4)
            .with_victim(2, 7)
            .with_target_delay(300)
            .with_storm(500);
        let mut plane = Adversary::new(spec, 5, 15);
        for step in 0..200 {
            let before = arrivals(4);
            let mut after = before.clone();
            let kind = if step % 2 == 0 {
                MsgKind::GetM
            } else {
                MsgKind::GetS
            };
            plane.apply(100 + step, &request(step as usize % 4, 7, kind), &mut after);
            assert_eq!(after.len(), before.len());
            for (b, a) in before.iter().zip(&after) {
                assert!(a.0 >= b.0, "arrival moved earlier: {b:?} -> {a:?}");
                assert_eq!(a.1, b.1, "adversary must not reroute arrivals");
            }
        }
        assert!(plane.stats().reordered > 0);
        assert!(plane.stats().targeted > 0);
        assert!(plane.stats().stormed > 0);
        assert!(plane.stats().max_skew_ns > 0);
    }

    #[test]
    fn targeted_delay_hits_only_victim_traffic() {
        let spec = AdversarySpec::none()
            .with_victim(2, 7)
            .with_target_delay(300);
        let mut plane = Adversary::new(spec, 9, 15);

        // Victim's own request on the victim block: delayed at every node.
        let mut a = arrivals(4);
        plane.apply(100, &request(2, 7, MsgKind::GetM), &mut a);
        assert!(a.iter().zip(arrivals(4)).all(|(got, was)| got.0 > was.0));

        // Another node's request on the victim block: only the arrival *at*
        // the victim is delayed (its response path), the rest untouched.
        let mut a = arrivals(4);
        plane.apply(100, &request(0, 7, MsgKind::GetM), &mut a);
        for (i, (got, was)) in a.iter().zip(arrivals(4)).enumerate() {
            if i == 2 {
                assert!(got.0 > was.0);
            } else {
                assert_eq!(got.0, was.0);
            }
        }

        // A different block: untouched entirely.
        let mut a = arrivals(4);
        plane.apply(100, &request(2, 8, MsgKind::GetM), &mut a);
        assert_eq!(a, arrivals(4));
    }

    #[test]
    fn storms_align_competing_requests_to_window_boundaries() {
        let spec = AdversarySpec::none().with_victim(2, 7).with_storm(500);
        let mut plane = Adversary::new(spec, 9, 15);

        // Competing GetM from a non-victim: aligned to just before the next
        // 500 ns boundary.
        let mut a = vec![(120, NodeId::new(1)), (820, NodeId::new(3))];
        plane.apply(100, &request(0, 7, MsgKind::GetM), &mut a);
        assert_eq!(a[0].0, 499);
        assert_eq!(a[1].0, 999);

        // The victim's own request is not storm-aligned.
        let mut a = vec![(120, NodeId::new(1))];
        plane.apply(100, &request(2, 7, MsgKind::GetM), &mut a);
        assert_eq!(a[0].0, 120);

        // Non-request traffic is not storm-aligned.
        let mut a = vec![(120, NodeId::new(1))];
        plane.apply(100, &request(0, 7, MsgKind::PutM), &mut a);
        assert_eq!(a[0].0, 120);
        assert_eq!(plane.stats().stormed, 2);
    }

    #[test]
    fn empty_spec_plane_is_a_no_op() {
        let mut plane = Adversary::new(AdversarySpec::none(), 3, 15);
        let mut a = arrivals(4);
        plane.apply(100, &request(0, 7, MsgKind::GetM), &mut a);
        assert_eq!(a, arrivals(4));
        assert_eq!(plane.stats(), AdversaryStats::default());
    }

    #[test]
    fn state_round_trips_and_resumes_the_stream() {
        let spec = AdversarySpec::none().with_reorder(4);
        let mut plane = Adversary::new(spec, 21, 15);
        for _ in 0..32 {
            let mut a = arrivals(4);
            plane.apply(100, &request(0, 7, MsgKind::GetM), &mut a);
        }
        let mut w = SnapWriter::new();
        plane.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Adversary::new(spec, 21, 15);
        let mut r = SnapReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.stats(), plane.stats());

        // Both planes continue identically from the restored stream.
        for _ in 0..32 {
            let mut x = arrivals(4);
            plane.apply(100, &request(1, 7, MsgKind::GetM), &mut x);
            let mut y = arrivals(4);
            restored.apply(100, &request(1, 7, MsgKind::GetM), &mut y);
            assert_eq!(x, y);
        }
    }
}
