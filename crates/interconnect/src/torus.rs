//! Two-dimensional bidirectional torus (Figure 1b).
//!
//! Nodes are arranged in a (near-)square grid with wrap-around links in both
//! dimensions, like the Alpha 21364 network. Routing is deterministic
//! dimension-order (X then Y) with shortest-direction wrap, which keeps the
//! union of paths from a single source a tree (needed for multicast).
//! The torus is *directly connected* — no glue chips — and provides **no**
//! total order of requests.

use std::collections::HashMap;

use tc_types::NodeId;

use crate::topology::{LinkDescriptor, LinkId, RouterId, Topology};

/// A 2D bidirectional torus topology.
#[derive(Debug, Clone)]
pub struct TorusTopology {
    width: usize,
    height: usize,
    links: Vec<LinkDescriptor>,
    link_index: HashMap<(usize, usize), LinkId>,
}

impl TorusTopology {
    /// Creates a torus for `num_nodes` nodes, choosing the most square grid
    /// whose dimensions multiply to `num_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "torus needs at least one node");
        let (width, height) = Self::dimensions(num_nodes);
        let mut links = Vec::new();
        let mut link_index = HashMap::new();
        let mut add_link = |from: usize, to: usize| {
            if from == to || link_index.contains_key(&(from, to)) {
                return;
            }
            let id = LinkId(links.len());
            links.push(LinkDescriptor {
                from: RouterId(from),
                to: RouterId(to),
            });
            link_index.insert((from, to), id);
        };
        for y in 0..height {
            for x in 0..width {
                let here = y * width + x;
                if width > 1 {
                    add_link(here, y * width + (x + 1) % width);
                    add_link(here, y * width + (x + width - 1) % width);
                }
                if height > 1 {
                    add_link(here, ((y + 1) % height) * width + x);
                    add_link(here, ((y + height - 1) % height) * width + x);
                }
            }
        }
        TorusTopology {
            width,
            height,
            links,
            link_index,
        }
    }

    /// Picks the most square `width x height` factorization of `n`.
    fn dimensions(n: usize) -> (usize, usize) {
        let mut best = (n, 1);
        let mut w = (n as f64).sqrt() as usize;
        while w >= 1 {
            if n.is_multiple_of(w) {
                best = (n / w, w);
                break;
            }
            w -= 1;
        }
        best
    }

    /// Grid width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (number of rows).
    pub fn height(&self) -> usize {
        self.height
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }

    /// Steps along one dimension from `from` toward `to` (size `len`),
    /// returning the successive coordinates, using the shortest wrap
    /// direction (ties resolved toward increasing coordinates).
    fn dimension_steps(from: usize, to: usize, len: usize) -> Vec<usize> {
        if from == to || len <= 1 {
            return Vec::new();
        }
        let forward = (to + len - from) % len;
        let backward = (from + len - to) % len;
        let (step_forward, count) = if forward <= backward {
            (true, forward)
        } else {
            (false, backward)
        };
        let mut at = from;
        let mut steps = Vec::with_capacity(count);
        for _ in 0..count {
            at = if step_forward {
                (at + 1) % len
            } else {
                (at + len - 1) % len
            };
            steps.push(at);
        }
        steps
    }

    fn link_between(&self, from: usize, to: usize) -> LinkId {
        *self
            .link_index
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no torus link {from}->{to}"))
    }
}

impl Topology for TorusTopology {
    fn name(&self) -> &'static str {
        "torus"
    }

    fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    fn num_routers(&self) -> usize {
        self.num_nodes()
    }

    fn links(&self) -> &[LinkDescriptor] {
        &self.links
    }

    fn node_router(&self, node: NodeId) -> RouterId {
        RouterId(node.index())
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let (sx, sy) = self.coords(src.index());
        let (dx, dy) = self.coords(dst.index());
        let mut path = Vec::new();
        let mut at = (sx, sy);
        for x in Self::dimension_steps(sx, dx, self.width) {
            let from = at.1 * self.width + at.0;
            let to = at.1 * self.width + x;
            path.push(self.link_between(from, to));
            at = (x, at.1);
        }
        for y in Self::dimension_steps(sy, dy, self.height) {
            let from = at.1 * self.width + at.0;
            let to = y * self.width + at.0;
            path.push(self.link_between(from, to));
            at = (at.0, y);
        }
        path
    }

    fn provides_total_order(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::validate_topology;

    #[test]
    fn sixteen_nodes_make_a_four_by_four_grid() {
        let t = TorusTopology::new(16);
        assert_eq!(t.width(), 4);
        assert_eq!(t.height(), 4);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_routers(), 16);
    }

    #[test]
    fn sixty_four_nodes_make_an_eight_by_eight_grid() {
        let t = TorusTopology::new(64);
        assert_eq!(t.width(), 8);
        assert_eq!(t.height(), 8);
    }

    #[test]
    fn non_square_counts_pick_closest_factorization() {
        let t = TorusTopology::new(8);
        assert_eq!(t.width() * t.height(), 8);
        assert!(t.width() >= t.height());
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn routes_are_valid_paths() {
        validate_topology(&TorusTopology::new(16));
        validate_topology(&TorusTopology::new(8));
        validate_topology(&TorusTopology::new(4));
        validate_topology(&TorusTopology::new(2));
    }

    #[test]
    fn four_by_four_average_distance_is_two_hops() {
        // The paper quotes two link crossings on average for the 4x4 torus.
        let t = TorusTopology::new(16);
        let avg = t.average_hops();
        assert!(
            (avg - 32.0 / 15.0).abs() < 1e-9,
            "expected ~2.13 average hops, got {avg}"
        );
    }

    #[test]
    fn neighbors_are_one_hop_apart() {
        let t = TorusTopology::new(16);
        assert_eq!(t.route(NodeId::new(0), NodeId::new(1)).len(), 1);
        assert_eq!(t.route(NodeId::new(0), NodeId::new(4)).len(), 1);
        // Wrap-around links.
        assert_eq!(t.route(NodeId::new(0), NodeId::new(3)).len(), 1);
        assert_eq!(t.route(NodeId::new(0), NodeId::new(12)).len(), 1);
    }

    #[test]
    fn opposite_corner_is_the_diameter() {
        let t = TorusTopology::new(16);
        // Node 10 is at (2,2): two hops in each dimension from node 0.
        assert_eq!(t.route(NodeId::new(0), NodeId::new(10)).len(), 4);
    }

    #[test]
    fn routing_uses_shortest_wrap_direction() {
        let t = TorusTopology::new(16);
        // From x=0 to x=3 the wrap-around direction (one hop) must be chosen
        // over the three-hop forward direction.
        let path = t.route(NodeId::new(0), NodeId::new(3));
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn torus_is_unordered() {
        assert!(!TorusTopology::new(16).provides_total_order());
    }

    #[test]
    fn union_of_paths_from_one_source_is_a_tree() {
        // Every router reached by any path from node 0 must be entered via a
        // single unique link — the property multicast relies on.
        let t = TorusTopology::new(16);
        use std::collections::HashMap;
        let mut entry_link: HashMap<usize, LinkId> = HashMap::new();
        for d in 1..16 {
            let path = t.route(NodeId::new(0), NodeId::new(d));
            for link_id in path {
                let link = t.links()[link_id.index()];
                let existing = entry_link.entry(link.to.index()).or_insert(link_id);
                assert_eq!(
                    *existing, link_id,
                    "router {} entered via two different links",
                    link.to
                );
            }
        }
    }

    #[test]
    fn bidirectional_links_exist_in_both_directions() {
        let t = TorusTopology::new(16);
        let forward = t.route(NodeId::new(0), NodeId::new(1));
        let backward = t.route(NodeId::new(1), NodeId::new(0));
        assert_eq!(forward.len(), 1);
        assert_eq!(backward.len(), 1);
        assert_ne!(forward[0], backward[0], "links are unidirectional objects");
    }

    #[test]
    fn single_node_torus_has_no_routes() {
        let t = TorusTopology::new(1);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.route(NodeId::new(0), NodeId::new(0)).is_empty());
    }
}
