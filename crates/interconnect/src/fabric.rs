//! The interconnect fabric: link contention, multicast routing, and traffic
//! accounting on top of a [`Topology`].

use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    BandwidthMode, Cycle, Destination, FastHashMap, InterconnectConfig, Message, NodeId,
    TopologyKind, TrafficClass, TrafficStats,
};

use crate::topology::{LinkDescriptor, LinkId, RouterId, Topology};
use crate::torus::TorusTopology;
use crate::tree::TreeTopology;

/// A message delivery produced by the fabric: `msg` arrives at `node` at
/// absolute time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Absolute arrival time.
    pub at: Cycle,
    /// Receiving node.
    pub node: NodeId,
    /// The message delivered.
    pub msg: Message,
}

/// Per-link utilization summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkUtilization {
    /// Bytes carried by the link.
    pub bytes: u64,
    /// Messages carried by the link.
    pub messages: u64,
    /// Total time the link spent serializing messages, in nanoseconds.
    pub busy_ns: Cycle,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    free_at: Cycle,
    bytes: u64,
    messages: u64,
    busy_ns: Cycle,
}

/// Dense precomputed routing: the topology is static, so every `(src, dst)`
/// path is resolved once at construction into one flat link array indexed by
/// `src * num_nodes + dst`, and [`RouteTable::path`] is a slice borrow — the
/// per-send `Topology::route` calls (and their `Vec` allocations) disappear
/// from the steady-state path.
#[derive(Debug)]
struct RouteTable {
    num_nodes: usize,
    /// Offset of `(src, dst)`'s path in `links`; `offsets[n * n]` terminates.
    offsets: Vec<u32>,
    links: Vec<LinkId>,
}

impl RouteTable {
    fn build(topology: &dyn Topology) -> Self {
        let n = topology.num_nodes();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut links = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                offsets.push(links.len() as u32);
                // Self-routes are included: the ordered tree routes
                // `src -> src` through the root round trip (see
                // `TreeTopology::route`), while the torus routes it over
                // zero links (a local delivery).
                links.extend(topology.route(NodeId::new(src), NodeId::new(dst)));
            }
        }
        offsets.push(links.len() as u32);
        RouteTable {
            num_nodes: n,
            offsets,
            links,
        }
    }

    #[inline]
    fn path(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        let i = src.index() * self.num_nodes + dst.index();
        &self.links[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// How one destination of a cached multicast tree receives its copy.
#[derive(Debug, Clone, Copy)]
enum DeliveryVia {
    /// Zero-hop delivery at the injection time (a self-send on the torus,
    /// whose topology routes `src -> src` over zero links).
    Local,
    /// Delivered when the message reaches this router. On the ordered tree
    /// this includes self-sends: the topology routes `src -> src` through
    /// the real root round trip, so a node's own broadcast queues on the
    /// same contended links as everyone else's copy and the per-node
    /// delivery order equals the root serialization order — the total-order
    /// property snooping's writeback-ack handshake depends on.
    AtRouter(RouterId),
}

/// Upper bound on the number of cached multicast trees. Unicast and
/// broadcast patterns need at most `nodes * (nodes + 1)` entries (4 160 at
/// 64 nodes), so they always fit; the cap only bites workloads that multicast
/// to unboundedly many distinct sharer subsets (Hammer probes, directory
/// invalidation sets), which fall back to a reusable scratch tree instead of
/// growing fabric memory for the lifetime of the run.
const TREE_CACHE_CAP: usize = 32 * 1024;

/// A multicast tree computed once per distinct `(source, destination)`
/// pattern: the deduplicated links in source-outward order plus, per
/// receiving node, how its arrival time is read off the tree.
#[derive(Debug, Default)]
struct CachedTree {
    /// Tree links in path order (shared prefixes first), deduplicated: each
    /// link carries the message exactly once regardless of fan-out.
    tree_links: Vec<LinkId>,
    /// One entry per receiving node.
    deliveries: Vec<(NodeId, DeliveryVia)>,
}

/// The interconnection network: a topology plus link timing/contention state.
///
/// The fabric uses store-and-forward timing with per-link serialization. A
/// message sent at time `t` crosses each link on its path in turn; on every
/// link it waits until the link is free, occupies it for
/// `size / bandwidth` nanoseconds, and then spends the link latency in
/// flight. Multicasts and broadcasts are routed as trees: a link shared by
/// several destinations carries (and pays for) the message exactly once,
/// matching the paper's bandwidth-efficient tree-based multicast routing.
#[derive(Debug)]
pub struct Interconnect {
    topology: Box<dyn Topology>,
    config: InterconnectConfig,
    links: Vec<LinkState>,
    traffic: TrafficStats,
    total_deliveries: u64,
    total_sends: u64,
    /// Per-node injection port occupancy, modelling the node's single
    /// interface into the fabric.
    injection_free_at: Vec<Cycle>,
    /// Dense `(src, dst) -> &[LinkId]` routes, built once at construction.
    routes: RouteTable,
    /// The router each node injects into, by node index.
    node_routers: Vec<RouterId>,
    /// Link endpoints copied out of the topology at construction, so the
    /// per-link tree walk reads a flat array instead of making a virtual
    /// `Topology::links` call every iteration.
    link_descriptors: Vec<LinkDescriptor>,
    /// Index of each distinct `(source, destination)` pattern in `trees`.
    tree_cache: FastHashMap<(NodeId, Destination), usize>,
    /// The cached multicast trees, appended on first use of each pattern.
    trees: Vec<CachedTree>,
    /// Reusable tree for patterns beyond [`TREE_CACHE_CAP`].
    scratch_tree: CachedTree,
    /// Scratch: earliest arrival time per router for the send in progress.
    /// Entries are valid only when the matching `arrival_gen` stamp equals
    /// `generation`, so the arrays never need clearing between sends.
    arrival_time: Vec<Cycle>,
    arrival_gen: Vec<u64>,
    /// Scratch: generation stamp per link, marking links already in the tree
    /// being built (cache misses only).
    link_gen: Vec<u64>,
    /// Current send's generation stamp.
    generation: u64,
}

impl Interconnect {
    /// Builds the interconnect described by `config` for `num_nodes` nodes.
    pub fn new(num_nodes: usize, config: InterconnectConfig) -> Self {
        let topology: Box<dyn Topology> = match config.topology {
            TopologyKind::Tree => Box::new(TreeTopology::new(num_nodes)),
            TopologyKind::Torus => Box::new(TorusTopology::new(num_nodes)),
        };
        let links = vec![LinkState::default(); topology.links().len()];
        let routes = RouteTable::build(topology.as_ref());
        let node_routers = (0..num_nodes)
            .map(|n| topology.node_router(NodeId::new(n)))
            .collect();
        let num_routers = topology.num_routers();
        let num_links = topology.links().len();
        let link_descriptors = topology.links().to_vec();
        Interconnect {
            topology,
            config,
            links,
            traffic: TrafficStats::new(),
            total_deliveries: 0,
            total_sends: 0,
            injection_free_at: vec![0; num_nodes],
            routes,
            node_routers,
            link_descriptors,
            tree_cache: FastHashMap::default(),
            trees: Vec::new(),
            scratch_tree: CachedTree::default(),
            arrival_time: vec![0; num_routers],
            arrival_gen: vec![0; num_routers],
            link_gen: vec![0; num_links],
            generation: 0,
        }
    }

    /// The topology the fabric was built on.
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// Whether this fabric delivers broadcasts in a total order.
    pub fn provides_total_order(&self) -> bool {
        self.topology.provides_total_order()
    }

    /// The conservative-PDES lookahead this fabric supports, in
    /// nanoseconds: no message between two *distinct* nodes can arrive
    /// sooner than the shortest inter-node path
    /// ([`Topology::min_hops`] link crossings at the configured link
    /// latency). Derived from the topology alone — never from the shard
    /// partition — so every shard count sees the same window (see
    /// `Topology::min_hops`). Clamped to at least 1 ns so the sharded
    /// runner's windows always advance.
    pub fn lookahead_ns(&self) -> Cycle {
        (self.topology.min_hops() as Cycle)
            .saturating_mul(self.config.link_latency_ns)
            .max(1)
    }

    /// Traffic accumulated so far, by message class.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Number of individual deliveries produced so far.
    pub fn total_deliveries(&self) -> u64 {
        self.total_deliveries
    }

    /// Number of messages injected so far.
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    /// Per-link utilization, indexed by link.
    pub fn link_utilization(&self) -> Vec<LinkUtilization> {
        self.links
            .iter()
            .map(|l| LinkUtilization {
                bytes: l.bytes,
                messages: l.messages,
                busy_ns: l.busy_ns,
            })
            .collect()
    }

    /// The highest single-link byte count, a proxy for the bottleneck link
    /// (the tree's root links saturate long before torus links do).
    pub fn max_link_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).max().unwrap_or(0)
    }

    fn serialization_ns(&self, bytes: u64) -> Cycle {
        match self.config.bandwidth {
            BandwidthMode::Unlimited => 0,
            BandwidthMode::Limited => {
                let ns = bytes as f64 / self.config.link_bandwidth_bytes_per_ns;
                ns.ceil() as Cycle
            }
        }
    }

    /// Injects a message into the fabric at time `now`, returning the
    /// deliveries it produces (one per destination node).
    ///
    /// Sending a message to an empty destination set (for example a broadcast
    /// in a single-node system) returns no deliveries.
    pub fn send(&mut self, now: Cycle, msg: Message) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        self.send_into(now, &msg, &mut deliveries);
        deliveries
    }

    /// [`Interconnect::send`] writing into a caller-supplied buffer.
    /// Deliveries are appended; the buffer is not cleared. Tests and tools
    /// use this payload-carrying shape; the hot event loop uses
    /// [`Interconnect::send_arrivals`] and never clones the message.
    pub fn send_into(&mut self, now: Cycle, msg: &Message, out: &mut Vec<Delivery>) {
        let mut arrivals = Vec::new();
        self.send_arrivals(now, msg, &mut arrivals);
        out.extend(arrivals.into_iter().map(|(at, node)| Delivery {
            at,
            node,
            msg: msg.clone(),
        }));
    }

    /// The routing/timing core of [`Interconnect::send_into`]: computes when
    /// and where the message arrives without cloning it, appending
    /// `(arrival time, node)` pairs. The hot event loop uses this so the
    /// single in-flight copy of a message can live in a slab arena and queue
    /// entries stay small; `send_into` keeps the delivery-with-payload shape
    /// for tests and tools.
    pub fn send_arrivals(&mut self, now: Cycle, msg: &Message, out: &mut Vec<(Cycle, NodeId)>) {
        let key = (msg.src, msg.dest.clone());
        let tree_index = match self.tree_cache.get(&key) {
            Some(&index) => Some(index),
            None if self.trees.len() < TREE_CACHE_CAP => {
                let tree = self.build_tree(msg.src, &msg.dest);
                self.trees.push(tree);
                let index = self.trees.len() - 1;
                self.tree_cache.insert(key, index);
                Some(index)
            }
            None => {
                // Cache full (a workload generating unboundedly many distinct
                // multicast subsets): compute into the reusable scratch tree
                // instead of growing without limit. Unicast and broadcast
                // patterns are O(nodes²) and always fit, so the steady-state
                // paths stay cached.
                let mut scratch = std::mem::take(&mut self.scratch_tree);
                self.build_tree_into(msg.src, &msg.dest, &mut scratch);
                self.scratch_tree = scratch;
                None
            }
        };
        let tree = match tree_index {
            Some(index) => &self.trees[index],
            None => &self.scratch_tree,
        };
        if tree.deliveries.is_empty() {
            return;
        }
        self.total_sends += 1;

        let size = msg.size_bytes();
        let serialization = self.serialization_ns(size);
        let latency = self.config.link_latency_ns;
        let limited = matches!(self.config.bandwidth, BandwidthMode::Limited);

        // Injection port: the node serializes the message onto the fabric
        // once, regardless of fan-out.
        let src_index = msg.src.index();
        let inject_start = if limited {
            let start = now.max(self.injection_free_at[src_index]);
            self.injection_free_at[src_index] = start + serialization;
            start
        } else {
            now
        };

        // Stamp-based scratch: bumping the generation invalidates every
        // router's arrival entry at once, so nothing is cleared per send.
        self.generation += 1;
        let generation = self.generation;
        let src_router = self.node_routers[src_index].index();
        self.arrival_time[src_router] = inject_start;
        self.arrival_gen[src_router] = generation;

        // Walk the tree links in path order. Because each destination path
        // lists links from source outwards and shared prefixes appear first,
        // a link's upstream router always has an arrival time by the time we
        // process it.
        for link_id in &tree.tree_links {
            let descriptor = self.link_descriptors[link_id.index()];
            // A hard assert, not a debug_assert: if a topology ever violates
            // the prefix-closed routing contract, reading a stale arrival
            // stamp would silently produce wrong delivery times in release
            // builds. The compare is one predicted branch per link.
            assert_eq!(
                self.arrival_gen[descriptor.from.index()],
                generation,
                "multicast tree processed out of order"
            );
            let upstream = self.arrival_time[descriptor.from.index()];
            let link = &mut self.links[link_id.index()];
            let start = if limited {
                upstream.max(link.free_at)
            } else {
                upstream
            };
            let done = start + serialization;
            if limited {
                link.free_at = done;
            }
            link.bytes += size;
            link.messages += 1;
            link.busy_ns += serialization;
            let reach = done + latency;
            let to = descriptor.to.index();
            if to == src_router {
                // The link back into the source router (the tail of an
                // ordered-tree self-route) must not `min` against the
                // injection-time stamp placed there before the walk: the
                // self-copy arrives when the down link delivers it, exactly
                // like every other destination's copy.
                self.arrival_time[to] = reach;
            } else if self.arrival_gen[to] == generation {
                self.arrival_time[to] = self.arrival_time[to].min(reach);
            } else {
                self.arrival_gen[to] = generation;
                self.arrival_time[to] = reach;
            }
        }

        self.traffic
            .record(TrafficClass::of(msg), size, tree.tree_links.len() as u64);

        for &(dst, via) in &tree.deliveries {
            let at = match via {
                DeliveryVia::Local => inject_start,
                DeliveryVia::AtRouter(router) => {
                    assert_eq!(
                        self.arrival_gen[router.index()],
                        generation,
                        "destination router missing arrival time"
                    );
                    self.arrival_time[router.index()]
                }
            };
            self.total_deliveries += 1;
            out.push((at, dst));
        }
    }

    /// Serializes the fabric's mutable state: per-link occupancy/utilization,
    /// traffic accounting, send/delivery counters, and injection-port
    /// occupancy. Topology, routes, and the multicast tree cache are
    /// config-derived (trees are deterministic per pattern, so an empty cache
    /// refills to identical contents) and rebuilt by construction.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.total_deliveries);
        w.u64(self.total_sends);
        self.traffic.save_state(w);
        w.seq(self.links.iter(), |w, l| {
            w.u64(l.free_at);
            w.u64(l.bytes);
            w.u64(l.messages);
            w.u64(l.busy_ns);
        });
        w.seq(self.injection_free_at.iter(), |w, &t| w.u64(t));
    }

    /// Restores [`Interconnect::save_state`] bytes onto a same-config fabric.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.total_deliveries = r.u64()?;
        self.total_sends = r.u64()?;
        self.traffic = TrafficStats::load_state(r)?;
        let links = r.seq(|r| {
            Ok(LinkState {
                free_at: r.u64()?,
                bytes: r.u64()?,
                messages: r.u64()?,
                busy_ns: r.u64()?,
            })
        })?;
        if links.len() != self.links.len() {
            return Err(SnapshotError::Corrupt("link count mismatch".into()));
        }
        self.links = links;
        let injection = r.seq(|r| r.u64())?;
        if injection.len() != self.injection_free_at.len() {
            return Err(SnapshotError::Corrupt("node count mismatch".into()));
        }
        self.injection_free_at = injection;
        Ok(())
    }

    /// Computes the multicast tree for one `(source, destination)` pattern:
    /// the union of the deterministic source routes is a tree, so
    /// deduplicating links gives each shared link exactly one copy of the
    /// message. Runs once per pattern; steady-state sends hit the cache.
    fn build_tree(&mut self, src: NodeId, dest: &Destination) -> CachedTree {
        let mut tree = CachedTree::default();
        self.build_tree_into(src, dest, &mut tree);
        tree
    }

    /// [`Interconnect::build_tree`] writing into an existing tree, clearing
    /// it first but keeping its allocations (used by the scratch fallback
    /// once the cache is full).
    fn build_tree_into(&mut self, src: NodeId, dest: &Destination, tree: &mut CachedTree) {
        let destinations = dest.expand(self.topology.num_nodes(), src);
        tree.tree_links.clear();
        tree.deliveries.clear();
        self.generation += 1;
        for dst in destinations {
            let path = self.routes.path(src, dst);
            for link in path {
                if self.link_gen[link.index()] != self.generation {
                    self.link_gen[link.index()] = self.generation;
                    tree.tree_links.push(*link);
                }
            }
            let via = match path.last() {
                None => DeliveryVia::Local,
                Some(last) => DeliveryVia::AtRouter(self.topology.links()[last.index()].to),
            };
            tree.deliveries.push((dst, via));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{BlockAddr, DataPayload, Destination, MsgKind, Vnet};

    fn config(topology: TopologyKind, bandwidth: BandwidthMode) -> InterconnectConfig {
        InterconnectConfig {
            topology,
            link_bandwidth_bytes_per_ns: 3.2,
            link_latency_ns: 15,
            bandwidth,
        }
    }

    fn request(src: usize, dest: Destination) -> Message {
        Message::new(
            NodeId::new(src),
            dest,
            BlockAddr::new(100),
            MsgKind::GetS,
            Vnet::Request,
            0,
        )
    }

    fn data(src: usize, dst: usize) -> Message {
        Message::new(
            NodeId::new(src),
            Destination::Node(NodeId::new(dst)),
            BlockAddr::new(100),
            MsgKind::Data {
                acks_expected: 0,
                exclusive: false,
                from_memory: true,
                payload: DataPayload::default(),
            },
            Vnet::Response,
            0,
        )
    }

    #[test]
    fn unicast_latency_on_torus_matches_hop_count() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        // Node 0 -> node 1 is one hop: one link latency.
        let d = net.send(0, request(0, Destination::Node(NodeId::new(1))));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, 15);
        // Node 0 -> node 10 is four hops.
        let d = net.send(0, request(0, Destination::Node(NodeId::new(10))));
        assert_eq!(d[0].at, 60);
    }

    #[test]
    fn unicast_latency_on_tree_is_four_crossings() {
        let mut net = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        let d = net.send(0, request(0, Destination::Node(NodeId::new(15))));
        assert_eq!(d[0].at, 60);
        // Even nodes on the same leaf switch pay the full root round trip.
        let d = net.send(0, request(0, Destination::Node(NodeId::new(1))));
        assert_eq!(d[0].at, 60);
    }

    #[test]
    fn limited_bandwidth_adds_serialization_delay() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        // A 72-byte data message takes ceil(72 / 3.2) = 23 ns per link.
        let d = net.send(0, data(0, 1));
        assert_eq!(d[0].at, 23 + 15);
    }

    #[test]
    fn back_to_back_messages_queue_on_the_same_link() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        let first = net.send(0, data(0, 1))[0].at;
        let second = net.send(0, data(0, 1))[0].at;
        assert!(second > first, "second message must queue behind the first");
        assert_eq!(second - first, 23);
    }

    #[test]
    fn unlimited_bandwidth_never_queues() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let first = net.send(0, data(0, 1))[0].at;
        let second = net.send(0, data(0, 1))[0].at;
        assert_eq!(first, second);
    }

    #[test]
    fn broadcast_reaches_all_other_nodes() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let deliveries = net.send(0, request(0, Destination::Broadcast));
        assert_eq!(deliveries.len(), 15);
        let nodes: std::collections::HashSet<_> = deliveries.iter().map(|d| d.node).collect();
        assert_eq!(nodes.len(), 15);
        assert!(!nodes.contains(&NodeId::new(0)));
    }

    #[test]
    fn broadcast_on_tree_is_simultaneous_and_ordered() {
        let mut net = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        assert!(net.provides_total_order());
        let deliveries = net.send(0, request(0, Destination::Broadcast));
        let times: std::collections::HashSet<_> = deliveries.iter().map(|d| d.at).collect();
        assert_eq!(times.len(), 1, "tree broadcast arrives everywhere at once");
    }

    #[test]
    fn multicast_shares_links_in_traffic_accounting() {
        let mut unlimited =
            Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        // A broadcast on the tree uses: 1 up-node link, 1 up-switch link,
        // 4 down-switch links, 15 down-node links (sender excluded, but its
        // leaf still receives the broadcast for the other three nodes).
        unlimited.send(0, request(0, Destination::Broadcast));
        let traffic = unlimited.traffic();
        assert_eq!(traffic.messages(TrafficClass::Request), 1);
        assert_eq!(traffic.bytes(TrafficClass::Request), 8);
        assert_eq!(
            traffic.link_bytes(TrafficClass::Request),
            8 * (1 + 1 + 4 + 15)
        );
    }

    #[test]
    fn torus_broadcast_uses_fewer_link_bytes_than_naive_unicasts() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        net.send(0, request(0, Destination::Broadcast));
        let tree_bytes = net.traffic().link_bytes(TrafficClass::Request);
        // Naive unicasts would pay sum of hop counts = 32 links * 8 bytes.
        assert!(tree_bytes < 32 * 8);
        // But a spanning tree of 16 nodes needs at least 15 links.
        assert!(tree_bytes >= 15 * 8);
    }

    #[test]
    fn self_delivery_on_tree_costs_a_root_round_trip() {
        let mut net = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        let all: Vec<NodeId> = (0..16).map(NodeId::new).collect();
        let deliveries = net.send(0, request(0, Destination::multicast(all)));
        assert_eq!(deliveries.len(), 16);
        let self_delivery = deliveries
            .iter()
            .find(|d| d.node == NodeId::new(0))
            .unwrap();
        assert_eq!(self_delivery.at, 60);
    }

    #[test]
    fn tree_root_is_a_bottleneck_under_load() {
        let mut tree = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Limited));
        let mut torus = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        // Every node broadcasts at time zero. On the tree, every broadcast
        // funnels through the root's downlinks, so the hottest tree link
        // carries far more bytes than the hottest torus link.
        for n in 0..16 {
            tree.send(0, request(n, Destination::Broadcast));
            torus.send(0, request(n, Destination::Broadcast));
        }
        let tree_hot = tree.max_link_bytes();
        let torus_hot = torus.max_link_bytes();
        assert!(
            tree_hot > torus_hot,
            "tree bottleneck ({tree_hot} bytes) should exceed torus bottleneck ({torus_hot} bytes)"
        );
        // Each of the root's downlinks carries all sixteen 8-byte broadcasts.
        assert_eq!(tree_hot, 16 * 8);
    }

    #[test]
    fn utilization_and_counters_accumulate() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        net.send(0, data(0, 1));
        net.send(10, data(2, 3));
        assert_eq!(net.total_sends(), 2);
        assert_eq!(net.total_deliveries(), 2);
        let util = net.link_utilization();
        let carried: u64 = util.iter().map(|u| u.bytes).sum();
        assert_eq!(carried, 144);
        assert!(net.max_link_bytes() >= 72);
    }

    #[test]
    fn tree_cache_overflow_falls_back_to_scratch_and_stays_correct() {
        // Drive more distinct multicast patterns than the cache holds; the
        // overflow patterns must still deliver exactly like a fresh fabric.
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        for pattern in 0..(TREE_CACHE_CAP as u32 + 10) {
            // Map the counter to a non-empty subset of the 16 nodes.
            let bits = (pattern % 0xFFFF) + 1;
            let nodes: Vec<NodeId> = (0..16)
                .filter(|n| bits & (1 << n) != 0)
                .map(NodeId::new)
                .collect();
            net.send(0, request(0, Destination::multicast(nodes)));
        }
        assert!(net.total_sends() > TREE_CACHE_CAP as u64);
        // A pattern beyond the cap: compare against an uncapped fresh fabric.
        let novel: Vec<NodeId> = vec![NodeId::new(3), NodeId::new(9), NodeId::new(14)];
        let mut fresh =
            Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let got = net.send(7, request(5, Destination::multicast(novel.clone())));
        let expected = fresh.send(7, request(5, Destination::multicast(novel)));
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_destination_produces_no_deliveries() {
        let mut net = Interconnect::new(1, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let deliveries = net.send(0, request(0, Destination::Broadcast));
        assert!(deliveries.is_empty());
    }
}
