//! The interconnect fabric: link contention, multicast routing, and traffic
//! accounting on top of a [`Topology`].

use std::collections::HashMap;

use tc_types::{
    BandwidthMode, Cycle, InterconnectConfig, Message, NodeId, TopologyKind, TrafficClass,
    TrafficStats,
};

use crate::topology::{LinkId, RouterId, Topology};
use crate::torus::TorusTopology;
use crate::tree::TreeTopology;

/// A message delivery produced by the fabric: `msg` arrives at `node` at
/// absolute time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Absolute arrival time.
    pub at: Cycle,
    /// Receiving node.
    pub node: NodeId,
    /// The message delivered.
    pub msg: Message,
}

/// Per-link utilization summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkUtilization {
    /// Bytes carried by the link.
    pub bytes: u64,
    /// Messages carried by the link.
    pub messages: u64,
    /// Total time the link spent serializing messages, in nanoseconds.
    pub busy_ns: Cycle,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    free_at: Cycle,
    bytes: u64,
    messages: u64,
    busy_ns: Cycle,
}

/// The interconnection network: a topology plus link timing/contention state.
///
/// The fabric uses store-and-forward timing with per-link serialization. A
/// message sent at time `t` crosses each link on its path in turn; on every
/// link it waits until the link is free, occupies it for
/// `size / bandwidth` nanoseconds, and then spends the link latency in
/// flight. Multicasts and broadcasts are routed as trees: a link shared by
/// several destinations carries (and pays for) the message exactly once,
/// matching the paper's bandwidth-efficient tree-based multicast routing.
#[derive(Debug)]
pub struct Interconnect {
    topology: Box<dyn Topology>,
    config: InterconnectConfig,
    links: Vec<LinkState>,
    traffic: TrafficStats,
    total_deliveries: u64,
    total_sends: u64,
    /// Per-node injection port occupancy, modelling the node's single
    /// interface into the fabric.
    injection_free_at: Vec<Cycle>,
}

impl Interconnect {
    /// Builds the interconnect described by `config` for `num_nodes` nodes.
    pub fn new(num_nodes: usize, config: InterconnectConfig) -> Self {
        let topology: Box<dyn Topology> = match config.topology {
            TopologyKind::Tree => Box::new(TreeTopology::new(num_nodes)),
            TopologyKind::Torus => Box::new(TorusTopology::new(num_nodes)),
        };
        let links = vec![LinkState::default(); topology.links().len()];
        Interconnect {
            topology,
            config,
            links,
            traffic: TrafficStats::new(),
            total_deliveries: 0,
            total_sends: 0,
            injection_free_at: vec![0; num_nodes],
        }
    }

    /// The topology the fabric was built on.
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// Whether this fabric delivers broadcasts in a total order.
    pub fn provides_total_order(&self) -> bool {
        self.topology.provides_total_order()
    }

    /// Traffic accumulated so far, by message class.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Number of individual deliveries produced so far.
    pub fn total_deliveries(&self) -> u64 {
        self.total_deliveries
    }

    /// Number of messages injected so far.
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    /// Per-link utilization, indexed by link.
    pub fn link_utilization(&self) -> Vec<LinkUtilization> {
        self.links
            .iter()
            .map(|l| LinkUtilization {
                bytes: l.bytes,
                messages: l.messages,
                busy_ns: l.busy_ns,
            })
            .collect()
    }

    /// The highest single-link byte count, a proxy for the bottleneck link
    /// (the tree's root links saturate long before torus links do).
    pub fn max_link_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).max().unwrap_or(0)
    }

    fn serialization_ns(&self, bytes: u64) -> Cycle {
        match self.config.bandwidth {
            BandwidthMode::Unlimited => 0,
            BandwidthMode::Limited => {
                let ns = bytes as f64 / self.config.link_bandwidth_bytes_per_ns;
                ns.ceil() as Cycle
            }
        }
    }

    /// Injects a message into the fabric at time `now`, returning the
    /// deliveries it produces (one per destination node).
    ///
    /// Sending a message to an empty destination set (for example a broadcast
    /// in a single-node system) returns no deliveries.
    pub fn send(&mut self, now: Cycle, msg: Message) -> Vec<Delivery> {
        let destinations = msg.dest.expand(self.topology.num_nodes(), msg.src);
        if destinations.is_empty() {
            return Vec::new();
        }
        self.total_sends += 1;

        let size = msg.size_bytes();
        let serialization = self.serialization_ns(size);
        let latency = self.config.link_latency_ns;

        // Injection port: the node serializes the message onto the fabric
        // once, regardless of fan-out.
        let src_index = msg.src.index();
        let inject_start = if matches!(self.config.bandwidth, BandwidthMode::Limited) {
            let start = now.max(self.injection_free_at[src_index]);
            self.injection_free_at[src_index] = start + serialization;
            start
        } else {
            now
        };

        // Build the multicast tree: the union of deterministic source routes
        // is a tree, so deduplicating links gives each shared link exactly one
        // copy of the message.
        let mut arrival: HashMap<RouterId, Cycle> = HashMap::new();
        arrival.insert(self.topology.node_router(msg.src), inject_start);
        let mut tree_links: Vec<LinkId> = Vec::new();
        let mut seen: HashMap<LinkId, ()> = HashMap::new();
        let mut paths = Vec::with_capacity(destinations.len());
        for dst in &destinations {
            let path = if *dst == msg.src {
                Vec::new()
            } else {
                self.topology.route(msg.src, *dst)
            };
            for link in &path {
                if seen.insert(*link, ()).is_none() {
                    tree_links.push(*link);
                }
            }
            paths.push((*dst, path));
        }

        // Walk the tree links in path order. Because each destination path
        // lists links from source outwards and shared prefixes appear first,
        // a link's upstream router always has an arrival time by the time we
        // process it.
        for link_id in &tree_links {
            let descriptor = self.topology.links()[link_id.index()];
            let upstream = *arrival
                .get(&descriptor.from)
                .expect("multicast tree processed out of order");
            let link = &mut self.links[link_id.index()];
            let start = match self.config.bandwidth {
                BandwidthMode::Limited => upstream.max(link.free_at),
                BandwidthMode::Unlimited => upstream,
            };
            let done = start + serialization;
            if matches!(self.config.bandwidth, BandwidthMode::Limited) {
                link.free_at = done;
            }
            link.bytes += size;
            link.messages += 1;
            link.busy_ns += serialization;
            let reach = done + latency;
            arrival
                .entry(descriptor.to)
                .and_modify(|t| *t = (*t).min(reach))
                .or_insert(reach);
        }

        self.traffic
            .record(TrafficClass::of(&msg), size, tree_links.len() as u64);

        let mut deliveries = Vec::with_capacity(destinations.len());
        for (dst, path) in paths {
            let at = if path.is_empty() {
                // Self-delivery (a node snooping its own ordered broadcast
                // still pays the round trip through the root on the tree;
                // on a torus a self-send is local).
                if self.topology.provides_total_order() && dst == msg.src {
                    // The message must still climb to the root and come back.
                    let round_trip = 4 * (latency + serialization);
                    inject_start + round_trip
                } else {
                    inject_start
                }
            } else {
                let last = self.topology.links()[path.last().unwrap().index()];
                *arrival
                    .get(&last.to)
                    .expect("destination router missing arrival time")
            };
            self.total_deliveries += 1;
            deliveries.push(Delivery {
                at,
                node: dst,
                msg: msg.clone(),
            });
        }
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{BlockAddr, DataPayload, Destination, MsgKind, Vnet};

    fn config(topology: TopologyKind, bandwidth: BandwidthMode) -> InterconnectConfig {
        InterconnectConfig {
            topology,
            link_bandwidth_bytes_per_ns: 3.2,
            link_latency_ns: 15,
            bandwidth,
        }
    }

    fn request(src: usize, dest: Destination) -> Message {
        Message::new(
            NodeId::new(src),
            dest,
            BlockAddr::new(100),
            MsgKind::GetS,
            Vnet::Request,
            0,
        )
    }

    fn data(src: usize, dst: usize) -> Message {
        Message::new(
            NodeId::new(src),
            Destination::Node(NodeId::new(dst)),
            BlockAddr::new(100),
            MsgKind::Data {
                acks_expected: 0,
                exclusive: false,
                from_memory: true,
                payload: DataPayload::default(),
            },
            Vnet::Response,
            0,
        )
    }

    #[test]
    fn unicast_latency_on_torus_matches_hop_count() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        // Node 0 -> node 1 is one hop: one link latency.
        let d = net.send(0, request(0, Destination::Node(NodeId::new(1))));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, 15);
        // Node 0 -> node 10 is four hops.
        let d = net.send(0, request(0, Destination::Node(NodeId::new(10))));
        assert_eq!(d[0].at, 60);
    }

    #[test]
    fn unicast_latency_on_tree_is_four_crossings() {
        let mut net = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        let d = net.send(0, request(0, Destination::Node(NodeId::new(15))));
        assert_eq!(d[0].at, 60);
        // Even nodes on the same leaf switch pay the full root round trip.
        let d = net.send(0, request(0, Destination::Node(NodeId::new(1))));
        assert_eq!(d[0].at, 60);
    }

    #[test]
    fn limited_bandwidth_adds_serialization_delay() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        // A 72-byte data message takes ceil(72 / 3.2) = 23 ns per link.
        let d = net.send(0, data(0, 1));
        assert_eq!(d[0].at, 23 + 15);
    }

    #[test]
    fn back_to_back_messages_queue_on_the_same_link() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        let first = net.send(0, data(0, 1))[0].at;
        let second = net.send(0, data(0, 1))[0].at;
        assert!(second > first, "second message must queue behind the first");
        assert_eq!(second - first, 23);
    }

    #[test]
    fn unlimited_bandwidth_never_queues() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let first = net.send(0, data(0, 1))[0].at;
        let second = net.send(0, data(0, 1))[0].at;
        assert_eq!(first, second);
    }

    #[test]
    fn broadcast_reaches_all_other_nodes() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let deliveries = net.send(0, request(0, Destination::Broadcast));
        assert_eq!(deliveries.len(), 15);
        let nodes: std::collections::HashSet<_> = deliveries.iter().map(|d| d.node).collect();
        assert_eq!(nodes.len(), 15);
        assert!(!nodes.contains(&NodeId::new(0)));
    }

    #[test]
    fn broadcast_on_tree_is_simultaneous_and_ordered() {
        let mut net = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        assert!(net.provides_total_order());
        let deliveries = net.send(0, request(0, Destination::Broadcast));
        let times: std::collections::HashSet<_> = deliveries.iter().map(|d| d.at).collect();
        assert_eq!(times.len(), 1, "tree broadcast arrives everywhere at once");
    }

    #[test]
    fn multicast_shares_links_in_traffic_accounting() {
        let mut unlimited =
            Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        // A broadcast on the tree uses: 1 up-node link, 1 up-switch link,
        // 4 down-switch links, 15 down-node links (sender excluded, but its
        // leaf still receives the broadcast for the other three nodes).
        unlimited.send(0, request(0, Destination::Broadcast));
        let traffic = unlimited.traffic();
        assert_eq!(traffic.messages(TrafficClass::Request), 1);
        assert_eq!(traffic.bytes(TrafficClass::Request), 8);
        assert_eq!(traffic.link_bytes(TrafficClass::Request), 8 * (1 + 1 + 4 + 15));
    }

    #[test]
    fn torus_broadcast_uses_fewer_link_bytes_than_naive_unicasts() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        net.send(0, request(0, Destination::Broadcast));
        let tree_bytes = net.traffic().link_bytes(TrafficClass::Request);
        // Naive unicasts would pay sum of hop counts = 32 links * 8 bytes.
        assert!(tree_bytes < 32 * 8);
        // But a spanning tree of 16 nodes needs at least 15 links.
        assert!(tree_bytes >= 15 * 8);
    }

    #[test]
    fn self_delivery_on_tree_costs_a_root_round_trip() {
        let mut net = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Unlimited));
        let all: Vec<NodeId> = (0..16).map(NodeId::new).collect();
        let deliveries = net.send(0, request(0, Destination::Multicast(all)));
        assert_eq!(deliveries.len(), 16);
        let self_delivery = deliveries.iter().find(|d| d.node == NodeId::new(0)).unwrap();
        assert_eq!(self_delivery.at, 60);
    }

    #[test]
    fn tree_root_is_a_bottleneck_under_load() {
        let mut tree = Interconnect::new(16, config(TopologyKind::Tree, BandwidthMode::Limited));
        let mut torus = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        // Every node broadcasts at time zero. On the tree, every broadcast
        // funnels through the root's downlinks, so the hottest tree link
        // carries far more bytes than the hottest torus link.
        for n in 0..16 {
            tree.send(0, request(n, Destination::Broadcast));
            torus.send(0, request(n, Destination::Broadcast));
        }
        let tree_hot = tree.max_link_bytes();
        let torus_hot = torus.max_link_bytes();
        assert!(
            tree_hot > torus_hot,
            "tree bottleneck ({tree_hot} bytes) should exceed torus bottleneck ({torus_hot} bytes)"
        );
        // Each of the root's downlinks carries all sixteen 8-byte broadcasts.
        assert_eq!(tree_hot, 16 * 8);
    }

    #[test]
    fn utilization_and_counters_accumulate() {
        let mut net = Interconnect::new(16, config(TopologyKind::Torus, BandwidthMode::Limited));
        net.send(0, data(0, 1));
        net.send(10, data(2, 3));
        assert_eq!(net.total_sends(), 2);
        assert_eq!(net.total_deliveries(), 2);
        let util = net.link_utilization();
        let carried: u64 = util.iter().map(|u| u.bytes).sum();
        assert_eq!(carried, 144);
        assert!(net.max_link_bytes() >= 72);
    }

    #[test]
    fn empty_destination_produces_no_deliveries() {
        let mut net = Interconnect::new(1, config(TopologyKind::Torus, BandwidthMode::Unlimited));
        let deliveries = net.send(0, request(0, Destination::Broadcast));
        assert!(deliveries.is_empty());
    }
}
