//! Two-level pipelined broadcast tree (Figure 1a).
//!
//! Nodes attach in groups of four to *incoming* leaf switches; every incoming
//! switch feeds a single root switch; the root feeds *outgoing* leaf switches
//! that fan back out to the nodes. Every message — unicast or broadcast —
//! crosses four links (node → incoming switch → root → outgoing switch →
//! node), and because every message passes through the one root switch, all
//! nodes observe all broadcasts in the same order: the "virtual bus" total
//! order that traditional snooping requires. The cost is the indirection
//! through discrete glue switches and the root bottleneck.

use tc_types::NodeId;

use crate::topology::{LinkDescriptor, LinkId, RouterId, Topology};

/// Fan-out of each leaf switch (the paper uses four).
pub const TREE_FANOUT: usize = 4;

/// A two-level indirect broadcast tree.
#[derive(Debug, Clone)]
pub struct TreeTopology {
    num_nodes: usize,
    groups: usize,
    links: Vec<LinkDescriptor>,
    /// Link from node i to its incoming switch.
    up_node: Vec<LinkId>,
    /// Link from incoming switch g to the root.
    up_switch: Vec<LinkId>,
    /// Link from the root to outgoing switch g.
    down_switch: Vec<LinkId>,
    /// Link from the outgoing switch of node i's group down to node i.
    down_node: Vec<LinkId>,
}

impl TreeTopology {
    /// Creates a tree for `num_nodes` nodes with fan-out
    /// [`TREE_FANOUT`]. A 16-node system uses 4 incoming switches, 4 outgoing
    /// switches, and one root switch — nine switch chips, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "tree needs at least one node");
        let groups = num_nodes.div_ceil(TREE_FANOUT);
        let mut links = Vec::new();
        let mut push = |from: RouterId, to: RouterId| {
            let id = LinkId(links.len());
            links.push(LinkDescriptor { from, to });
            id
        };

        // Router numbering: nodes, then incoming switches, then outgoing
        // switches, then the root.
        let in_switch = |g: usize| RouterId(num_nodes + g);
        let out_switch = |g: usize| RouterId(num_nodes + groups + g);
        let root = RouterId(num_nodes + 2 * groups);

        let mut up_node = Vec::with_capacity(num_nodes);
        let mut down_node = Vec::with_capacity(num_nodes);
        let mut up_switch = Vec::with_capacity(groups);
        let mut down_switch = Vec::with_capacity(groups);

        for node in 0..num_nodes {
            up_node.push(push(RouterId(node), in_switch(node / TREE_FANOUT)));
        }
        for g in 0..groups {
            up_switch.push(push(in_switch(g), root));
        }
        for g in 0..groups {
            down_switch.push(push(root, out_switch(g)));
        }
        for node in 0..num_nodes {
            down_node.push(push(out_switch(node / TREE_FANOUT), RouterId(node)));
        }

        TreeTopology {
            num_nodes,
            groups,
            links,
            up_node,
            up_switch,
            down_switch,
            down_node,
        }
    }

    /// Number of leaf-switch groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Total number of discrete switch chips (incoming + outgoing + root).
    pub fn num_switches(&self) -> usize {
        2 * self.groups + 1
    }

    /// The root switch router.
    pub fn root(&self) -> RouterId {
        RouterId(self.num_nodes + 2 * self.groups)
    }
}

impl Topology for TreeTopology {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_routers(&self) -> usize {
        self.num_nodes + self.num_switches()
    }

    fn links(&self) -> &[LinkDescriptor] {
        &self.links
    }

    fn node_router(&self, node: NodeId) -> RouterId {
        RouterId(node.index())
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        // A self-route is deliberately NOT empty on the tree: a node snooping
        // its own broadcast must receive it through the same root round trip
        // — and the same contended links — as every other node, or the total
        // order breaks. (An early version short-circuited the self-delivery
        // with a fixed four-crossing latency; under link contention that let
        // a node observe its own request *before* a broadcast the root had
        // serialized ahead of it, making two racing requesters each believe
        // they were ordered first — each handed the block to the other and
        // the second hand-off arrived at a completed MSHR and was dropped,
        // losing ownership. The conformance harness catches this as a
        // deadlock within seconds.)
        let src_group = src.index() / TREE_FANOUT;
        let dst_group = dst.index() / TREE_FANOUT;
        vec![
            self.up_node[src.index()],
            self.up_switch[src_group],
            self.down_switch[dst_group],
            self.down_node[dst.index()],
        ]
    }

    fn provides_total_order(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::validate_topology;

    #[test]
    fn sixteen_node_tree_has_nine_switches() {
        let t = TreeTopology::new(16);
        assert_eq!(t.groups(), 4);
        assert_eq!(t.num_switches(), 9);
        assert_eq!(t.num_routers(), 25);
    }

    #[test]
    fn every_route_is_four_link_crossings() {
        let t = TreeTopology::new(16);
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                assert_eq!(t.route(NodeId::new(s), NodeId::new(d)).len(), 4);
            }
        }
        assert!((t.average_hops() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn routes_are_valid_paths() {
        validate_topology(&TreeTopology::new(16));
        validate_topology(&TreeTopology::new(8));
        validate_topology(&TreeTopology::new(5));
    }

    #[test]
    fn tree_provides_total_order() {
        assert!(TreeTopology::new(16).provides_total_order());
    }

    #[test]
    fn every_route_passes_through_the_root() {
        let t = TreeTopology::new(16);
        let root = t.root();
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let passes_root = t
                    .route(NodeId::new(s), NodeId::new(d))
                    .iter()
                    .any(|l| t.links()[l.index()].to == root || t.links()[l.index()].from == root);
                assert!(passes_root, "route {s}->{d} bypasses the root");
            }
        }
    }

    #[test]
    fn odd_node_counts_round_up_groups() {
        let t = TreeTopology::new(5);
        assert_eq!(t.groups(), 2);
        assert_eq!(t.num_switches(), 5);
    }

    #[test]
    fn union_of_paths_from_one_source_is_a_tree() {
        let t = TreeTopology::new(16);
        use std::collections::HashMap;
        let mut entry_link: HashMap<usize, LinkId> = HashMap::new();
        for d in 0..16 {
            if d == 3 {
                continue;
            }
            for link_id in t.route(NodeId::new(3), NodeId::new(d)) {
                let link = t.links()[link_id.index()];
                let existing = entry_link.entry(link.to.index()).or_insert(link_id);
                assert_eq!(*existing, link_id);
            }
        }
    }
}
