//! Interconnection-network models.
//!
//! The paper compares two interconnects built from the same 3.2 GB/s,
//! 15 ns point-to-point links (Table 1, Section 5.2):
//!
//! * an **ordered two-level pipelined broadcast tree** (Figure 1a) — every
//!   message climbs to a single root switch and back down, so all nodes
//!   observe all broadcasts in the same order (a "virtual bus"), at the cost
//!   of four link crossings and a central bottleneck; and
//! * an **unordered two-dimensional bidirectional torus** (Figure 1b) —
//!   directly connected, two link crossings on average for 16 nodes, but no
//!   total order of requests, which rules out traditional snooping.
//!
//! [`Interconnect`] models both with per-link serialization (store-and-
//! forward contention), bandwidth-efficient tree-based multicast routing, and
//! traffic accounting by message class.
//!
//! # Example
//!
//! ```
//! use tc_interconnect::Interconnect;
//! use tc_types::{
//!     BlockAddr, Destination, InterconnectConfig, Message, MsgKind, NodeId, TopologyKind, Vnet,
//!     BandwidthMode,
//! };
//!
//! let config = InterconnectConfig {
//!     topology: TopologyKind::Torus,
//!     link_bandwidth_bytes_per_ns: 3.2,
//!     link_latency_ns: 15,
//!     bandwidth: BandwidthMode::Limited,
//! };
//! let mut network = Interconnect::new(16, config);
//! let msg = Message::new(
//!     NodeId::new(0),
//!     Destination::Node(NodeId::new(5)),
//!     BlockAddr::new(42),
//!     MsgKind::GetS,
//!     Vnet::Request,
//!     0,
//! );
//! let deliveries = network.send(0, msg);
//! assert_eq!(deliveries.len(), 1);
//! assert!(deliveries[0].at > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod fabric;
pub mod fault;
pub mod topology;
pub mod torus;
pub mod tree;

pub use adversary::Adversary;
pub use fabric::{Delivery, Interconnect, LinkUtilization};
pub use fault::FaultPlane;
pub use topology::{LinkId, RouterId, Topology};
pub use torus::TorusTopology;
pub use tree::TreeTopology;
