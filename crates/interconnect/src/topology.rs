//! Topology abstraction: routers, links, and deterministic routing.

use std::fmt;

use tc_types::NodeId;

/// Identifier of a router (an on-chip router at a node, or a discrete switch
/// chip in the indirect tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub usize);

impl RouterId {
    /// Returns the dense index of this router.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a unidirectional link between two routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Returns the dense index of this link.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A unidirectional link in the topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDescriptor {
    /// Router the link leaves from.
    pub from: RouterId,
    /// Router the link arrives at.
    pub to: RouterId,
}

/// A network topology: a set of routers connected by unidirectional links,
/// with deterministic source routing.
///
/// Routing must be deterministic and source-rooted so that the union of the
/// paths from one source to many destinations forms a tree; the fabric relies
/// on this to implement bandwidth-efficient multicast (each shared link
/// carries a multicast message only once).
pub trait Topology: fmt::Debug {
    /// Human-readable topology name.
    fn name(&self) -> &'static str;

    /// Number of processor nodes attached to the topology.
    fn num_nodes(&self) -> usize;

    /// Number of routers (including any discrete switches).
    fn num_routers(&self) -> usize;

    /// All unidirectional links, indexed by [`LinkId`].
    fn links(&self) -> &[LinkDescriptor];

    /// The router a processor node injects into and ejects from.
    fn node_router(&self, node: NodeId) -> RouterId;

    /// The ordered list of links a message from `src` to `dst` traverses.
    ///
    /// Must return the same path every time (deterministic routing), and the
    /// path from `src` to any router must be a prefix-closed function of the
    /// source only (so multicast unions form trees).
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId>;

    /// Whether broadcasts from different sources are observed by all nodes in
    /// a single total order (true only for the tree, whose root switch
    /// serializes every broadcast).
    fn provides_total_order(&self) -> bool;

    /// Average number of link crossings between distinct node pairs.
    fn average_hops(&self) -> f64 {
        let n = self.num_nodes();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        let mut pairs = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                total += self.route(NodeId::new(s), NodeId::new(d)).len();
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }

    /// Minimum number of link crossings between distinct node pairs — the
    /// shortest path any message between two *different* nodes can take.
    ///
    /// This is the basis of the sharded runner's conservative-PDES
    /// lookahead: an event at node A cannot affect node B (A ≠ B) sooner
    /// than `min_hops() * link_latency` in the future, regardless of how
    /// nodes are partitioned into shards. Deliberately a function of the
    /// topology alone (minimum over *all* distinct pairs, not just
    /// cross-shard pairs) so the derived window is identical at every shard
    /// count — partition-dependent lookahead would break the
    /// `shards(1) == shards(N)` bit-identity contract.
    fn min_hops(&self) -> usize {
        let n = self.num_nodes();
        let mut min = usize::MAX;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                min = min.min(self.route(NodeId::new(s), NodeId::new(d)).len());
            }
        }
        if min == usize::MAX {
            1
        } else {
            min.max(1)
        }
    }
}

/// Shared validation helpers for topology implementations, used by tests.
pub fn validate_topology(topology: &dyn Topology) {
    let links = topology.links();
    assert!(!links.is_empty(), "topology has no links");
    for link in links {
        assert!(link.from.index() < topology.num_routers());
        assert!(link.to.index() < topology.num_routers());
        assert_ne!(link.from, link.to, "self-loop link");
    }
    for s in 0..topology.num_nodes() {
        for d in 0..topology.num_nodes() {
            if s == d {
                continue;
            }
            let src = NodeId::new(s);
            let dst = NodeId::new(d);
            let path = topology.route(src, dst);
            assert!(!path.is_empty(), "no route from {src} to {dst}");
            // The path must be connected: each link starts where the previous
            // one ended, beginning at the source's router and ending at the
            // destination's router.
            let mut at = topology.node_router(src);
            for link_id in &path {
                let link = links[link_id.index()];
                assert_eq!(link.from, at, "disconnected path {src}->{dst}");
                at = link.to;
            }
            assert_eq!(at, topology.node_router(dst), "path does not reach {dst}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_and_link_ids_expose_indices() {
        assert_eq!(RouterId(3).index(), 3);
        assert_eq!(LinkId(9).index(), 9);
        assert_eq!(RouterId(3).to_string(), "R3");
    }
}
