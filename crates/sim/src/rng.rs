//! A small deterministic pseudo-random number generator.
//!
//! The simulator needs randomness in two places: synthetic workload
//! generation and the randomized exponential backoff of TokenB's reissue
//! policy ("much like ethernet", Section 4.2 of the paper). Both must be
//! reproducible from a seed so that the same configuration always produces
//! the same timing results; the paper's methodology of re-running each design
//! point with small pseudo-random perturbations is reproduced by varying the
//! seed.
//!
//! The generator is SplitMix64 followed by xorshift mixing — small, fast, and
//! statistically adequate for simulation decisions (this is not a
//! cryptographic generator).

/// Deterministic pseudo-random number generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams; the same seed always gives the same stream.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            // Avoid the all-zero state pathologies by mixing the seed once.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative range reduction; bias is negligible for simulation
        // purposes (bounds are far below 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a value uniformly distributed in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniformly distributed fraction in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to the weights. Zero-total weights fall back to index 0.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "cannot pick from empty weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Derives an independent generator, useful for giving each node its own
    /// stream from a single configuration seed.
    pub fn fork(&mut self, stream: u64) -> DeterministicRng {
        DeterministicRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The raw generator state, for snapshotting. Pair with
    /// [`DeterministicRng::from_state`]; round-tripping through these
    /// reproduces the stream exactly.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a [`DeterministicRng::state`] value.
    /// Unlike [`DeterministicRng::new`], no seed mixing is applied — the
    /// argument *is* the internal state.
    pub fn from_state(state: u64) -> DeterministicRng {
        DeterministicRng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DeterministicRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn next_range_stays_in_range() {
        let mut rng = DeterministicRng::new(9);
        for _ in 0..10_000 {
            let v = rng.next_range(100, 200);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn next_f64_is_a_fraction() {
        let mut rng = DeterministicRng::new(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut rng = DeterministicRng::new(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DeterministicRng::new(17);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut rng = DeterministicRng::new(19);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "observed ratio {ratio}");
    }

    #[test]
    fn pick_weighted_handles_zero_total() {
        let mut rng = DeterministicRng::new(23);
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), 0);
    }

    #[test]
    fn forked_streams_are_independent_but_reproducible() {
        let mut parent1 = DeterministicRng::new(31);
        let mut parent2 = DeterministicRng::new(31);
        let mut f1 = parent1.fork(5);
        let mut f2 = parent2.fork(5);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut other = parent1.fork(6);
        assert_ne!(other.next_u64(), f1.next_u64());
    }

    #[test]
    fn values_are_reasonably_uniform() {
        let mut rng = DeterministicRng::new(37);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
