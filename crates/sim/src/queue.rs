//! Time-ordered event queue with deterministic tie-breaking.
//!
//! # The determinism contract
//!
//! Every implementation of this queue — past (binary heap) and present
//! (calendar queue) — must preserve exactly three properties, because the
//! whole evaluation compares protocols on bit-identical event streams:
//!
//! 1. **Time order.** `pop` always returns the pending event with the
//!    smallest delivery time.
//! 2. **FIFO ties.** Events scheduled for the same time are delivered in the
//!    order they were scheduled, regardless of internal layout. The calendar
//!    queue gets this *structurally*: each per-cycle bucket is a FIFO deque,
//!    and the overflow level keeps one FIFO deque per far-future cycle — no
//!    global monotonically-growing sequence counter is needed (the old heap
//!    implementation carried a `u64` tie-break per entry forever).
//! 3. **Clamp to now.** Scheduling in the past is clamped to the current
//!    time rather than panicking; protocol code computes firing times from
//!    latencies and a zero-latency component is legitimate.
//!
//! # Layout
//!
//! The queue is a classic calendar queue specialized for a simulator whose
//! event latencies are almost always small: a ring of [`HORIZON_CYCLES`]
//! per-cycle buckets covering the window `[now, now + HORIZON_CYCLES)`,
//! plus a sorted overflow level (`BTreeMap<Cycle, VecDeque<E>>`) for
//! far-future events such as reissue and persistent-request timers. An
//! occupancy bitmap (one bit per bucket) lets `pop` find the next non-empty
//! bucket by scanning words and counting trailing zeros instead of walking
//! empty cycles one by one.
//!
//! The ring index of an in-window event is `time & (HORIZON_CYCLES - 1)`;
//! because the window is exactly as long as the ring, a slot maps to one
//! absolute cycle at a time. Whenever `now` advances (only `pop` advances
//! it), overflow cycles that entered the window migrate into their buckets
//! *before* any new event can be scheduled directly into those cycles, so
//! FIFO order between a migrated event and a later direct schedule is
//! preserved.

use std::collections::{BTreeMap, VecDeque};

use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use crate::Cycle;

/// Length of the calendar window in cycles (must be a power of two).
///
/// Sized to the latency horizon of the simulated system: cache and memory
/// latencies are tens of nanoseconds, a contended multi-hop fabric traversal
/// hundreds, and reissue timeouts (2x recent average miss latency) low
/// thousands. Everything beyond the window — persistent-request escalations
/// under pathological contention, drain-limit sentinels — takes the sorted
/// overflow path, which is correct at any distance, merely slower.
pub const HORIZON_CYCLES: u64 = 4096;

const MASK: u64 = HORIZON_CYCLES - 1;
const WORDS: usize = (HORIZON_CYCLES as usize) / 64;

/// A deterministic, time-ordered event queue (calendar queue).
///
/// See the module documentation for the determinism contract and layout.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of per-cycle FIFO buckets; index = `time & MASK`.
    buckets: Box<[VecDeque<E>]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Far-future events, FIFO per cycle, sorted by cycle.
    overflow: BTreeMap<Cycle, VecDeque<E>>,
    /// Number of events currently in `overflow`.
    overflow_len: usize,
    now: Cycle,
    len: usize,
    scheduled: u64,
    delivered: u64,
    /// High-water mark of `len`, for bottleneck reports.
    max_depth: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        let buckets = (0..HORIZON_CYCLES).map(|_| VecDeque::new()).collect();
        EventQueue {
            buckets,
            occupied: [0; WORDS],
            overflow: BTreeMap::new(),
            overflow_len: 0,
            now: 0,
            len: 0,
            scheduled: 0,
            delivered: 0,
            max_depth: 0,
        }
    }

    /// End of the calendar window. Saturates near `Cycle::MAX`; the window
    /// then covers fewer than `HORIZON_CYCLES` cycles, which keeps the ring
    /// mapping injective (events at the saturated end live in overflow).
    #[inline]
    fn horizon_end(&self) -> Cycle {
        self.now.saturating_add(HORIZON_CYCLES)
    }

    /// Schedules `event` to be delivered at absolute time `time`.
    ///
    /// Scheduling in the past is clamped to the current time (see the module
    /// documentation: clamping is part of the determinism contract).
    pub fn schedule(&mut self, time: Cycle, event: E) {
        let time = time.max(self.now);
        if time < self.horizon_end() {
            let slot = (time & MASK) as usize;
            self.buckets[slot].push_back(event);
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.entry(time).or_default().push_back(event);
            self.overflow_len += 1;
        }
        self.len += 1;
        self.scheduled += 1;
        if self.len > self.max_depth {
            self.max_depth = self.len;
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(time) = self.next_bucket_time() {
                let slot = (time & MASK) as usize;
                let bucket = &mut self.buckets[slot];
                let event = bucket
                    .pop_front()
                    .expect("occupied bit set on empty bucket");
                if bucket.is_empty() {
                    self.occupied[slot / 64] &= !(1 << (slot % 64));
                }
                self.len -= 1;
                self.delivered += 1;
                if time > self.now {
                    self.now = time;
                    self.migrate_overflow();
                }
                return Some((time, event));
            }
            // The whole window is empty: jump the clock to the first
            // overflow cycle and pull the events that entered the window
            // into their buckets.
            debug_assert!(self.overflow_len > 0, "len > 0 but nothing pending");
            let (&first, _) = self.overflow.first_key_value()?;
            self.now = first;
            self.migrate_overflow();
        }
    }

    /// Moves every overflow cycle that has entered the calendar window into
    /// its bucket. Called whenever `now` advances, which is what keeps FIFO
    /// order between migrated events and later direct schedules: a cycle can
    /// only be scheduled into directly once it is inside the window, and it
    /// enters the window in the same instant its overflow events migrate.
    fn migrate_overflow(&mut self) {
        if self.overflow_len == 0 {
            return;
        }
        let end = self.horizon_end();
        while let Some((&time, _)) = self.overflow.first_key_value() {
            // `time == self.now` only matters when `horizon_end` saturates
            // at `Cycle::MAX`: the window is then empty-length at the top
            // end, but an event due *now* must still migrate.
            if time >= end && time > self.now {
                break;
            }
            let (_, mut events) = self.overflow.pop_first().expect("checked non-empty");
            self.overflow_len -= events.len();
            let slot = (time & MASK) as usize;
            debug_assert!(
                self.buckets[slot].is_empty(),
                "bucket occupied while its cycle was still in overflow"
            );
            if self.buckets[slot].capacity() == 0 {
                // Donate the overflow deque's allocation instead of copying
                // into a fresh one.
                self.buckets[slot] = events;
            } else {
                self.buckets[slot].append(&mut events);
            }
            self.occupied[slot / 64] |= 1 << (slot % 64);
        }
    }

    /// The absolute cycle of the earliest non-empty bucket in the window, if
    /// any, found by scanning the occupancy bitmap from `now` forward (with
    /// wrap-around).
    #[inline]
    fn next_bucket_time(&self) -> Option<Cycle> {
        let start = (self.now & MASK) as usize;
        let (start_word, start_bit) = (start / 64, start % 64);

        // Bits at or after `start` in the first word.
        let word = self.occupied[start_word] & (!0u64 << start_bit);
        if word != 0 {
            let slot = start_word * 64 + word.trailing_zeros() as usize;
            return Some(self.now + (slot - start) as Cycle);
        }
        // Remaining words, wrapping around the ring.
        for step in 1..WORDS {
            let index = (start_word + step) % WORDS;
            let word = self.occupied[index];
            if word != 0 {
                let slot = index * 64 + word.trailing_zeros() as usize;
                let distance = (slot + HORIZON_CYCLES as usize - start) & MASK as usize;
                return Some(self.now + distance as Cycle);
            }
        }
        // Bits before `start` in the first word (the far end of the window).
        let word = self.occupied[start_word] & !(!0u64 << start_bit);
        if word != 0 {
            let slot = start_word * 64 + word.trailing_zeros() as usize;
            return Some(self.now + (slot + HORIZON_CYCLES as usize - start) as Cycle);
        }
        None
    }

    /// The delivery time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        // Every in-window event lives in a bucket and every overflow event
        // is at or beyond the window end, so the bucket scan wins when it
        // finds anything.
        self.next_bucket_time()
            .or_else(|| self.overflow.first_key_value().map(|(&t, _)| t))
    }

    /// Current simulation time (the delivery time of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events delivered so far.
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// High-water mark of the number of pending events, for bottleneck
    /// hunting (reported as `peak_queue_depth` in run reports).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of events currently parked in the overflow level (events
    /// scheduled beyond the calendar window).
    pub fn overflow_len(&self) -> usize {
        self.overflow_len
    }

    /// Iterates over every pending event in no particular order (calendar
    /// buckets first, then the overflow level). End-of-run audits use this
    /// to account for payloads still in flight; nothing order-sensitive may
    /// depend on it.
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.buckets
            .iter()
            .flat_map(|bucket| bucket.iter())
            .chain(self.overflow.values().flat_map(|events| events.iter()))
    }

    /// Serializes the queue exactly: clock, counters, every non-empty
    /// calendar bucket (slot index + FIFO contents), and the overflow
    /// level in time order. FIFO order within a bucket is part of the
    /// determinism contract, so it round-trips byte-for-byte.
    pub fn save_state(&self, w: &mut SnapWriter, mut emit: impl FnMut(&mut SnapWriter, &E)) {
        w.u64(self.now);
        w.u64(self.scheduled);
        w.u64(self.delivered);
        w.usize(self.max_depth);
        let occupied = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty());
        w.usize(occupied.clone().count());
        for (slot, bucket) in occupied {
            w.usize(slot);
            w.seq(bucket.iter(), &mut emit);
        }
        w.seq(self.overflow.iter(), |w, (&time, events)| {
            w.u64(time);
            w.seq(events.iter(), &mut emit);
        });
    }

    /// Rebuilds a queue from [`EventQueue::save_state`] bytes.
    pub fn load_state(
        r: &mut SnapReader<'_>,
        mut read: impl FnMut(&mut SnapReader<'_>) -> Result<E, SnapshotError>,
    ) -> Result<EventQueue<E>, SnapshotError> {
        let mut q = EventQueue::new();
        q.now = r.u64()?;
        q.scheduled = r.u64()?;
        q.delivered = r.u64()?;
        q.max_depth = r.usize()?;
        let num_buckets = r.bounded_len(1)?;
        let mut len = 0usize;
        for _ in 0..num_buckets {
            let slot = r.usize()?;
            if slot >= HORIZON_CYCLES as usize {
                return Err(SnapshotError::Corrupt(format!("bucket slot {slot}")));
            }
            let events = r.seq(&mut read)?;
            if events.is_empty() || !q.buckets[slot].is_empty() {
                return Err(SnapshotError::Corrupt("bucket layout".into()));
            }
            len += events.len();
            q.buckets[slot] = events.into();
            q.occupied[slot / 64] |= 1 << (slot % 64);
        }
        let overflow = r.seq(|r| {
            let time = r.u64()?;
            let events = r.seq(&mut read)?;
            Ok((time, events))
        })?;
        let mut last_time = None;
        for (time, events) in overflow {
            if events.is_empty() || last_time.is_some_and(|t| time <= t) {
                return Err(SnapshotError::Corrupt("overflow layout".into()));
            }
            last_time = Some(time);
            len += events.len();
            q.overflow_len += events.len();
            q.overflow.insert(time, events.into());
        }
        q.len = len;
        if q.max_depth < len {
            return Err(SnapshotError::Corrupt("queue depth accounting".into()));
        }
        Ok(q)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The original binary-heap implementation, kept as the reference for the
/// differential tests below: any divergence between it and the calendar
/// queue under identical schedule/pop interleavings is a determinism bug.
#[cfg(test)]
mod legacy {
    use super::Cycle;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Debug)]
    struct Entry<E> {
        time: Cycle,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest time (and,
            // within a time, the lowest sequence number) pops first.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The pre-calendar event queue: a max-heap with inverted ordering and a
    /// global monotonically increasing sequence number as the FIFO tie-break.
    #[derive(Debug)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        now: Cycle,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: 0,
            }
        }

        pub fn schedule(&mut self, time: Cycle, event: E) {
            let time = time.max(self.now);
            self.heap.push(Entry {
                time,
                seq: self.next_seq,
                event,
            });
            self.next_seq += 1;
        }

        pub fn pop(&mut self) -> Option<(Cycle, E)> {
            let entry = self.heap.pop()?;
            self.now = entry.time;
            Some((entry.time, entry.event))
        }

        pub fn peek_time(&self) -> Option<Cycle> {
            self.heap.peek().map(|e| e.time)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(5, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(15, ());
        q.schedule(40, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 15);
        q.pop();
        assert_eq!(q.now(), 40);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, 'x');
        assert_eq!(q.pop(), Some((100, 'x')));
        q.schedule(50, 'y');
        assert_eq!(q.pop(), Some((100, 'y')));
    }

    #[test]
    fn counters_track_scheduled_and_delivered() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_delivered(), 0);
        q.pop();
        assert_eq!(q.total_delivered(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.peek_time(), Some(3));
    }

    #[test]
    fn interleaved_schedule_and_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(15, 3);
        q.schedule(12, 4);
        assert_eq!(q.pop(), Some((12, 4)));
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
    }

    #[test]
    fn depth_high_water_mark_tracks_peak() {
        let mut q = EventQueue::new();
        for t in 0..10 {
            q.schedule(t, ());
        }
        for _ in 0..5 {
            q.pop();
        }
        q.schedule(100, ());
        assert_eq!(q.max_depth(), 10);
        assert_eq!(q.len(), 6);
    }

    // ------------------------------------------------------------------
    // Overflow-level edge cases.
    // ------------------------------------------------------------------

    #[test]
    fn events_far_beyond_the_horizon_take_the_overflow_path_and_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10 * HORIZON_CYCLES, "far");
        assert_eq!(q.overflow_len(), 1);
        q.schedule(5, "near");
        assert_eq!(q.pop(), Some((5, "near")));
        assert_eq!(q.pop(), Some((10 * HORIZON_CYCLES, "far")));
        assert_eq!(q.overflow_len(), 0);
    }

    #[test]
    fn overflow_events_keep_fifo_order_with_later_direct_schedules() {
        let mut q = EventQueue::new();
        let target = HORIZON_CYCLES + 100;
        // Scheduled while `target` is beyond the window: overflow.
        q.schedule(target, 1u32);
        q.schedule(target, 2);
        // Advance the clock so `target` enters the window...
        q.schedule(200, 0);
        assert_eq!(q.pop(), Some((200, 0)));
        assert_eq!(q.overflow_len(), 0, "window advance must migrate overflow");
        // ...then schedule directly into the same cycle: FIFO demands the
        // overflow-migrated events come first.
        q.schedule(target, 3);
        assert_eq!(q.pop(), Some((target, 1)));
        assert_eq!(q.pop(), Some((target, 2)));
        assert_eq!(q.pop(), Some((target, 3)));
    }

    #[test]
    fn pop_jumps_across_a_completely_empty_window() {
        let mut q = EventQueue::new();
        // Nothing in the window at all; the only events are far out.
        q.schedule(7 * HORIZON_CYCLES + 3, 'a');
        q.schedule(7 * HORIZON_CYCLES + 3, 'b');
        q.schedule(9 * HORIZON_CYCLES, 'c');
        assert_eq!(q.pop(), Some((7 * HORIZON_CYCLES + 3, 'a')));
        assert_eq!(q.pop(), Some((7 * HORIZON_CYCLES + 3, 'b')));
        assert_eq!(q.pop(), Some((9 * HORIZON_CYCLES, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_storm_spanning_window_boundary() {
        let mut q = EventQueue::new();
        // A storm exactly at the last in-window cycle and the first
        // out-of-window cycle.
        let last_in = HORIZON_CYCLES - 1;
        let first_out = HORIZON_CYCLES;
        for i in 0..50u32 {
            q.schedule(last_in, i);
            q.schedule(first_out, 1000 + i);
        }
        for i in 0..50u32 {
            assert_eq!(q.pop(), Some((last_in, i)));
        }
        for i in 0..50u32 {
            assert_eq!(q.pop(), Some((first_out, 1000 + i)));
        }
    }

    #[test]
    fn events_at_cycle_max_are_delivered() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::MAX, 'z');
        q.schedule(Cycle::MAX - 1, 'y');
        q.schedule(3, 'a');
        assert_eq!(q.pop(), Some((3, 'a')));
        assert_eq!(q.pop(), Some((Cycle::MAX - 1, 'y')));
        assert_eq!(q.pop(), Some((Cycle::MAX, 'z')));
        assert_eq!(q.pop(), None);
        // Scheduling after the clock saturated still clamps and delivers.
        q.schedule(0, 'w');
        assert_eq!(q.pop(), Some((Cycle::MAX, 'w')));
    }

    // ------------------------------------------------------------------
    // Snapshot round-trips.
    // ------------------------------------------------------------------

    /// Snapshot/restore mid-run must be invisible: the restored queue and
    /// the original must produce identical pop streams, including bucket
    /// FIFO ties and overflow migration.
    #[test]
    fn save_load_round_trips_mid_run() {
        use crate::snapshot::{SnapReader, SnapWriter};
        let mut rng = DeterministicRng::new(0x5EED);
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..500 {
            let offset = match rng.next_below(10) {
                0..=5 => rng.next_below(64),
                6..=8 => rng.next_below(HORIZON_CYCLES),
                _ => HORIZON_CYCLES * (1 + rng.next_below(5)),
            };
            q.schedule(q.now() + offset, i);
            if rng.next_below(3) == 0 {
                q.pop();
            }
        }

        let mut w = SnapWriter::new();
        q.save_state(&mut w, |w, e| w.u64(*e));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = EventQueue::load_state(&mut r, |r| r.u64()).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.overflow_len(), q.overflow_len());
        assert_eq!(restored.total_scheduled(), q.total_scheduled());
        assert_eq!(restored.total_delivered(), q.total_delivered());
        assert_eq!(restored.max_depth(), q.max_depth());
        // Interleave fresh schedules with the drain on both queues.
        let mut i = 1000;
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b, "restored queue diverged");
            if a.is_none() {
                break;
            }
            if i % 3 == 0 {
                let t = q.now() + (i % 700);
                q.schedule(t, i);
                restored.schedule(t, i);
            }
            i += 1;
        }
    }

    // ------------------------------------------------------------------
    // Differential test against the legacy binary-heap implementation.
    // ------------------------------------------------------------------

    /// Drives the calendar queue and the legacy heap through identical
    /// seeded schedule/pop interleavings and requires identical
    /// `(time, event)` streams. The offset distribution deliberately mixes
    /// same-cycle storms (offset 0), in-window latencies, horizon-boundary
    /// values, and far-overflow timers.
    #[test]
    fn calendar_queue_matches_legacy_heap_on_random_interleavings() {
        for seed in [1u64, 7, 42, 0xBEEF, 0xD00D, 987_654_321] {
            let mut rng = DeterministicRng::new(seed);
            let mut calendar: EventQueue<u64> = EventQueue::new();
            let mut heap: legacy::HeapQueue<u64> = legacy::HeapQueue::new();
            let mut next_id: u64 = 0;
            let mut pending: usize = 0;

            for step in 0..20_000 {
                // Bias toward scheduling so the queue stays populated, but
                // drain it completely every so often.
                let drain = step % 4_000 == 3_999;
                let do_pop = drain || (pending > 0 && rng.next_below(100) < 45);
                if do_pop {
                    let pops = if drain { pending } else { 1 };
                    for _ in 0..pops {
                        let a = calendar.pop();
                        let b = heap.pop();
                        assert_eq!(a, b, "seed {seed} step {step}: pop diverged");
                        pending -= 1;
                    }
                } else {
                    let base = calendar.now();
                    let offset = match rng.next_below(100) {
                        0..=29 => 0,                                       // same-cycle storm
                        30..=69 => rng.next_below(64),                     // short latency
                        70..=84 => rng.next_below(HORIZON_CYCLES),         // anywhere in window
                        85..=94 => HORIZON_CYCLES - 2 + rng.next_below(4), // boundary
                        _ => HORIZON_CYCLES * (1 + rng.next_below(20)),    // far overflow
                    };
                    // Occasionally aim before `now` to exercise the clamp.
                    let time = if rng.next_below(20) == 0 {
                        base.saturating_sub(rng.next_below(50))
                    } else {
                        base + offset
                    };
                    // Several events at the same time in a burst.
                    let burst = 1 + rng.next_below(4);
                    for _ in 0..burst {
                        calendar.schedule(time, next_id);
                        heap.schedule(time, next_id);
                        next_id += 1;
                        pending += 1;
                    }
                }
                assert_eq!(
                    calendar.peek_time(),
                    heap.peek_time(),
                    "seed {seed} step {step}"
                );
            }

            // Final drain: the remaining streams must match exactly.
            loop {
                let a = calendar.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed}: final drain diverged");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(calendar.len(), 0);
            assert_eq!(calendar.overflow_len(), 0);
        }
    }
}
