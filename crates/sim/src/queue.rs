//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An entry in the event queue.
#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, within a
        // time, the lowest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// Events scheduled for the same time are delivered in the order they were
/// scheduled (FIFO), which keeps simulations reproducible regardless of the
/// heap's internal layout.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
    scheduled: u64,
    delivered: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// Schedules `event` to be delivered at absolute time `time`.
    ///
    /// Scheduling in the past is clamped to the current time rather than
    /// panicking; protocol code computes firing times from latencies and a
    /// zero-latency component is legitimate.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        let time = time.max(self.now);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
        self.scheduled += 1;
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.delivered += 1;
        Some((entry.time, entry.event))
    }

    /// The delivery time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Current simulation time (the delivery time of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events delivered so far.
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(5, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(15, ());
        q.schedule(40, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 15);
        q.pop();
        assert_eq!(q.now(), 40);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, 'x');
        assert_eq!(q.pop(), Some((100, 'x')));
        q.schedule(50, 'y');
        assert_eq!(q.pop(), Some((100, 'y')));
    }

    #[test]
    fn counters_track_scheduled_and_delivered() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_delivered(), 0);
        q.pop();
        assert_eq!(q.total_delivered(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.peek_time(), Some(3));
    }

    #[test]
    fn interleaved_schedule_and_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(15, 3);
        q.schedule(12, 4);
        assert_eq!(q.pop(), Some((12, 4)));
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
    }
}
