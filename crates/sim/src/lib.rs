//! Discrete-event simulation kernel.
//!
//! The kernel is intentionally small: a time-ordered [`EventQueue`] (a
//! calendar queue with deterministic FIFO tie-breaking), a generation-checked
//! slab [`Arena`] that keeps large event payloads out of the queue's moves,
//! and a tiny deterministic pseudo-random number generator
//! ([`DeterministicRng`]) used for randomized exponential backoff and
//! workload generation. Determinism matters here because the whole
//! evaluation compares protocols on *identical* workload streams; the same
//! seed must reproduce the same simulation to the cycle.
//!
//! # Example
//!
//! ```
//! use tc_sim::EventQueue;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(20, "second");
//! q.schedule(10, "first");
//! q.schedule(20, "third");
//!
//! assert_eq!(q.pop(), Some((10, "first")));
//! // Same-time events pop in insertion order.
//! assert_eq!(q.pop(), Some((20, "second")));
//! assert_eq!(q.pop(), Some((20, "third")));
//! assert_eq!(q.pop(), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod queue;
pub mod rng;
pub mod snapshot;

pub use arena::{Arena, ArenaRef};
pub use queue::EventQueue;
pub use rng::DeterministicRng;
pub use snapshot::{
    fnv1a64, open, seal, JournalRecord, RunJournal, SnapReader, SnapWriter, SnapshotError,
    SNAPSHOT_VERSION,
};

/// Simulated time in nanoseconds (equal to processor cycles at 1 GHz).
pub type Cycle = u64;
