//! A generation-checked slab arena for in-flight event payloads.
//!
//! The event queue moves its entries many times (bucket pushes, pops,
//! migrations), so queue entries should be small plain-old-data. Large
//! payloads — in this workspace, coherence [`Message`]s — are parked in an
//! [`Arena`] and the queue carries only an [`ArenaRef`]: a `u32` slot index
//! plus a `u32` generation stamp.
//!
//! # Lifetime and generation rules
//!
//! * [`Arena::insert`] parks a value and returns the only valid handle to
//!   it. The handle is `Copy`; the *value* is owned by the arena.
//! * [`Arena::take`] moves the value out and frees the slot. Freeing bumps
//!   the slot's generation, so any stale copy of the handle is dead: using
//!   it panics (generation mismatch) instead of silently aliasing whatever
//!   value recycled the slot. Every handle is therefore take-once.
//! * [`Arena::insert_shared`] parks one value for `n` uses of the same
//!   handle — the zero-clone multicast fan-out path. Each consumer reads
//!   through [`Arena::get`] and then [`Arena::release`]s; the `n`-th
//!   release frees the slot (and bumps the generation) exactly like `take`.
//! * Slots are recycled LIFO through a free list; steady-state insert/take
//!   cycles allocate nothing.
//!
//! [`Message`]: https://docs.rs/tc-types

use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};

/// A copyable handle to a value parked in an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    index: u32,
    generation: u32,
}

impl ArenaRef {
    /// Packs the handle into a `u64` (`index << 32 | generation`) for
    /// snapshot serialization.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.generation)
    }

    /// Rebuilds a handle from [`ArenaRef::to_bits`].
    pub fn from_bits(bits: u64) -> ArenaRef {
        ArenaRef {
            index: (bits >> 32) as u32,
            generation: bits as u32,
        }
    }
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    /// Outstanding handle uses before the slot frees (1 for plain
    /// [`Arena::insert`]; the fan-out count for [`Arena::insert_shared`]).
    remaining: u32,
    value: Option<T>,
}

/// A slab arena with generation-checked handles (see the module docs).
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    /// High-water mark of `len`, for occupancy reports.
    high_water: usize,
    /// Double-releases caught by the accounting guard in
    /// [`Arena::release`]. Always zero in a correct engine; surfaced
    /// through `EngineStats` so release builds report the bug instead of
    /// silently corrupting slot accounting.
    accounting_errors: u64,
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            high_water: 0,
            accounting_errors: 0,
        }
    }

    /// Creates an empty arena with room for `capacity` values before any
    /// slot allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
            high_water: 0,
            accounting_errors: 0,
        }
    }

    /// Parks `value` and returns its handle.
    pub fn insert(&mut self, value: T) -> ArenaRef {
        self.insert_shared(value, 1)
    }

    /// Parks one value to be consumed through `copies` uses of the returned
    /// handle — the zero-clone fan-out path: a multicast parks its payload
    /// once and every delivery [`Arena::release`]s the same handle, the last
    /// one freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero (a value nobody will ever release would
    /// leak its slot).
    pub fn insert_shared(&mut self, value: T, copies: u32) -> ArenaRef {
        assert!(copies > 0, "a parked value needs at least one handle use");
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.value.is_none(), "free list pointed at a full slot");
                slot.value = Some(value);
                slot.remaining = copies;
                ArenaRef {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena exceeded u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    remaining: copies,
                    value: Some(value),
                });
                ArenaRef {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Moves the value out of the arena, freeing (and re-stamping) its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (the slot was already freed, or freed
    /// and recycled for a different value), or if the value is still shared
    /// with other handle uses (see [`Arena::insert_shared`]) — taking it
    /// out from under them would turn their releases into stale-handle
    /// panics with the blame on the wrong call site.
    pub fn take(&mut self, handle: ArenaRef) -> T {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot {} was recycled",
            handle.index
        );
        assert_eq!(
            slot.remaining,
            1,
            "cannot take a value still shared by {} other handle uses",
            slot.remaining.saturating_sub(1)
        );
        let value = slot
            .value
            .take()
            .expect("arena handle with matching generation must hold a value");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        value
    }

    /// Consumes one use of a shared handle, freeing the slot (and dropping
    /// the value) when this was the last use. Returns `true` on the final
    /// release.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (same rules as [`Arena::take`]).
    pub fn release(&mut self, handle: ArenaRef) -> bool {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot {} was recycled",
            handle.index
        );
        // A matching generation on an already-freed slot means a
        // double-release slipped past the generation check (possible after
        // a u32 generation wraparound, or if internal accounting is
        // corrupted). A bare decrement here would wrap `remaining` in
        // release builds and resurrect the slot with ~4B phantom uses;
        // instead, record a structured accounting error (surfaced through
        // `EngineStats::arena_accounting_errors`) and leave the slot alone.
        if slot.remaining == 0 || slot.value.is_none() {
            self.accounting_errors += 1;
            debug_assert!(
                false,
                "arena double-release: slot {} has no live value",
                handle.index
            );
            return false;
        }
        slot.remaining -= 1;
        if slot.remaining > 0 {
            return false;
        }
        slot.value = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        true
    }

    /// Borrows the value behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (same rules as [`Arena::take`]).
    pub fn get(&self, handle: ArenaRef) -> &T {
        let slot = &self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot {} was recycled",
            handle.index
        );
        slot.value
            .as_ref()
            .expect("arena handle with matching generation must hold a value")
    }

    /// Number of values currently parked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of simultaneous occupancy (reported as
    /// `peak_arena_occupancy` in run reports).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of slots ever created (occupied plus free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Double-releases caught by the accounting guard in
    /// [`Arena::release`]. Non-zero means an engine bug; reports surface
    /// this as `arena_accounting_errors`.
    pub fn accounting_errors(&self) -> u64 {
        self.accounting_errors
    }

    /// Serializes the arena exactly: every slot (generation, remaining
    /// uses, value) plus the free list in LIFO order. Slot *positions* and
    /// free-list order are preserved byte-for-byte, because recycled slot
    /// indices feed handle allocation and must replay identically.
    pub fn save_state(&self, w: &mut SnapWriter, mut emit: impl FnMut(&mut SnapWriter, &T)) {
        w.usize(self.len);
        w.usize(self.high_water);
        w.u64(self.accounting_errors);
        w.seq(self.slots.iter(), |w, slot| {
            w.u32(slot.generation);
            w.u32(slot.remaining);
            w.option(slot.value.as_ref(), |w, v| emit(w, v));
        });
        w.seq(self.free.iter(), |w, &i| w.u32(i));
    }

    /// Rebuilds an arena from [`Arena::save_state`] bytes.
    pub fn load_state(
        r: &mut SnapReader<'_>,
        mut read: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<Arena<T>, SnapshotError> {
        let len = r.usize()?;
        let high_water = r.usize()?;
        let accounting_errors = r.u64()?;
        let slots = r.seq(|r| {
            let generation = r.u32()?;
            let remaining = r.u32()?;
            let value = r.option(&mut read)?;
            Ok(Slot {
                generation,
                remaining,
                value,
            })
        })?;
        let free = r.seq(|r| r.u32())?;
        let occupied = slots.iter().filter(|s| s.value.is_some()).count();
        if occupied != len || free.len() != slots.len() - occupied {
            return Err(SnapshotError::Corrupt("arena slot accounting".into()));
        }
        if free.iter().any(|&i| {
            slots
                .get(i as usize)
                .map(|s| s.value.is_some())
                .unwrap_or(true)
        }) {
            return Err(SnapshotError::Corrupt("arena free list".into()));
        }
        Ok(Arena {
            slots,
            free,
            len,
            high_water,
            accounting_errors,
        })
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut arena = Arena::new();
        let a = arena.insert("alpha");
        let b = arena.insert("beta");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), &"alpha");
        assert_eq!(arena.take(b), "beta");
        assert_eq!(arena.take(a), "alpha");
        assert!(arena.is_empty());
    }

    #[test]
    fn slots_are_recycled_without_new_allocations() {
        let mut arena = Arena::new();
        let first = arena.insert(1u32);
        arena.take(first);
        for i in 0..100u32 {
            let h = arena.insert(i);
            assert_eq!(arena.take(h), i);
        }
        assert_eq!(arena.capacity(), 1, "one slot must serve the whole cycle");
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut arena = Arena::new();
        let handles: Vec<_> = (0..10u32).map(|i| arena.insert(i)).collect();
        for h in handles {
            arena.take(h);
        }
        arena.insert(99);
        assert_eq!(arena.high_water(), 10);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn shared_values_free_on_the_last_release() {
        let mut arena = Arena::new();
        let h = arena.insert_shared("payload", 3);
        assert!(!arena.release(h));
        assert_eq!(arena.get(h), &"payload");
        assert!(!arena.release(h));
        assert_eq!(arena.len(), 1);
        assert!(arena.release(h), "third release is the last");
        assert!(arena.is_empty());
        // The slot is recycled with a fresh generation.
        let h2 = arena.insert("next");
        assert_eq!(arena.capacity(), 1);
        assert_eq!(arena.take(h2), "next");
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn releasing_a_freed_shared_handle_panics() {
        let mut arena = Arena::new();
        let h = arena.insert_shared(1u32, 2);
        arena.release(h);
        arena.release(h);
        arena.release(h);
    }

    #[test]
    #[should_panic(expected = "still shared")]
    fn taking_a_shared_value_panics() {
        let mut arena = Arena::new();
        let h = arena.insert_shared(1u32, 2);
        arena.take(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn taking_twice_panics_on_generation_mismatch() {
        let mut arena = Arena::new();
        let h = arena.insert(5u32);
        arena.take(h);
        // The slot may even hold a new value by now; the stale handle must
        // still be rejected.
        arena.insert(6u32);
        arena.take(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn get_rejects_stale_handles() {
        let mut arena = Arena::new();
        let h = arena.insert(5u32);
        arena.take(h);
        arena.get(h);
    }

    /// Regression for the double-release accounting hole: when a stale
    /// handle's generation *collides* with a freed slot (the u32 ABA case
    /// the generation assert cannot catch), release must record an
    /// accounting error instead of wrapping `remaining` to ~4 billion.
    #[test]
    fn double_release_past_the_generation_check_is_counted_not_wrapped() {
        let mut arena = Arena::new();
        let h = arena.insert(7u32);
        arena.take(h);
        // Forge the ABA collision: rewind the freed slot's generation so
        // the stale handle passes the generation check again.
        arena.slots[0].generation = arena.slots[0].generation.wrapping_sub(1);
        assert_eq!(arena.slots[0].remaining, 1, "take leaves the count behind");
        arena.slots[0].remaining = 0;

        // debug_assert fires under `cargo test`; the counted-error path is
        // what release builds see. Catch the unwind so both build modes
        // exercise the accounting.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| arena.release(h)));
        if let Ok(last) = result {
            assert!(!last, "a rejected release must not free anything");
        }
        assert_eq!(arena.accounting_errors(), 1);
        assert_eq!(arena.slots[0].remaining, 0, "remaining must not wrap");
        assert!(arena.is_empty(), "len accounting must be untouched");
    }

    #[test]
    fn save_load_round_trips_slot_layout_and_free_list_order() {
        let mut arena = Arena::new();
        let a = arena.insert(10u64);
        let b = arena.insert(20u64);
        let c = arena.insert_shared(30u64, 3);
        let d = arena.insert(40u64);
        arena.take(b);
        arena.take(a);
        arena.release(c);

        let mut w = SnapWriter::new();
        arena.save_state(&mut w, |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = Arena::load_state(&mut r, |r| r.u64()).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.len(), arena.len());
        assert_eq!(restored.high_water(), arena.high_water());
        assert_eq!(restored.capacity(), arena.capacity());
        assert_eq!(restored.free, arena.free, "free-list LIFO order matters");
        // The same post-snapshot operation sequence must produce identical
        // handles on both arenas — recycling order is part of the state.
        let drive = |a: &mut Arena<u64>| {
            assert_eq!(a.get(c), &30);
            assert!(!a.release(c));
            assert!(a.release(c));
            assert_eq!(a.take(d), 40);
            (a.insert(50), a.insert(60), a.insert(70))
        };
        assert_eq!(drive(&mut arena), drive(&mut restored));
    }

    #[test]
    fn load_rejects_inconsistent_accounting() {
        let mut arena = Arena::new();
        let h = arena.insert(1u64);
        arena.take(h);
        arena.insert(2u64);
        let mut w = SnapWriter::new();
        arena.save_state(&mut w, |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        // Corrupt the stored `len` (first field).
        let mut bad = bytes.clone();
        bad[0] = 9;
        let mut r = SnapReader::new(&bad);
        assert!(matches!(
            Arena::<u64>::load_state(&mut r, |r| r.u64()),
            Err(SnapshotError::Corrupt(_)) | Err(SnapshotError::Truncated)
        ));
    }
}
