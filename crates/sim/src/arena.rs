//! A generation-checked slab arena for in-flight event payloads.
//!
//! The event queue moves its entries many times (bucket pushes, pops,
//! migrations), so queue entries should be small plain-old-data. Large
//! payloads — in this workspace, coherence [`Message`]s — are parked in an
//! [`Arena`] and the queue carries only an [`ArenaRef`]: a `u32` slot index
//! plus a `u32` generation stamp.
//!
//! # Lifetime and generation rules
//!
//! * [`Arena::insert`] parks a value and returns the only valid handle to
//!   it. The handle is `Copy`; the *value* is owned by the arena.
//! * [`Arena::take`] moves the value out and frees the slot. Freeing bumps
//!   the slot's generation, so any stale copy of the handle is dead: using
//!   it panics (generation mismatch) instead of silently aliasing whatever
//!   value recycled the slot. Every handle is therefore take-once.
//! * [`Arena::insert_shared`] parks one value for `n` uses of the same
//!   handle — the zero-clone multicast fan-out path. Each consumer reads
//!   through [`Arena::get`] and then [`Arena::release`]s; the `n`-th
//!   release frees the slot (and bumps the generation) exactly like `take`.
//! * Slots are recycled LIFO through a free list; steady-state insert/take
//!   cycles allocate nothing.
//!
//! [`Message`]: https://docs.rs/tc-types

/// A copyable handle to a value parked in an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    /// Outstanding handle uses before the slot frees (1 for plain
    /// [`Arena::insert`]; the fan-out count for [`Arena::insert_shared`]).
    remaining: u32,
    value: Option<T>,
}

/// A slab arena with generation-checked handles (see the module docs).
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    /// High-water mark of `len`, for occupancy reports.
    high_water: usize,
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Creates an empty arena with room for `capacity` values before any
    /// slot allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
            high_water: 0,
        }
    }

    /// Parks `value` and returns its handle.
    pub fn insert(&mut self, value: T) -> ArenaRef {
        self.insert_shared(value, 1)
    }

    /// Parks one value to be consumed through `copies` uses of the returned
    /// handle — the zero-clone fan-out path: a multicast parks its payload
    /// once and every delivery [`Arena::release`]s the same handle, the last
    /// one freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero (a value nobody will ever release would
    /// leak its slot).
    pub fn insert_shared(&mut self, value: T, copies: u32) -> ArenaRef {
        assert!(copies > 0, "a parked value needs at least one handle use");
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.value.is_none(), "free list pointed at a full slot");
                slot.value = Some(value);
                slot.remaining = copies;
                ArenaRef {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena exceeded u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    remaining: copies,
                    value: Some(value),
                });
                ArenaRef {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Moves the value out of the arena, freeing (and re-stamping) its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (the slot was already freed, or freed
    /// and recycled for a different value), or if the value is still shared
    /// with other handle uses (see [`Arena::insert_shared`]) — taking it
    /// out from under them would turn their releases into stale-handle
    /// panics with the blame on the wrong call site.
    pub fn take(&mut self, handle: ArenaRef) -> T {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot {} was recycled",
            handle.index
        );
        assert_eq!(
            slot.remaining,
            1,
            "cannot take a value still shared by {} other handle uses",
            slot.remaining.saturating_sub(1)
        );
        let value = slot
            .value
            .take()
            .expect("arena handle with matching generation must hold a value");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        value
    }

    /// Consumes one use of a shared handle, freeing the slot (and dropping
    /// the value) when this was the last use. Returns `true` on the final
    /// release.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (same rules as [`Arena::take`]).
    pub fn release(&mut self, handle: ArenaRef) -> bool {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot {} was recycled",
            handle.index
        );
        debug_assert!(slot.value.is_some(), "live slot must hold a value");
        slot.remaining -= 1;
        if slot.remaining > 0 {
            return false;
        }
        slot.value = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        true
    }

    /// Borrows the value behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (same rules as [`Arena::take`]).
    pub fn get(&self, handle: ArenaRef) -> &T {
        let slot = &self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot {} was recycled",
            handle.index
        );
        slot.value
            .as_ref()
            .expect("arena handle with matching generation must hold a value")
    }

    /// Number of values currently parked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of simultaneous occupancy (reported as
    /// `peak_arena_occupancy` in run reports).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of slots ever created (occupied plus free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut arena = Arena::new();
        let a = arena.insert("alpha");
        let b = arena.insert("beta");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), &"alpha");
        assert_eq!(arena.take(b), "beta");
        assert_eq!(arena.take(a), "alpha");
        assert!(arena.is_empty());
    }

    #[test]
    fn slots_are_recycled_without_new_allocations() {
        let mut arena = Arena::new();
        let first = arena.insert(1u32);
        arena.take(first);
        for i in 0..100u32 {
            let h = arena.insert(i);
            assert_eq!(arena.take(h), i);
        }
        assert_eq!(arena.capacity(), 1, "one slot must serve the whole cycle");
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut arena = Arena::new();
        let handles: Vec<_> = (0..10u32).map(|i| arena.insert(i)).collect();
        for h in handles {
            arena.take(h);
        }
        arena.insert(99);
        assert_eq!(arena.high_water(), 10);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn shared_values_free_on_the_last_release() {
        let mut arena = Arena::new();
        let h = arena.insert_shared("payload", 3);
        assert!(!arena.release(h));
        assert_eq!(arena.get(h), &"payload");
        assert!(!arena.release(h));
        assert_eq!(arena.len(), 1);
        assert!(arena.release(h), "third release is the last");
        assert!(arena.is_empty());
        // The slot is recycled with a fresh generation.
        let h2 = arena.insert("next");
        assert_eq!(arena.capacity(), 1);
        assert_eq!(arena.take(h2), "next");
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn releasing_a_freed_shared_handle_panics() {
        let mut arena = Arena::new();
        let h = arena.insert_shared(1u32, 2);
        arena.release(h);
        arena.release(h);
        arena.release(h);
    }

    #[test]
    #[should_panic(expected = "still shared")]
    fn taking_a_shared_value_panics() {
        let mut arena = Arena::new();
        let h = arena.insert_shared(1u32, 2);
        arena.take(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn taking_twice_panics_on_generation_mismatch() {
        let mut arena = Arena::new();
        let h = arena.insert(5u32);
        arena.take(h);
        // The slot may even hold a new value by now; the stale handle must
        // still be rejected.
        arena.insert(6u32);
        arena.take(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn get_rejects_stale_handles() {
        let mut arena = Arena::new();
        let h = arena.insert(5u32);
        arena.take(h);
        arena.get(h);
    }
}
