//! Versioned, checksummed engine snapshots and the append-only run journal.
//!
//! Everything here is hand-rolled and offline-safe: fixed-width
//! little-endian fields, length-prefixed sequences, an FNV-1a-64 payload
//! checksum, and a small magic/version container. No serde, no external
//! crates — the format is owned by this module and documented in
//! DESIGN.md ("Snapshots & replay").
//!
//! The contract that makes this worth building: restoring a snapshot and
//! driving the engine to completion must produce a **bit-identical**
//! `RunReport` to the uninterrupted run. Serialization here is therefore
//! *exact* — container layouts (open-addressed slot positions, free-list
//! order, bucket FIFO order) round-trip byte-for-byte rather than being
//! rebuilt by re-insertion, because iteration order feeds the
//! deterministic event loop.

use std::fmt;

/// Magic bytes opening every sealed snapshot (`TCSNAP` + 2 format bytes).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TCSNAP\x00\x01";

/// Current snapshot format version. Bump on any layout change; readers
/// reject other versions rather than guessing.
///
/// * v1 — original PR 7 format.
/// * v2 — verifier payload carries the fairness oracle's outstanding
///   escalations; runner payload carries miss-latency samples and per-node
///   completion counts (and the adversary plane, when one is armed).
/// * v3 — fault/adversary plane state carries per-source-node RNG streams
///   (empty in single-stream mode); `EngineStats` carries shard telemetry;
///   the runner fingerprint folds in `RunOptions::shards`.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Why a snapshot or journal could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the announced payload did.
    Truncated,
    /// The container does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container's version is not one this build can read.
    BadVersion {
        /// Version found in the container header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The FNV-1a-64 checksum over the payload does not match the header.
    Checksum,
    /// Structurally valid bytes that decode to an impossible value
    /// (unknown enum tag, fingerprint mismatch, out-of-range index).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            SnapshotError::Checksum => {
                write!(f, "snapshot checksum mismatch (corrupt or tampered)")
            }
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over `bytes` — the integrity check for sealed payloads
/// and journal records. Not cryptographic; it catches torn writes and
/// bit rot, which is the failure model for a crash-resume file.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Append-only encoder: fixed-width little-endian primitives plus
/// length-prefixed sequences. The matching decoder is [`SnapReader`].
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer, returning the raw payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` via its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a sequence: a length prefix, then `emit` once per item.
    pub fn seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut emit: impl FnMut(&mut Self, T),
    ) {
        self.usize(items.len());
        for item in items {
            emit(self, item);
        }
    }

    /// Writes an `Option<T>` as a presence byte plus the value.
    pub fn option<T>(&mut self, value: Option<T>, emit: impl FnOnce(&mut Self, T)) {
        match value {
            Some(v) => {
                self.bool(true);
                emit(self, v);
            }
            None => self.bool(false),
        }
    }
}

/// Decoder for [`SnapWriter`] payloads. Every read is bounds-checked and
/// returns [`SnapshotError::Truncated`] rather than panicking — corrupt
/// input is an error value, never UB or an abort.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` written by [`SnapWriter::usize`], rejecting values
    /// that cannot index memory on this platform.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("usize {v} out of range")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.bounded_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.bounded_len(1)?;
        self.take(len)
    }

    /// Reads a sequence length and sanity-bounds it against the bytes
    /// actually remaining (each element needs at least `min_elem_bytes`),
    /// so a corrupt length cannot trigger an absurd pre-allocation.
    pub fn bounded_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.usize()?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    /// Reads a sequence written by [`SnapWriter::seq`].
    pub fn seq<T>(
        &mut self,
        mut read: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Vec<T>, SnapshotError> {
        let len = self.bounded_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(read(self)?);
        }
        Ok(out)
    }

    /// Reads an `Option<T>` written by [`SnapWriter::option`].
    pub fn option<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    /// Fails unless every payload byte was consumed — trailing garbage
    /// means the reader and writer disagree about the layout.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Seals `payload` into the on-disk container:
/// `magic(8) | version(4) | payload_len(8) | fnv1a64(payload)(8) | payload`.
pub fn seal(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Opens a sealed container, verifying magic, version, length, and
/// checksum. Returns the payload slice.
pub fn open(bytes: &[u8]) -> Result<(u32, &[u8]), SnapshotError> {
    if bytes.len() < 28 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let want = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() as u64 != len {
        return Err(SnapshotError::Truncated);
    }
    if fnv1a64(payload) != want {
        return Err(SnapshotError::Checksum);
    }
    Ok((version, payload))
}

/// One entry in the append-only run journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecord {
    /// A snapshot was taken at this point in the run.
    Checkpoint {
        /// Engine event count when the snapshot was sealed.
        events_delivered: u64,
        /// Simulated cycle when the snapshot was sealed.
        cycle: u64,
    },
    /// The verifier recorded a new invariant violation.
    Violation {
        /// Engine event count when the violation was recorded.
        events_delivered: u64,
        /// Simulated cycle when the violation was recorded.
        cycle: u64,
    },
    /// The run completed (drained or hit its cycle budget).
    End {
        /// Final engine event count.
        events_delivered: u64,
        /// Final simulated cycle.
        cycle: u64,
    },
    /// A starvation violation, with enough detail to reconstruct the
    /// fairness report without the full snapshot: who starved, on what,
    /// and for how long.
    StarvationDetail {
        /// Engine event count when starvation was declared.
        events_delivered: u64,
        /// Simulated cycle when starvation was declared.
        cycle: u64,
        /// Index of the starved node.
        node: u32,
        /// Block the starved request was for.
        addr: u64,
        /// How long the request had waited, in cycles.
        waited: u64,
    },
}

impl JournalRecord {
    fn tag(&self) -> u8 {
        match self {
            JournalRecord::Checkpoint { .. } => 0,
            JournalRecord::Violation { .. } => 1,
            JournalRecord::End { .. } => 2,
            JournalRecord::StarvationDetail { .. } => 3,
        }
    }

    /// Encodes the record body (tag byte included, checksum excluded).
    fn encode_body(&self, body: &mut Vec<u8>) {
        body.push(self.tag());
        match *self {
            JournalRecord::Checkpoint {
                events_delivered,
                cycle,
            }
            | JournalRecord::Violation {
                events_delivered,
                cycle,
            }
            | JournalRecord::End {
                events_delivered,
                cycle,
            } => {
                body.extend_from_slice(&events_delivered.to_le_bytes());
                body.extend_from_slice(&cycle.to_le_bytes());
            }
            JournalRecord::StarvationDetail {
                events_delivered,
                cycle,
                node,
                addr,
                waited,
            } => {
                body.extend_from_slice(&events_delivered.to_le_bytes());
                body.extend_from_slice(&cycle.to_le_bytes());
                body.extend_from_slice(&node.to_le_bytes());
                body.extend_from_slice(&addr.to_le_bytes());
                body.extend_from_slice(&waited.to_le_bytes());
            }
        }
    }

    /// Decodes a checksum-verified body. `None` means the record kind (or
    /// its layout) is unknown to this build — a *newer* writer appended it
    /// — and the loader should skip it rather than declare the file torn.
    fn decode_body(body: &[u8]) -> Option<JournalRecord> {
        let le_u64 = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap());
        match body[0] {
            tag @ 0..=2 if body.len() == 17 => {
                let events_delivered = le_u64(&body[1..9]);
                let cycle = le_u64(&body[9..17]);
                Some(match tag {
                    0 => JournalRecord::Checkpoint {
                        events_delivered,
                        cycle,
                    },
                    1 => JournalRecord::Violation {
                        events_delivered,
                        cycle,
                    },
                    _ => JournalRecord::End {
                        events_delivered,
                        cycle,
                    },
                })
            }
            3 if body.len() == 37 => Some(JournalRecord::StarvationDetail {
                events_delivered: le_u64(&body[1..9]),
                cycle: le_u64(&body[9..17]),
                node: u32::from_le_bytes(body[17..21].try_into().unwrap()),
                addr: le_u64(&body[21..29]),
                waited: le_u64(&body[29..37]),
            }),
            _ => None,
        }
    }
}

/// Append-only record of a run's progress between snapshots: checkpoints
/// taken, violations seen, and the final event count. Each record is
/// individually framed (`len u8 | body | fnv1a64(body) u64`, where
/// `body[0]` is the record tag) and checksummed, so a journal truncated
/// by a crash loads every record up to the tear, and a record kind this
/// build does not know — appended by a newer writer — is skipped rather
/// than mistaken for corruption.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RunJournal {
    records: Vec<JournalRecord>,
}

impl RunJournal {
    /// Empty journal.
    pub fn new() -> Self {
        RunJournal::default()
    }

    /// Appends one record.
    pub fn append(&mut self, record: JournalRecord) {
        self.records.push(record);
    }

    /// All records, in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Serializes every record as a framed, per-record-checksummed stream.
    pub fn as_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.records.len() * 26);
        let mut body = Vec::with_capacity(64);
        for record in &self.records {
            body.clear();
            record.encode_body(&mut body);
            debug_assert!(!body.is_empty() && body.len() <= usize::from(u8::MAX));
            out.push(body.len() as u8);
            out.extend_from_slice(&body);
            out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        }
        out
    }

    /// Loads a journal, keeping every intact record before the first torn
    /// one. Returns the journal and whether a tear was detected (a crashed
    /// run legitimately leaves one). A record whose checksum verifies but
    /// whose kind is unknown was written by a newer build: it is skipped
    /// and the load continues — framing makes that safe.
    pub fn load(bytes: &[u8]) -> (Self, bool) {
        let mut journal = RunJournal::new();
        let mut pos = 0;
        let mut torn = false;
        while pos < bytes.len() {
            let len = usize::from(bytes[pos]);
            if len == 0 || bytes.len() - pos < 1 + len + 8 {
                torn = true;
                break;
            }
            let body = &bytes[pos + 1..pos + 1 + len];
            let want =
                u64::from_le_bytes(bytes[pos + 1 + len..pos + 1 + len + 8].try_into().unwrap());
            if fnv1a64(body) != want {
                torn = true;
                break;
            }
            pos += 1 + len + 8;
            if let Some(record) = JournalRecord::decode_body(body) {
                journal.append(record);
            }
        }
        (journal, torn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.125);
        w.str("token coherence");
        w.bytes(&[1, 2, 3]);
        w.option(Some(42u64), |w, v| w.u64(v));
        w.option(None::<u64>, |w, v| w.u64(v));
        w.seq([10u64, 20, 30].into_iter(), |w, v| w.u64(v));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "token coherence");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.option(|r| r.u64()).unwrap(), Some(42));
        assert_eq!(r.option(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![10, 20, 30]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapWriter::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = SnapWriter::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.seq(|r| r.u8()), Err(SnapshotError::Truncated));
    }

    #[test]
    fn seal_and_open_verify_integrity() {
        let payload = b"engine state goes here";
        let sealed = seal(SNAPSHOT_VERSION, payload);
        let (version, opened) = open(&sealed).unwrap();
        assert_eq!(version, SNAPSHOT_VERSION);
        assert_eq!(opened, payload);

        // Any single flipped payload byte must be a checksum error.
        for i in 28..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert_eq!(open(&bad), Err(SnapshotError::Checksum), "byte {i}");
        }
        // A flipped magic byte is BadMagic, not a checksum error.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert_eq!(open(&bad), Err(SnapshotError::BadMagic));
        // Truncation anywhere is detected.
        assert_eq!(
            open(&sealed[..sealed.len() - 1]),
            Err(SnapshotError::Truncated)
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let sealed = seal(SNAPSHOT_VERSION + 9, b"x");
        assert!(matches!(
            open(&sealed),
            Err(SnapshotError::BadVersion { found, .. }) if found == SNAPSHOT_VERSION + 9
        ));
    }

    #[test]
    fn journal_round_trips_and_survives_a_tear() {
        let mut journal = RunJournal::new();
        journal.append(JournalRecord::Checkpoint {
            events_delivered: 1000,
            cycle: 40,
        });
        journal.append(JournalRecord::Violation {
            events_delivered: 1500,
            cycle: 61,
        });
        journal.append(JournalRecord::End {
            events_delivered: 317_430,
            cycle: 99_000,
        });
        let bytes = journal.as_bytes();
        let (loaded, torn) = RunJournal::load(&bytes);
        assert!(!torn);
        assert_eq!(loaded, journal);

        // A crash mid-append leaves a torn tail: earlier records survive.
        let (partial, torn) = RunJournal::load(&bytes[..bytes.len() - 10]);
        assert!(torn);
        assert_eq!(partial.records(), &journal.records()[..2]);

        // A corrupted record body stops the load at the corruption point
        // (frames are 26 bytes for the 17-byte-body kinds; byte 27 is
        // inside the second record's body).
        let mut bad = bytes.clone();
        bad[27] ^= 0xFF;
        let (partial, torn) = RunJournal::load(&bad);
        assert!(torn);
        assert_eq!(partial.records(), &journal.records()[..1]);

        // A corrupted length byte desynchronizes the stream: also a tear.
        let mut bad = bytes.clone();
        bad[26] ^= 0xFF;
        let (partial, torn) = RunJournal::load(&bad);
        assert!(torn);
        assert_eq!(partial.records(), &journal.records()[..1]);
    }

    #[test]
    fn starvation_detail_round_trips() {
        let mut journal = RunJournal::new();
        journal.append(JournalRecord::StarvationDetail {
            events_delivered: 5_000,
            cycle: 77_000,
            node: 3,
            addr: 42,
            waited: 60_000,
        });
        journal.append(JournalRecord::End {
            events_delivered: 6_000,
            cycle: 80_000,
        });
        let (loaded, torn) = RunJournal::load(&journal.as_bytes());
        assert!(!torn);
        assert_eq!(loaded, journal);
    }

    #[test]
    fn unknown_record_kinds_are_skipped_not_torn() {
        let mut journal = RunJournal::new();
        journal.append(JournalRecord::Checkpoint {
            events_delivered: 100,
            cycle: 10,
        });
        journal.append(JournalRecord::End {
            events_delivered: 200,
            cycle: 20,
        });
        let bytes = journal.as_bytes();

        // Splice a well-formed frame with a future record kind (tag 200)
        // between the two known records, as a newer writer would.
        let future_body = [200u8, 1, 2, 3, 4, 5];
        let mut spliced = bytes[..26].to_vec();
        spliced.push(future_body.len() as u8);
        spliced.extend_from_slice(&future_body);
        spliced.extend_from_slice(&fnv1a64(&future_body).to_le_bytes());
        spliced.extend_from_slice(&bytes[26..]);

        let (loaded, torn) = RunJournal::load(&spliced);
        assert!(!torn, "a valid unknown kind must not read as a tear");
        assert_eq!(loaded.records(), journal.records());

        // A known tag with an impossible body length is likewise a layout
        // from some other build: skipped, not torn.
        let short_known = [0u8, 9, 9];
        let mut spliced = bytes.to_vec();
        spliced.push(short_known.len() as u8);
        spliced.extend_from_slice(&short_known);
        spliced.extend_from_slice(&fnv1a64(&short_known).to_le_bytes());
        let (loaded, torn) = RunJournal::load(&spliced);
        assert!(!torn);
        assert_eq!(loaded.records(), journal.records());
    }
}
