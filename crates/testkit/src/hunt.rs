//! The pathology hunter: adversarial schedule search over [`AdversarySpec`].
//!
//! The persistent-request machinery exists to bound worst-case waiting, so
//! its interesting failures are not random — they are *schedules*: a reorder
//! window that keeps overtaking one node's requests, a targeted delay that
//! leans on one miss, a retry storm timed against a reissue timer. This
//! module searches that schedule space mechanically: a seeded random probe
//! phase over the [`AdversarySpec`] knobs, then greedy single-knob mutation
//! around the best probe, with an integer pathology objective built from the
//! run's tail metrics (worst/p99 miss latency, reissue and persistent-request
//! pressure, completion-share skew).
//!
//! Two kinds of find come out:
//!
//! * **Violations** — a probe whose run fails the verifier (including the
//!   fairness oracle's `Starvation`) is captured as a [`Failure`] and fed
//!   through the fault-aware shrinker ([`crate::shrink`]), so the hunter
//!   reports the *minimal* `(ops, faults, adversary)` repro, not the raw hit.
//!   A stock protocol must never produce one; the deliberately sabotaged
//!   arbiter must.
//! * **Pathologies** — violation-free schedules that maximize the objective.
//!   The worst ones found are pinned in [`pathology_catalog`] and re-run by
//!   conformance CI forever after, so a regression that makes the protocol
//!   *fragile* under a known-bad schedule (rather than incorrect) still
//!   trips a test.
//!
//! Determinism contract: [`hunt`] is a pure function of [`HuntOptions`].
//! Every probe is drawn from a [`DeterministicRng`] seeded only by
//! `options.seed`, every evaluation is a deterministic simulation run, and
//! the outcome (best spec, objective trace, failure) is therefore
//! bit-for-bit reproducible — which is what lets CI assert on a hunt's
//! output instead of merely tolerating it.

use std::fmt;

use tc_sim::DeterministicRng;
use tc_system::RunReport;
use tc_types::{AdversarySpec, FaultSpec, ProtocolKind};

use crate::scenario::Scenario;
use crate::{check_adversarial, shrink, Failure};

/// RNG stream tag for the hunter's own draws, so a hunt seed never collides
/// with a workload or adversary stream derived from the same integer.
const HUNT_STREAM: u64 = 0x4855_4E54; // "HUNT"

/// The hunter's budgeted, reproducible configuration.
#[derive(Debug, Clone)]
pub struct HuntOptions {
    /// Protocol under attack.
    pub protocol: ProtocolKind,
    /// Name of the scenario to perturb (see [`Scenario::by_name`]).
    pub scenario: String,
    /// Seed for both the workload stream and the hunter's probe RNG. One
    /// knob: the same `(options)` always replays the same hunt.
    pub seed: u64,
    /// Total number of adversarial evaluations (simulation runs) the hunt
    /// may spend, split between random probing and greedy mutation. The
    /// unperturbed baseline run is paid on top.
    pub budget: u64,
    /// Per-node operation count for every evaluation (smaller than the
    /// scenario default keeps a budgeted hunt cheap).
    pub ops_per_node: u64,
}

impl Default for HuntOptions {
    fn default() -> Self {
        HuntOptions {
            protocol: ProtocolKind::TokenB,
            scenario: "hot_block_contention".to_string(),
            seed: 0xAD5E,
            budget: 24,
            ops_per_node: 200,
        }
    }
}

/// What one hunt found.
#[derive(Debug, Clone)]
pub struct HuntOutcome {
    /// The options the hunt ran under.
    pub options: HuntOptions,
    /// Objective of the unperturbed (`AdversarySpec::none()`) baseline run.
    pub baseline_objective: u64,
    /// The worst (highest-objective) schedule found.
    pub best: AdversarySpec,
    /// The objective the best schedule achieved.
    pub best_objective: u64,
    /// Adversarial evaluations actually spent (excludes the baseline).
    pub evaluations: u64,
    /// The first verifier failure encountered, already shrunk to a minimal
    /// `(ops, faults, adversary)` repro. `None` for a healthy protocol.
    pub failure: Option<Failure>,
}

impl fmt::Display for HuntOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hunt {}/{} seed={} budget={} ops={}: evals={} baseline={} best={} spec[{}]",
            self.options.protocol,
            self.options.scenario,
            self.options.seed,
            self.options.budget,
            self.options.ops_per_node,
            self.evaluations,
            self.baseline_objective,
            self.best_objective,
            self.best
        )?;
        if let Some(failure) = &self.failure {
            write!(f, "\nVIOLATION (shrunk):\n{failure}")?;
        }
        Ok(())
    }
}

/// The integer pathology objective: a scalarization of the run's tail
/// metrics, higher = more pathological. Worst and 99th-percentile miss
/// latency count at face value (ns); every multiply-reissued or
/// persistent-request-completed miss adds a fixed surcharge (the machinery
/// the hunt targets); completion-share skew contributes at 1/100 of its ppm
/// value so gross unfairness dominates noise without drowning the latency
/// terms. The weights are a search heuristic, not a metric contract — only
/// monotonicity ("more starved is worse") matters to the hunter.
pub fn objective(report: &RunReport) -> u64 {
    report.miss_latency_max
        + report.miss_latency_p99
        + 100 * (report.reissue.reissued_more + report.reissue.persistent)
        + report.completion_skew_ppm / 100
}

/// One probe of the search space: a fresh spec with each class enabled with
/// the probability the comment states, aimed at a random victim pair.
fn random_spec(rng: &mut DeterministicRng, num_nodes: u64) -> AdversarySpec {
    let mut spec = AdversarySpec::none()
        .with_victim(rng.next_below(num_nodes) as u32, rng.next_below(64))
        .with_seed(rng.next_below(1 << 16));
    // Reorder is the cheapest, most broadly legal pressure: on 3/4 of probes.
    if rng.next_below(4) > 0 {
        spec.reorder_window = rng.next_range(1, 9) as u32;
    }
    // Targeted delay and storms each on half the probes, so single-class and
    // combined schedules both appear early.
    if rng.next_below(2) > 0 {
        spec.target_delay_ns = rng.next_range(50, 801) as u32;
    }
    if rng.next_below(2) > 0 {
        spec.storm_window_ns = rng.next_range(100, 2_001) as u32;
    }
    spec
}

/// One greedy step: redraw a single knob of `spec`. Sabotage is never drawn
/// — it is a test-only oracle trigger, not a legal schedule.
fn mutate(rng: &mut DeterministicRng, spec: AdversarySpec, num_nodes: u64) -> AdversarySpec {
    let mut s = spec;
    match rng.next_below(6) {
        0 => s.reorder_window = rng.next_below(9) as u32,
        1 => s.victim_node = rng.next_below(num_nodes) as u32,
        2 => s.victim_block = rng.next_below(64),
        3 => {
            s.target_delay_ns = if rng.next_below(4) == 0 {
                0
            } else {
                rng.next_range(50, 801) as u32
            };
        }
        4 => {
            s.storm_window_ns = if rng.next_below(4) == 0 {
                0
            } else {
                rng.next_range(100, 2_001) as u32
            };
        }
        _ => s.seed = rng.next_below(1 << 16),
    }
    s
}

/// Runs one budgeted hunt. Deterministic in `options` (see the module docs
/// for the contract). The first half of the budget randomly probes the
/// schedule space; the second half greedily mutates the best probe one knob
/// at a time, keeping strict improvements.
///
/// # Panics
///
/// Panics if `options.scenario` names no known scenario — hunts are driven
/// by tests and the `tc-bench hunt` CLI, both of which want a loud failure,
/// not a silently empty outcome.
pub fn hunt(options: &HuntOptions) -> HuntOutcome {
    let scenario = Scenario::by_name(&options.scenario)
        .unwrap_or_else(|| panic!("unknown scenario '{}'", options.scenario));
    let num_nodes = scenario.num_nodes as u64;
    let mut rng = DeterministicRng::new(options.seed).fork(HUNT_STREAM);

    let mut evaluations = 0u64;
    let mut failure: Option<Failure> = None;
    let evaluate =
        |spec: AdversarySpec, evaluations: &mut u64, failure: &mut Option<Failure>| -> u64 {
            let report = scenario.run_adversarial(
                options.protocol,
                options.seed,
                options.ops_per_node,
                FaultSpec::none(),
                spec,
            );
            *evaluations += 1;
            if failure.is_none() {
                *failure = check_adversarial(
                    options.protocol,
                    &scenario,
                    options.seed,
                    options.ops_per_node,
                    FaultSpec::none(),
                    spec,
                    &report,
                );
            }
            objective(&report)
        };

    // The baseline anchors the objective scale and is not charged against
    // the adversarial budget.
    let baseline_objective = {
        let report = scenario.run_adversarial(
            options.protocol,
            options.seed,
            options.ops_per_node,
            FaultSpec::none(),
            AdversarySpec::none(),
        );
        objective(&report)
    };

    let budget = options.budget.max(1);
    let probes = budget.div_ceil(2);
    let mut best = AdversarySpec::none();
    let mut best_objective = baseline_objective;

    // Phase 1: seeded random probing.
    for _ in 0..probes {
        let spec = random_spec(&mut rng, num_nodes);
        let score = evaluate(spec, &mut evaluations, &mut failure);
        if score > best_objective {
            best_objective = score;
            best = spec;
        }
    }

    // Phase 2: greedy single-knob mutation around the incumbent. Strict
    // improvement only, so the walk cannot cycle.
    for _ in probes..budget {
        let candidate = mutate(&mut rng, best, num_nodes);
        if candidate == best || candidate.is_none() {
            continue; // a no-op draw spends no simulation
        }
        let score = evaluate(candidate, &mut evaluations, &mut failure);
        if score > best_objective {
            best_objective = score;
            best = candidate;
        }
    }

    let failure = failure.map(|found| shrink(&found, &scenario));

    HuntOutcome {
        options: options.clone(),
        baseline_objective,
        best,
        best_objective,
        evaluations,
        failure,
    }
}

/// One hunter-found pathology pinned into the conformance matrix: a named
/// `(protocol, scenario, seed, ops, adversary)` coordinate that historically
/// maximized the pathology objective. CI re-runs every entry and asserts
/// zero violations plus live adversary machinery — a schedule that once
/// hurt must keep being survived.
#[derive(Debug, Clone, Copy)]
pub struct Pathology {
    /// Stable name, used in test output.
    pub name: &'static str,
    /// Protocol the schedule was hunted against.
    pub protocol: ProtocolKind,
    /// Scenario the schedule perturbs.
    pub scenario: &'static str,
    /// Workload seed of the original find.
    pub seed: u64,
    /// Per-node operation count of the original find.
    pub ops_per_node: u64,
    /// The adversarial schedule, in [`AdversarySpec::parse`] syntax.
    pub spec: &'static str,
}

impl Pathology {
    /// The parsed adversarial schedule.
    ///
    /// # Panics
    ///
    /// Panics if the pinned spec string is malformed — a catalog bug.
    pub fn adversary(&self) -> AdversarySpec {
        AdversarySpec::parse(self.spec)
            .unwrap_or_else(|e| panic!("pathology '{}' has a malformed spec: {e}", self.name))
    }

    /// Replays the pinned schedule and returns the audited report.
    ///
    /// # Panics
    ///
    /// Panics if the pinned scenario name is unknown — a catalog bug.
    pub fn run(&self) -> RunReport {
        let scenario = Scenario::by_name(self.scenario)
            .unwrap_or_else(|| panic!("pathology '{}' names unknown scenario", self.name));
        scenario.run_adversarial(
            self.protocol,
            self.seed,
            self.ops_per_node,
            FaultSpec::none(),
            self.adversary(),
        )
    }
}

/// The pinned pathology catalog: the worst schedules `hunt` has found so
/// far, frozen as conformance coordinates. Each entry records a real hunt
/// result (`tc-bench hunt` reports the coordinates when it beats the
/// incumbent); the conformance suite replays them with zero violations
/// tolerated.
pub fn pathology_catalog() -> Vec<Pathology> {
    vec![
        // `tc-bench hunt --budget 30 --ops 200`: +25% objective over the
        // unperturbed baseline (31205 vs 24993) from reordering alone.
        Pathology {
            name: "reorder_overtake_on_hot_block",
            protocol: ProtocolKind::TokenB,
            scenario: "hot_block_contention",
            seed: 0xAD5E,
            ops_per_node: 200,
            spec: "reorder=4,victim=0@42,seed=40062",
        },
        // `tc-bench hunt --scenario eviction_storm --seed 7 --budget 30
        // --ops 200`: objective 2717 vs baseline 1211 — a deep reorder
        // window plus targeted delay and a retry storm aimed at one
        // (node, block) pair while the tiny L2 keeps dirty evictions racing.
        Pathology {
            name: "targeted_delay_eviction_storm",
            protocol: ProtocolKind::TokenB,
            scenario: "eviction_storm",
            seed: 7,
            ops_per_node: 200,
            spec: "reorder=7,victim=2@36,delay=669,storm=1337,seed=18779",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> HuntOptions {
        HuntOptions {
            budget: 6,
            ops_per_node: 120,
            ..HuntOptions::default()
        }
    }

    #[test]
    fn hunts_are_bit_for_bit_reproducible() {
        let a = hunt(&tiny_options());
        let b = hunt(&tiny_options());
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.baseline_objective, b.baseline_objective);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.to_string(), b.to_string());
        assert!(a.failure.is_none(), "stock TokenB must survive: {a}");
    }

    #[test]
    fn a_different_seed_steers_the_search() {
        let a = hunt(&tiny_options());
        let b = hunt(&HuntOptions {
            seed: 0xD15EA5E,
            ..tiny_options()
        });
        // Different seeds explore different schedules (and run different
        // workload streams), so the best specs should differ.
        assert_ne!(
            (a.best, a.best_objective),
            (b.best, b.best_objective),
            "two seeds converged suspiciously exactly"
        );
    }

    #[test]
    fn the_search_finds_pressure_beyond_the_baseline() {
        let outcome = hunt(&tiny_options());
        assert!(outcome.evaluations > 0);
        assert!(
            outcome.best_objective >= outcome.baseline_objective,
            "the incumbent can never be worse than the baseline it started from"
        );
        assert!(
            !outcome.best.is_none(),
            "a budget of adversarial evaluations found nothing worse than \
             an unperturbed run: {outcome}"
        );
    }

    #[test]
    fn unknown_scenarios_fail_loudly() {
        let result = std::panic::catch_unwind(|| {
            hunt(&HuntOptions {
                scenario: "no_such_scenario".to_string(),
                ..tiny_options()
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pathology_catalog_entries_are_well_formed() {
        let catalog = pathology_catalog();
        assert!(catalog.len() >= 2, "CI pins at least two pathologies");
        for p in &catalog {
            assert!(Scenario::by_name(p.scenario).is_some(), "{}", p.name);
            assert!(!p.adversary().is_none(), "{}: inert spec", p.name);
            assert_eq!(
                p.adversary().sabotage,
                0,
                "{}: sabotage is an oracle trigger, never a pathology",
                p.name
            );
        }
        let mut names: Vec<_> = catalog.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "duplicate pathology names");
    }
}
