//! Named, seeded, contended workload scenarios.

use tc_system::experiment::ExperimentPoint;
use tc_system::{RunOptions, RunReport, System};
use tc_types::{AdversarySpec, Cycle, FaultSpec, ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

/// A named conformance scenario: a workload plus the system shape that makes
/// it contended. Running one is deterministic in `(protocol, seed)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name, used in failure reports and replay recipes.
    pub name: &'static str,
    /// The workload every processor runs.
    pub workload: WorkloadProfile,
    /// System size.
    pub num_nodes: usize,
    /// L2 capacity in bytes (small values force eviction/writeback storms).
    pub l2_bytes: u64,
    /// Operations each node must complete.
    pub ops_per_node: u64,
    /// Simulated-time ceiling for one run.
    pub max_cycles: Cycle,
}

impl Scenario {
    /// The standard conformance matrix: three differently-shaped contended
    /// scenarios. Every protocol must survive all of them.
    pub fn standard() -> Vec<Scenario> {
        vec![
            // A handful of blocks everybody writes: racing GetM/upgrade
            // traffic, reissues, persistent requests.
            Scenario {
                name: "hot_block_contention",
                workload: WorkloadProfile::hot_block(),
                num_nodes: 4,
                l2_bytes: 128 * 1024,
                ops_per_node: 400,
                max_cycles: 80_000_000,
            },
            // The paper's most contended commercial calibration at 8 nodes —
            // the configuration that exposed the snooping writeback race.
            Scenario {
                name: "oltp_calibration",
                workload: WorkloadProfile::oltp(),
                num_nodes: 8,
                l2_bytes: 512 * 1024,
                ops_per_node: 600,
                max_cycles: 100_000_000,
            },
            // A deliberately tiny L2 under a migratory/shared mix: constant
            // evictions of dirty blocks, so writebacks race with every
            // request pattern the workload produces.
            Scenario {
                name: "eviction_storm",
                workload: WorkloadProfile::producer_consumer(),
                num_nodes: 4,
                l2_bytes: 64 * 1024,
                ops_per_node: 400,
                max_cycles: 80_000_000,
            },
            // Pure migratory sharing: every block's write ownership
            // ping-pongs around the ring of nodes (read-then-write pairs,
            // near-zero think time) while a small L2 keeps dirty evictions
            // frequent — the heaviest sustained load on the shared
            // writeback plane (buffer churn, pullbacks, and — for snooping —
            // handshake windows racing with every ownership transfer).
            Scenario {
                name: "migratory_ring",
                workload: WorkloadProfile::migratory(),
                num_nodes: 4,
                l2_bytes: 96 * 1024,
                ops_per_node: 400,
                max_cycles: 80_000_000,
            },
        ]
    }

    /// The 64-node scale scenario: the contended OLTP calibration at the
    /// node count the scale sweeps run at, with a per-node L2 small enough
    /// that evictions and writebacks stay frequent. Not part of
    /// [`Scenario::standard`] (the full matrix times 64 nodes would dominate
    /// the suite); CI runs it as its own conformance check so the sweep
    /// scale stays under the same invariant oracle as the small systems.
    pub fn sweep64() -> Scenario {
        Scenario {
            name: "sweep64_oltp",
            workload: WorkloadProfile::oltp(),
            num_nodes: 64,
            l2_bytes: 256 * 1024,
            ops_per_node: 150,
            max_cycles: 400_000_000,
        }
    }

    /// Every named scenario: the standard matrix plus the 64-node scale
    /// scenario. The catalog backing [`Scenario::by_name`], so a new
    /// scenario constructor that skips it is unreachable by name.
    pub fn all() -> Vec<Scenario> {
        let mut all = Scenario::standard();
        all.push(Scenario::sweep64());
        all
    }

    /// Looks up a scenario by name (the replay path printed in failure
    /// reports).
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }

    /// The system configuration this scenario runs `protocol` under.
    pub fn config(&self, protocol: ProtocolKind, seed: u64) -> SystemConfig {
        let mut config = SystemConfig::isca03_default()
            .with_nodes(self.num_nodes)
            .with_protocol(protocol)
            .with_seed(seed);
        config.l2.size_bytes = self.l2_bytes;
        config
    }

    /// This scenario as a campaign-drivable [`ExperimentPoint`], so
    /// conformance scenarios can fan out across cores through
    /// `tc_system::Campaign` exactly like the paper's experiment catalogs.
    /// The point's label embeds `(scenario, protocol, seed)` — the replay
    /// coordinates.
    pub fn experiment_point(&self, protocol: ProtocolKind, seed: u64) -> ExperimentPoint {
        ExperimentPoint::new(
            format!("{}/{}/seed{}", self.name, protocol, seed),
            self.config(protocol, seed),
            self.workload.clone(),
        )
    }

    /// The run options a full-length run of this scenario uses.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            ops_per_node: self.ops_per_node,
            max_cycles: self.max_cycles,
            ..RunOptions::default()
        }
    }

    /// Runs the scenario to completion and returns the audited report.
    pub fn run(&self, protocol: ProtocolKind, seed: u64) -> RunReport {
        self.run_with_ops(protocol, seed, self.ops_per_node)
    }

    /// [`Scenario::run`] with an overridden per-node operation count — the
    /// shrinking hook.
    pub fn run_with_ops(&self, protocol: ProtocolKind, seed: u64, ops_per_node: u64) -> RunReport {
        self.run_faulted(protocol, seed, ops_per_node, FaultSpec::none())
    }

    /// [`Scenario::run_with_ops`] under a fault spec — the fault-campaign
    /// and fault-shrinking hook. Note this injects the spec *as given*: the
    /// per-protocol tolerance gating lives in `stress_faulted`, so tests
    /// can also drive a protocol outside its contract deliberately.
    pub fn run_faulted(
        &self,
        protocol: ProtocolKind,
        seed: u64,
        ops_per_node: u64,
        faults: FaultSpec,
    ) -> RunReport {
        self.run_adversarial(protocol, seed, ops_per_node, faults, AdversarySpec::none())
    }

    /// [`Scenario::run_faulted`] under an additional adversarial-scheduling
    /// spec — the hook the pathology hunter (`crate::hunt`) probes through.
    /// Deterministic in every argument; `AdversarySpec::none()` makes this
    /// exactly `run_faulted`.
    pub fn run_adversarial(
        &self,
        protocol: ProtocolKind,
        seed: u64,
        ops_per_node: u64,
        faults: FaultSpec,
        adversary: AdversarySpec,
    ) -> RunReport {
        let config = self.config(protocol, seed);
        let mut system = System::build(&config, &self.workload);
        system.run(RunOptions {
            ops_per_node,
            max_cycles: self.max_cycles,
            faults,
            adversary,
            ..RunOptions::default()
        })
    }

    /// [`Scenario::run_with_ops`] under sharded execution: the same run
    /// partitioned across `shards` worker threads by the conservative-PDES
    /// engine. The determinism contract is that
    /// `run_sharded(.., 1).determinism_view()` equals
    /// `run_sharded(.., N).determinism_view()` for every `N` — shard count
    /// may only move per-shard capacity telemetry, never results.
    pub fn run_sharded(
        &self,
        protocol: ProtocolKind,
        seed: u64,
        ops_per_node: u64,
        shards: u32,
    ) -> RunReport {
        let config = self.config(protocol, seed);
        let mut system = System::build(&config, &self.workload);
        system.run(
            RunOptions {
                ops_per_node,
                max_cycles: self.max_cycles,
                ..RunOptions::default()
            }
            .with_shards(shards),
        )
    }

    /// Runs the scenario interrupted-and-resumed: the run is checkpointed
    /// every `checkpoint_every` delivered events, cut at the *first*
    /// checkpoint past the cadence, and a **fresh** system restores that
    /// snapshot and finishes the run. Conformance asserts the returned
    /// report is bit-identical to [`Scenario::run_faulted`]'s — the
    /// restore-equivalence oracle of the snapshot plane.
    ///
    /// # Panics
    ///
    /// Panics if the run delivers too few events to reach even one
    /// checkpoint, or if the snapshot fails to restore — both are test
    /// failures, not conditions for a conformance suite to tolerate.
    pub fn run_resumed(
        &self,
        protocol: ProtocolKind,
        seed: u64,
        ops_per_node: u64,
        faults: FaultSpec,
        checkpoint_every: u64,
    ) -> RunReport {
        let config = self.config(protocol, seed);
        let options = RunOptions {
            ops_per_node,
            max_cycles: self.max_cycles,
            faults,
            ..RunOptions::default()
        }
        .with_checkpoint_every(checkpoint_every);

        // First leg: run to completion but keep the first snapshot. (The
        // engine has no mid-run abort; cutting at the first checkpoint and
        // discarding the rest of this run models the crash.)
        let mut first_snapshot: Option<Vec<u8>> = None;
        let mut interrupted = System::build(&config, &self.workload);
        interrupted.run_with_checkpoints(options, &mut |_, bytes| {
            if first_snapshot.is_none() {
                first_snapshot = Some(bytes.to_vec());
            }
        });
        let snapshot = first_snapshot.unwrap_or_else(|| {
            panic!(
                "scenario {} delivered too few events for a checkpoint every {} events",
                self.name, checkpoint_every
            )
        });

        // Second leg: a fresh system restores the snapshot and finishes.
        let mut resumed = System::build(&config, &self.workload);
        let progress = resumed
            .restore(&options, &snapshot)
            .unwrap_or_else(|e| panic!("scenario {}: snapshot restore failed: {e}", self.name));
        resumed.resume(options, progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matrix_has_at_least_three_distinct_scenarios() {
        let scenarios = Scenario::standard();
        assert!(scenarios.len() >= 3);
        let mut names: Vec<_> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn by_name_round_trips() {
        for scenario in Scenario::all() {
            assert_eq!(
                Scenario::by_name(scenario.name).unwrap().name,
                scenario.name
            );
        }
        assert!(Scenario::by_name("nope").is_none());
    }

    #[test]
    fn experiment_points_carry_the_replay_coordinates() {
        let scenario = Scenario::by_name("hot_block_contention").unwrap();
        let point = scenario.experiment_point(ProtocolKind::Hammer, 42);
        assert!(point.label.contains("hot_block_contention"));
        assert!(point.label.contains("Hammer"));
        assert!(point.label.contains("seed42"));
        assert_eq!(point.config.seed, 42);
        assert_eq!(point.config.num_nodes, scenario.num_nodes);
        assert!(point.config.validate().is_ok());
        assert_eq!(scenario.run_options().ops_per_node, scenario.ops_per_node);
    }

    #[test]
    fn runs_are_deterministic_in_protocol_and_seed() {
        let scenario = Scenario {
            ops_per_node: 150,
            ..Scenario::by_name("hot_block_contention").unwrap()
        };
        let a = scenario.run(ProtocolKind::Directory, 9);
        let b = scenario.run(ProtocolKind::Directory, 9);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.traffic.total_link_bytes(), b.traffic.total_link_bytes());
    }
}
