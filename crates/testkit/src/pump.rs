//! A controller-level interleaving pump for TokenB.
//!
//! The system runner delivers messages in simulated-arrival order; real
//! token-conservation bugs tend to hide in orderings a timing model never
//! produces. This pump drives bare [`TokenBController`]s with *adversarial*
//! interleavings instead: every per-node delivery is held in a pool and
//! released in an order drawn from a [`DeterministicRng`], while reissue
//! timers fire as soon as they are due — so deliberately delayed responses
//! cross reissued requests, persistent-request activations, and eviction
//! traffic (a timeout/retry storm).
//!
//! After **every** step the pump audits every touched block: the tokens held
//! across all caches and home memories plus the tokens inside undelivered
//! messages must equal the configured `T`, and exactly one owner token must
//! exist. That is invariant #1' checked continuously under randomized
//! message interleavings, not just at quiescence.

use tc_core::TokenBController;
use tc_sim::DeterministicRng;
use tc_types::{
    Address, BlockAddr, CoherenceController, Cycle, MemOp, MemOpKind, Message, NodeId, Outbox,
    ProtocolKind, ReqId, SystemConfig, Timer,
};

/// Tuning for one pump run.
#[derive(Debug, Clone, Copy)]
pub struct PumpOptions {
    /// Number of nodes (token count follows the configuration default).
    pub num_nodes: usize,
    /// Distinct hot blocks the random operations target.
    pub num_blocks: u64,
    /// Random steps before the drain phase.
    pub steps: u32,
    /// Probability that a step issues a new operation (the rest deliver
    /// pending messages or fire due timers).
    pub issue_chance: f64,
}

impl Default for PumpOptions {
    fn default() -> Self {
        PumpOptions {
            num_nodes: 4,
            num_blocks: 4,
            steps: 2_000,
            issue_chance: 0.25,
        }
    }
}

/// What a pump run observed.
#[derive(Debug, Clone)]
pub struct PumpOutcome {
    /// Operations issued.
    pub issued: u64,
    /// Miss completions observed.
    pub completions: u64,
    /// Conservation audits performed (one per touched block per step).
    pub audits: u64,
    /// Reissue/persistent timer firings delivered.
    pub timer_firings: u64,
}

/// One undelivered per-node message copy.
#[derive(Debug, Clone)]
struct PendingDelivery {
    node: NodeId,
    msg: Message,
}

struct Pump {
    controllers: Vec<TokenBController>,
    pending: Vec<PendingDelivery>,
    timers: Vec<(Cycle, NodeId, Timer)>,
    now: Cycle,
    rng: DeterministicRng,
    expected_tokens: u32,
    touched: Vec<BlockAddr>,
    outcome: PumpOutcome,
}

impl Pump {
    fn new(options: &PumpOptions, seed: u64) -> Self {
        let config = SystemConfig::isca03_default()
            .with_nodes(options.num_nodes)
            .with_protocol(ProtocolKind::TokenB)
            .with_seed(seed);
        let controllers = (0..options.num_nodes)
            .map(|n| TokenBController::new(NodeId::new(n), &config))
            .collect();
        Pump {
            controllers,
            pending: Vec::new(),
            timers: Vec::new(),
            now: 0,
            rng: DeterministicRng::new(seed ^ 0x70_6b_6e_73),
            expected_tokens: config.token.tokens_per_block,
            touched: Vec::new(),
            outcome: PumpOutcome {
                issued: 0,
                completions: 0,
                audits: 0,
                timer_firings: 0,
            },
        }
    }

    /// Expands an outbox into per-node pending deliveries and armed timers.
    fn absorb(&mut self, node: NodeId, out: Outbox) {
        self.outcome.completions += out.completions.len() as u64;
        for msg in out.messages {
            for dst in 0..self.controllers.len() {
                let dst = NodeId::new(dst);
                if msg.dest.includes(dst, msg.src) {
                    self.pending.push(PendingDelivery {
                        node: dst,
                        msg: msg.clone(),
                    });
                }
            }
        }
        for (at, timer) in out.timers {
            self.timers.push((at, node, timer));
        }
    }

    fn issue(&mut self, options: &PumpOptions) {
        let node = NodeId::new(self.rng.next_below(self.controllers.len() as u64) as usize);
        let block = self.rng.next_below(options.num_blocks);
        let write = self.rng.chance(0.5);
        let kind = if write {
            MemOpKind::Store
        } else {
            MemOpKind::Load
        };
        // A miss while the node already has an outstanding miss for the same
        // block merges; an unrelated MSHR conflict would panic inside the
        // controller, so keep the block set small but non-trivial.
        if self.controllers[node.index()].outstanding_misses() < 2 {
            self.outcome.issued += 1;
            let op = MemOp::new(
                ReqId::new(0x7000_0000 + self.outcome.issued),
                Address::new(block * 64),
                kind,
            );
            let mut out = Outbox::new();
            self.controllers[node.index()].access(self.now, &op, &mut out);
            self.absorb(node, out);
            let addr = BlockAddr::new(block);
            if !self.touched.contains(&addr) {
                self.touched.push(addr);
            }
        }
    }

    fn deliver_random(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let index = self.rng.next_below(self.pending.len() as u64) as usize;
        let delivery = self.pending.swap_remove(index);
        let mut out = Outbox::new();
        self.controllers[delivery.node.index()].handle_message(self.now, &delivery.msg, &mut out);
        self.absorb(delivery.node, out);
    }

    fn fire_due_timers(&mut self) {
        let now = self.now;
        let mut due = Vec::new();
        self.timers.retain(|(at, node, timer)| {
            if *at <= now {
                due.push((*node, *timer));
                false
            } else {
                true
            }
        });
        for (node, timer) in due {
            self.outcome.timer_firings += 1;
            let mut out = Outbox::new();
            self.controllers[node.index()].handle_timer(now, timer, &mut out);
            self.absorb(node, out);
        }
    }

    /// The continuous conservation audit: for every touched block, tokens in
    /// caches + home memories + undelivered messages must equal `T`, with
    /// exactly one owner token in the whole system.
    fn audit(&mut self, context: &str) {
        for &addr in &self.touched {
            self.outcome.audits += 1;
            let mut tokens: u64 = 0;
            let mut owners: u64 = 0;
            let mut memory_audited = false;
            for controller in &self.controllers {
                for audit in controller.audit_block(addr) {
                    tokens += u64::from(audit.tokens);
                    owners += u64::from(audit.owner_token);
                    memory_audited |= audit.in_memory;
                }
            }
            if !memory_audited {
                // Home state is stored sparsely: a home that has never
                // responded holds all `T` tokens (owner included) implicitly.
                tokens += u64::from(self.expected_tokens);
                owners += 1;
            }
            for delivery in &self.pending {
                if delivery.msg.addr == addr {
                    tokens += u64::from(delivery.msg.kind.token_count());
                    owners += u64::from(delivery.msg.kind.carries_owner_token());
                }
            }
            assert_eq!(
                tokens,
                u64::from(self.expected_tokens),
                "token conservation violated for {addr} {context} (owners={owners})"
            );
            assert_eq!(owners, 1, "owner-token count violated for {addr} {context}");
        }
    }
}

/// Runs the interleaving pump: `steps` random actions followed by a full
/// drain, with the conservation audit after every single step.
///
/// # Panics
///
/// Panics (failing the caller's test) if token conservation or the
/// single-owner-token invariant is ever violated, or if the system fails to
/// quiesce during the drain.
pub fn token_pump(options: PumpOptions, seed: u64) -> PumpOutcome {
    let mut pump = Pump::new(&options, seed);

    for step in 0..options.steps {
        // Advance time in uneven hops so reissue timeouts interleave with
        // (deliberately starved) deliveries.
        pump.now += pump.rng.next_range(1, 120);
        let issue = pump.rng.chance(options.issue_chance);
        if issue {
            pump.issue(&options);
        } else if pump.rng.chance(0.8) {
            pump.deliver_random();
        }
        pump.fire_due_timers();
        pump.audit(&format!("after step {step} (seed {seed})"));
    }

    // Drain: deliver everything and let every timer fire until quiescent.
    let mut rounds = 0;
    while !pump.pending.is_empty() || !pump.timers.is_empty() {
        rounds += 1;
        assert!(
            rounds < 200_000,
            "pump failed to quiesce (seed {seed}): {} pending, {} timers",
            pump.pending.len(),
            pump.timers.len()
        );
        pump.now += 60;
        if !pump.pending.is_empty() {
            pump.deliver_random();
        }
        // Timers only matter while misses are outstanding; once the last
        // response lands, stale timers fire as no-ops and drain away.
        if pump.pending.is_empty() {
            if let Some(&(at, _, _)) = pump.timers.iter().min_by_key(|(at, _, _)| *at) {
                pump.now = pump.now.max(at);
            }
        }
        pump.fire_due_timers();
        pump.audit(&format!("during drain (seed {seed})"));
    }
    pump.audit(&format!("at quiescence (seed {seed})"));
    pump.outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_quiesces_and_audits_continuously() {
        let outcome = token_pump(
            PumpOptions {
                steps: 400,
                ..PumpOptions::default()
            },
            7,
        );
        assert!(outcome.issued > 0);
        assert!(outcome.audits > 0);
    }

    #[test]
    fn pump_is_deterministic() {
        let options = PumpOptions {
            steps: 300,
            ..PumpOptions::default()
        };
        let a = token_pump(options, 11);
        let b = token_pump(options, 11);
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.timer_firings, b.timer_firings);
    }
}
