//! Cross-protocol conformance stress harness.
//!
//! The paper's central claim is that the correctness substrate can be checked
//! independently of the performance protocol. This crate is that claim turned
//! into test infrastructure: every protocol — the snooping, directory, and
//! hammer baselines just as much as TokenB — is driven through the same
//! seeded, contended scenarios under the same safety/liveness oracle
//! (`tc_system::verify`), so a protocol only counts as working if it survives
//! exactly what the others survive.
//!
//! The pieces:
//!
//! * [`Scenario`] — a named contended workload configuration (hot-block
//!   storms, the OLTP calibration, eviction storms on a deliberately tiny
//!   L2). Scenarios are pure data; [`Scenario::run`] is deterministic in
//!   `(protocol, seed)`, which is what makes every failure replayable.
//! * [`stress`] — the protocol × scenario × seed sweep, collecting every
//!   run whose report contains an invariant violation (safety) or a
//!   starvation/deadlock (liveness) as a [`Failure`].
//! * [`Failure`] — a replayable failing cell. Its `Display` prints the exact
//!   replay recipe; [`shrink`] minimizes the per-node operation count while
//!   the failure still reproduces, so the reported case is the smallest the
//!   harness can find.
//! * [`token_pump`] — a controller-level interleaving pump for TokenB that
//!   randomizes delivery order and timer firing (timeout/retry storms) while
//!   asserting token conservation after every step, independent of the
//!   system runner.

mod pump;
mod scenario;

pub use pump::{token_pump, PumpOptions, PumpOutcome};
pub use scenario::Scenario;

use std::fmt;

use tc_system::RunReport;
use tc_types::{InvariantViolation, ProtocolKind};

/// One failing (protocol, scenario, seed) cell of the conformance sweep.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Name of the scenario (see [`Scenario::standard`]).
    pub scenario: String,
    /// Workload seed the failure reproduces under.
    pub seed: u64,
    /// Operations per node the failing run used (shrunk runs lower this).
    pub ops_per_node: u64,
    /// The violations the verifier reported.
    pub violations: Vec<InvariantViolation>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on scenario '{}' (seed {}, {} ops/node) violated:",
            self.protocol, self.scenario, self.seed, self.ops_per_node
        )?;
        for violation in &self.violations {
            writeln!(f, "  - {violation}")?;
        }
        write!(
            f,
            "  replay: Scenario::by_name(\"{}\").unwrap().run_with_ops(ProtocolKind::{:?}, {}, {})",
            self.scenario, self.protocol, self.seed, self.ops_per_node
        )
    }
}

/// Extracts the failure (if any) from a finished run: any invariant
/// violation, including the structured starvation/deadlock liveness
/// violations the runner emits for stuck requesters.
pub fn check(
    protocol: ProtocolKind,
    scenario: &Scenario,
    seed: u64,
    ops_per_node: u64,
    report: &RunReport,
) -> Option<Failure> {
    if report.violations.is_empty() {
        None
    } else {
        Some(Failure {
            protocol,
            scenario: scenario.name.to_string(),
            seed,
            ops_per_node,
            violations: report.violations.clone(),
        })
    }
}

/// Runs every protocol through every scenario for every seed, returning the
/// failing cells (empty means full conformance). Deterministic: the same
/// inputs always produce the same failures.
pub fn stress(protocols: &[ProtocolKind], scenarios: &[Scenario], seeds: &[u64]) -> Vec<Failure> {
    let mut failures = Vec::new();
    for scenario in scenarios {
        for &protocol in protocols {
            for &seed in seeds {
                let report = scenario.run(protocol, seed);
                if let Some(failure) =
                    check(protocol, scenario, seed, scenario.ops_per_node, &report)
                {
                    failures.push(failure);
                }
            }
        }
    }
    failures
}

/// Shrinks a failure's per-node operation count: repeatedly halves it while
/// the failure still reproduces, then binary-searches the boundary, and
/// returns the smallest still-failing case. Because runs are deterministic
/// in `(protocol, scenario, seed, ops)`, the result is a minimal replayable
/// reproduction, not a flaky sample.
pub fn shrink(failure: &Failure, scenario: &Scenario) -> Failure {
    debug_assert_eq!(failure.scenario, scenario.name);
    let reproduces = |ops: u64| -> Option<Failure> {
        let report = scenario.run_with_ops(failure.protocol, failure.seed, ops);
        check(failure.protocol, scenario, failure.seed, ops, &report)
    };

    let mut best = failure.clone();
    // Phase 1: exponential descent.
    let mut ops = failure.ops_per_node;
    while ops > 1 {
        let half = ops / 2;
        match reproduces(half) {
            Some(smaller) => {
                best = smaller;
                ops = half;
            }
            None => break,
        }
    }
    // Phase 2: binary search between the largest passing and the smallest
    // failing count found so far.
    let mut lo = best.ops_per_node / 2; // passes (or zero)
    let mut hi = best.ops_per_node; // fails
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        match reproduces(mid) {
            Some(smaller) => {
                best = smaller;
                hi = mid;
            }
            None => lo = mid,
        }
    }
    best
}

/// Formats a batch of failures (each shrunk first) into one report string —
/// what the conformance test prints on failure.
pub fn failure_report(failures: &[Failure], scenarios: &[Scenario]) -> String {
    use fmt::Write;
    let mut out = String::new();
    writeln!(out, "{} conformance failure(s):", failures.len()).unwrap();
    for failure in failures {
        let scenario = scenarios
            .iter()
            .find(|s| s.name == failure.scenario)
            .expect("failure references a known scenario");
        let minimal = shrink(failure, scenario);
        writeln!(out, "{minimal}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{BlockAddr, NodeId};

    fn scenario() -> Scenario {
        let mut s = Scenario::standard()
            .into_iter()
            .find(|s| s.name == "hot_block_contention")
            .unwrap();
        s.ops_per_node = 200;
        s
    }

    #[test]
    fn clean_runs_produce_no_failure() {
        let s = scenario();
        let report = s.run(ProtocolKind::TokenB, 42);
        assert!(check(ProtocolKind::TokenB, &s, 42, s.ops_per_node, &report).is_none());
    }

    #[test]
    fn stress_sweep_is_deterministic() {
        let s = vec![scenario()];
        let a = stress(&[ProtocolKind::TokenB], &s, &[1, 2]);
        let b = stress(&[ProtocolKind::TokenB], &s, &[1, 2]);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn failure_display_contains_replay_recipe() {
        let failure = Failure {
            protocol: ProtocolKind::Snooping,
            scenario: "oltp_calibration".to_string(),
            seed: 7,
            ops_per_node: 300,
            violations: vec![InvariantViolation::Deadlock {
                node: NodeId::new(5),
                addr: BlockAddr::new(46),
                issued_at: 100,
                at: 900,
            }],
        };
        let text = failure.to_string();
        assert!(text.contains("replay:"));
        assert!(text.contains("oltp_calibration"));
        assert!(text.contains("Snooping"));
        assert!(text.contains("seed 7"));
        assert!(text.contains("deadlock"));
    }
}
