//! Cross-protocol conformance stress harness.
//!
//! The paper's central claim is that the correctness substrate can be checked
//! independently of the performance protocol. This crate is that claim turned
//! into test infrastructure: every protocol — the snooping, directory, and
//! hammer baselines just as much as TokenB — is driven through the same
//! seeded, contended scenarios under the same safety/liveness oracle
//! (`tc_system::verify`), so a protocol only counts as working if it survives
//! exactly what the others survive.
//!
//! The pieces:
//!
//! * [`Scenario`] — a named contended workload configuration (hot-block
//!   storms, the OLTP calibration, eviction storms on a deliberately tiny
//!   L2). Scenarios are pure data; [`Scenario::run`] is deterministic in
//!   `(protocol, seed)`, which is what makes every failure replayable.
//! * [`stress`] — the protocol × scenario × seed sweep, collecting every
//!   run whose report contains an invariant violation (safety) or a
//!   starvation/deadlock (liveness) as a [`Failure`].
//! * [`stress_faulted`] — the same sweep under an adversarial
//!   [`FaultSpec`]. Each protocol is injected with only the fault classes it
//!   contracts to survive (`FaultSpec::gated_for`); classes outside the
//!   contract come back as structured [`CapabilityGap`]s instead of false
//!   failures. This is the paper's decoupling claim under fire: TokenB must
//!   stay safe *and live* under loss, duplication, and reordering, while the
//!   ordered-interconnect baselines declare what they cannot promise.
//! * [`Failure`] — a replayable failing cell (including the fault spec it
//!   failed under). Its `Display` prints the exact replay recipe; [`shrink`]
//!   minimizes the per-node operation count *and* the fault schedule while
//!   the failure still reproduces, so the reported case is the smallest
//!   `(ops, faults)` pair the harness can find.
//! * [`token_pump`] — a controller-level interleaving pump for TokenB that
//!   randomizes delivery order and timer firing (timeout/retry storms) while
//!   asserting token conservation after every step, independent of the
//!   system runner.

mod hunt;
mod pump;
mod scenario;

pub use hunt::{hunt, pathology_catalog, HuntOptions, HuntOutcome, Pathology};
pub use pump::{token_pump, PumpOptions, PumpOutcome};
pub use scenario::Scenario;

use std::fmt;

use tc_system::RunReport;
use tc_types::{AdversarySpec, FaultKind, FaultSpec, InvariantViolation, ProtocolKind};

/// One failing (protocol, scenario, seed, faults, adversary) cell of the
/// conformance sweep. `faults` is `FaultSpec::none()` and `adversary` is
/// `AdversarySpec::none()` for the reliable, unperturbed-fabric sweep.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Name of the scenario (see [`Scenario::standard`]).
    pub scenario: String,
    /// Workload seed the failure reproduces under.
    pub seed: u64,
    /// Operations per node the failing run used (shrunk runs lower this).
    pub ops_per_node: u64,
    /// The fault spec injected during the failing run (shrunk runs thin it).
    pub faults: FaultSpec,
    /// The adversarial schedule the failing run executed under (shrunk runs
    /// zero the knobs the failure does not need).
    pub adversary: AdversarySpec,
    /// The violations the verifier reported.
    pub violations: Vec<InvariantViolation>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on scenario '{}' (seed {}, {} ops/node, faults {}, adversary {}) violated:",
            self.protocol, self.scenario, self.seed, self.ops_per_node, self.faults, self.adversary
        )?;
        for violation in &self.violations {
            writeln!(f, "  - {violation}")?;
        }
        if !self.adversary.is_none() {
            let faults = if self.faults.is_none() {
                "FaultSpec::none()".to_string()
            } else {
                format!("FaultSpec::parse(\"{}\").unwrap()", self.faults)
            };
            write!(
                f,
                "  replay: Scenario::by_name(\"{}\").unwrap().run_adversarial(ProtocolKind::{:?}, {}, {}, \
                 {}, AdversarySpec::parse(\"{}\").unwrap())",
                self.scenario, self.protocol, self.seed, self.ops_per_node, faults, self.adversary
            )
        } else if self.faults.is_none() {
            write!(
                f,
                "  replay: Scenario::by_name(\"{}\").unwrap().run_with_ops(ProtocolKind::{:?}, {}, {})",
                self.scenario, self.protocol, self.seed, self.ops_per_node
            )
        } else {
            write!(
                f,
                "  replay: Scenario::by_name(\"{}\").unwrap().run_faulted(ProtocolKind::{:?}, {}, {}, \
                 FaultSpec::parse(\"{}\").unwrap())",
                self.scenario, self.protocol, self.seed, self.ops_per_node, self.faults
            )
        }
    }
}

/// A fault class a protocol does not contract to survive, reported by
/// [`stress_faulted`] when the requested spec enables it. A gap is a
/// documented capability boundary — snooping's total-order assumption, the
/// baselines' lack of retry machinery — not a conformance failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilityGap {
    /// The protocol that declines the class.
    pub protocol: ProtocolKind,
    /// The fault class outside its contract.
    pub class: FaultKind,
}

impl fmt::Display for CapabilityGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} does not contract to survive fault class '{}' (tolerated: {:?})",
            self.protocol,
            self.class.name(),
            self.protocol.tolerated_faults()
        )
    }
}

/// Extracts the failure (if any) from a finished run: any invariant
/// violation, including the structured starvation/deadlock liveness
/// violations the runner emits for stuck requesters.
pub fn check(
    protocol: ProtocolKind,
    scenario: &Scenario,
    seed: u64,
    ops_per_node: u64,
    faults: FaultSpec,
    report: &RunReport,
) -> Option<Failure> {
    check_adversarial(
        protocol,
        scenario,
        seed,
        ops_per_node,
        faults,
        AdversarySpec::none(),
        report,
    )
}

/// [`check`] for runs that also executed under an [`AdversarySpec`] — the
/// hunter's failure-extraction hook.
pub fn check_adversarial(
    protocol: ProtocolKind,
    scenario: &Scenario,
    seed: u64,
    ops_per_node: u64,
    faults: FaultSpec,
    adversary: AdversarySpec,
    report: &RunReport,
) -> Option<Failure> {
    if report.violations.is_empty() {
        None
    } else {
        Some(Failure {
            protocol,
            scenario: scenario.name.to_string(),
            seed,
            ops_per_node,
            faults,
            adversary,
            violations: report.violations.clone(),
        })
    }
}

/// Runs every protocol through every scenario for every seed, returning the
/// failing cells (empty means full conformance). Deterministic: the same
/// inputs always produce the same failures.
pub fn stress(protocols: &[ProtocolKind], scenarios: &[Scenario], seeds: &[u64]) -> Vec<Failure> {
    let mut failures = Vec::new();
    for scenario in scenarios {
        for &protocol in protocols {
            for &seed in seeds {
                let report = scenario.run(protocol, seed);
                if let Some(failure) = check(
                    protocol,
                    scenario,
                    seed,
                    scenario.ops_per_node,
                    FaultSpec::none(),
                    &report,
                ) {
                    failures.push(failure);
                }
            }
        }
    }
    failures
}

/// The fault-campaign sweep: every protocol through every scenario for every
/// seed under `spec`, with per-protocol contract gating. Each protocol is
/// injected with `spec.gated_for(protocol)` — only the fault classes it
/// contracts to survive — and every class the spec requested but the
/// protocol declines is reported as a [`CapabilityGap`] (once per
/// protocol × class), not a failure. A [`Failure`] here therefore always
/// means a protocol broke *inside* its declared contract. Deterministic in
/// all inputs.
pub fn stress_faulted(
    protocols: &[ProtocolKind],
    scenarios: &[Scenario],
    seeds: &[u64],
    spec: FaultSpec,
) -> (Vec<Failure>, Vec<CapabilityGap>) {
    let mut failures = Vec::new();
    let mut gaps = Vec::new();
    for &protocol in protocols {
        let (gated, declined) = spec.gated_for(protocol);
        for class in declined {
            let gap = CapabilityGap { protocol, class };
            if !gaps.contains(&gap) {
                gaps.push(gap);
            }
        }
        for scenario in scenarios {
            for &seed in seeds {
                let report = scenario.run_faulted(protocol, seed, scenario.ops_per_node, gated);
                if let Some(failure) = check(
                    protocol,
                    scenario,
                    seed,
                    scenario.ops_per_node,
                    gated,
                    &report,
                ) {
                    failures.push(failure);
                }
            }
        }
    }
    (failures, gaps)
}

/// Returns `spec` with one fault class disabled — the shrinker's class
/// removal step.
fn without_class(spec: FaultSpec, class: FaultKind) -> FaultSpec {
    let mut s = spec;
    match class {
        FaultKind::Drop => s.drop_ppm = 0,
        FaultKind::Duplicate => s.dup_ppm = 0,
        FaultKind::Delay => {
            s.delay_ppm = 0;
            s.delay_max_ns = 0;
        }
        FaultKind::Reorder => s.reorder_depth = 0,
        FaultKind::LinkDown => s.outages = [None; tc_types::fault::MAX_OUTAGES],
    }
    s
}

/// Returns `spec` with every intensity knob halved (probabilities, jitter
/// bound, reorder depth) — the shrinker's magnitude descent step. Fixed
/// point: the all-zero spec maps to itself.
fn halved(spec: FaultSpec) -> FaultSpec {
    let mut s = spec;
    s.drop_ppm /= 2;
    s.dup_ppm /= 2;
    s.delay_ppm /= 2;
    s.reorder_depth /= 2;
    s
}

/// Returns `spec` with one adversary knob zeroed — the shrinker's
/// perturbation-class removal step over the adversarial dimensions.
fn without_adversary_knob(spec: AdversarySpec, knob: usize) -> AdversarySpec {
    let mut s = spec;
    match knob {
        0 => s.reorder_window = 0,
        1 => s.target_delay_ns = 0,
        2 => s.storm_window_ns = 0,
        _ => s.sabotage = 0,
    }
    s
}

/// Returns `spec` with every adversary intensity knob halved. Fixed point:
/// the all-zero spec maps to itself. The victim pair and seed are replay
/// coordinates, not intensities, and stay put.
fn halved_adversary(spec: AdversarySpec) -> AdversarySpec {
    let mut s = spec;
    s.reorder_window /= 2;
    s.target_delay_ns /= 2;
    s.storm_window_ns /= 2;
    s
}

/// Shrinks a failure to the smallest `(ops, faults, adversary)` triple that
/// still reproduces it. Operation count first (repeated halving, then a
/// binary search of the boundary), then the fault schedule: greedily drop
/// whole fault classes the failure does not need, then halve the intensities
/// of the surviving classes while the failure persists. The adversarial
/// schedule shrinks the same way: each perturbation knob is zeroed if the
/// failure survives without it, then the surviving intensities are halved.
/// Because runs are deterministic in
/// `(protocol, scenario, seed, ops, faults, adversary)`, the result is a
/// minimal replayable reproduction, not a flaky sample.
pub fn shrink(failure: &Failure, scenario: &Scenario) -> Failure {
    debug_assert_eq!(failure.scenario, scenario.name);
    let reproduces = |ops: u64, faults: FaultSpec, adversary: AdversarySpec| -> Option<Failure> {
        let report =
            scenario.run_adversarial(failure.protocol, failure.seed, ops, faults, adversary);
        check_adversarial(
            failure.protocol,
            scenario,
            failure.seed,
            ops,
            faults,
            adversary,
            &report,
        )
    };

    let mut best = failure.clone();
    // Phase 1: exponential descent on the operation count.
    let mut ops = failure.ops_per_node;
    while ops > 1 {
        let half = ops / 2;
        match reproduces(half, best.faults, best.adversary) {
            Some(smaller) => {
                best = smaller;
                ops = half;
            }
            None => break,
        }
    }
    // Phase 2: binary search between the largest passing and the smallest
    // failing count found so far.
    let mut lo = best.ops_per_node / 2; // passes (or zero)
    let mut hi = best.ops_per_node; // fails
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        match reproduces(mid, best.faults, best.adversary) {
            Some(smaller) => {
                best = smaller;
                hi = mid;
            }
            None => lo = mid,
        }
    }
    // Phase 3: greedy fault-class removal — keep a class zeroed whenever the
    // failure reproduces without it.
    for class in FaultKind::ALL {
        if !best.faults.enables(class) {
            continue;
        }
        if let Some(smaller) = reproduces(
            best.ops_per_node,
            without_class(best.faults, class),
            best.adversary,
        ) {
            best = smaller;
        }
    }
    // Phase 4: greedy adversary-knob removal, same discipline.
    for knob in 0..4 {
        let thinner = without_adversary_knob(best.adversary, knob);
        if thinner == best.adversary {
            continue;
        }
        if let Some(smaller) = reproduces(best.ops_per_node, best.faults, thinner) {
            best = smaller;
        }
    }
    // Phase 5: halve the surviving intensities (fault and adversary alike)
    // while the failure persists.
    loop {
        let thinner = (halved(best.faults), halved_adversary(best.adversary));
        if thinner == (best.faults, best.adversary) {
            break;
        }
        match reproduces(best.ops_per_node, thinner.0, thinner.1) {
            Some(smaller) => best = smaller,
            None => break,
        }
    }
    best
}

/// Formats a batch of failures (each shrunk first) into one report string —
/// what the conformance test prints on failure.
pub fn failure_report(failures: &[Failure], scenarios: &[Scenario]) -> String {
    use fmt::Write;
    let mut out = String::new();
    writeln!(out, "{} conformance failure(s):", failures.len()).unwrap();
    for failure in failures {
        let scenario = scenarios
            .iter()
            .find(|s| s.name == failure.scenario)
            .expect("failure references a known scenario");
        let minimal = shrink(failure, scenario);
        writeln!(out, "{minimal}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{BlockAddr, NodeId};

    fn scenario() -> Scenario {
        let mut s = Scenario::standard()
            .into_iter()
            .find(|s| s.name == "hot_block_contention")
            .unwrap();
        s.ops_per_node = 200;
        s
    }

    #[test]
    fn clean_runs_produce_no_failure() {
        let s = scenario();
        let report = s.run(ProtocolKind::TokenB, 42);
        assert!(check(
            ProtocolKind::TokenB,
            &s,
            42,
            s.ops_per_node,
            FaultSpec::none(),
            &report
        )
        .is_none());
    }

    #[test]
    fn stress_sweep_is_deterministic() {
        let s = vec![scenario()];
        let a = stress(&[ProtocolKind::TokenB], &s, &[1, 2]);
        let b = stress(&[ProtocolKind::TokenB], &s, &[1, 2]);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn failure_display_contains_replay_recipe() {
        let failure = Failure {
            protocol: ProtocolKind::Snooping,
            scenario: "oltp_calibration".to_string(),
            seed: 7,
            ops_per_node: 300,
            faults: FaultSpec::none(),
            adversary: AdversarySpec::none(),
            violations: vec![InvariantViolation::Deadlock {
                node: NodeId::new(5),
                addr: BlockAddr::new(46),
                issued_at: 100,
                at: 900,
            }],
        };
        let text = failure.to_string();
        assert!(text.contains("replay:"));
        assert!(text.contains("run_with_ops"));
        assert!(text.contains("oltp_calibration"));
        assert!(text.contains("Snooping"));
        assert!(text.contains("seed 7"));
        assert!(text.contains("deadlock"));
    }

    #[test]
    fn faulted_failure_display_embeds_a_parseable_fault_recipe() {
        let faults = FaultSpec::none().with_drop(0.01).with_reorder(4);
        let failure = Failure {
            protocol: ProtocolKind::TokenB,
            scenario: "hot_block_contention".to_string(),
            seed: 9,
            ops_per_node: 100,
            faults,
            adversary: AdversarySpec::none(),
            violations: vec![InvariantViolation::Deadlock {
                node: NodeId::new(1),
                addr: BlockAddr::new(2),
                issued_at: 10,
                at: 90,
            }],
        };
        let text = failure.to_string();
        assert!(text.contains("run_faulted"));
        // The recipe round-trips: the printed spec parses back to itself.
        let printed = text
            .split("FaultSpec::parse(\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("replay recipe embeds the spec");
        assert_eq!(FaultSpec::parse(printed).unwrap(), faults);
    }

    #[test]
    fn gated_sweep_reports_capability_gaps_not_false_failures() {
        // Snooping contracts to survive no fault class at all, so a spec
        // requesting drops and delays must produce only gaps for it: the
        // gated run is a reliable-fabric run, which passes.
        let s = vec![scenario()];
        let spec = FaultSpec::none().with_drop(0.01).with_delay(0.02, 100);
        let (failures, gaps) = stress_faulted(&[ProtocolKind::Snooping], &s, &[1, 2], spec);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(
            gaps,
            vec![
                CapabilityGap {
                    protocol: ProtocolKind::Snooping,
                    class: FaultKind::Drop
                },
                CapabilityGap {
                    protocol: ProtocolKind::Snooping,
                    class: FaultKind::Delay
                },
            ]
        );
        assert!(gaps[0].to_string().contains("drop"));
    }

    #[test]
    fn shrink_minimizes_the_fault_schedule_alongside_the_op_count() {
        // Drive snooping *outside* its contract on purpose (run_faulted
        // injects the spec as given): delay jitter breaks its total-order
        // assumption. The drop class rides along but never fires for
        // snooping (loss is gated to TokenB transient requests), so the
        // shrinker must discard it and keep delay.
        let s = scenario();
        let spec = FaultSpec::none().with_drop(0.01).with_delay(0.05, 200);
        let (failure, seed) = [1u64, 2, 3, 7]
            .iter()
            .find_map(|&seed| {
                let report = s.run_faulted(ProtocolKind::Snooping, seed, s.ops_per_node, spec);
                check(
                    ProtocolKind::Snooping,
                    &s,
                    seed,
                    s.ops_per_node,
                    spec,
                    &report,
                )
                .map(|f| (f, seed))
            })
            .expect("snooping under delay jitter must violate on some probe seed");
        let minimal = shrink(&failure, &s);
        assert!(minimal.ops_per_node <= failure.ops_per_node);
        assert_eq!(minimal.faults.drop_ppm, 0, "needless class not discarded");
        assert!(
            minimal.faults.enables(FaultKind::Delay),
            "the class that causes the failure must survive shrinking"
        );
        assert!(!minimal.violations.is_empty());
        // And the shrunk recipe still reproduces bit-for-bit.
        let replay = s.run_faulted(
            ProtocolKind::Snooping,
            seed,
            minimal.ops_per_node,
            minimal.faults,
        );
        assert_eq!(replay.violations, minimal.violations);
    }
}
