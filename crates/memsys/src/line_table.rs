//! A compact, cache-friendly per-block-address store: the shared line-state
//! plane under every protocol's sparse per-line structures.
//!
//! Every coherence protocol in this workspace keeps several *sparse* maps
//! keyed by block address — MSHRs, writeback buffers, writeback-handshake
//! windows, home-memory state, persistent-request entries. These used to be
//! independent `BTreeMap`s / `HashMap`s scattered across the protocol crates,
//! and the `EngineStats` high-water marks showed exactly that working set
//! dominating the simulator's memory traffic. [`LineTable`] replaces them all
//! with one open-addressed layout:
//!
//! * **Bare-`u64` keys, no hasher state.** Keys are block addresses; the slot
//!   is the high bits of a single Fibonacci multiply, so a probe is one
//!   multiply plus a linear scan of a contiguous `u64` key array — no SipHash,
//!   no per-entry nodes, no pointer chasing.
//! * **Backward-shift deletion, no tombstones.** Removals compact the probe
//!   chain in place, so long-lived tables (a 64-node sweep churns millions of
//!   MSHR allocate/release cycles) never degrade.
//! * **Occupancy high-water tracking built in.** Every table remembers its
//!   peak entry count, and [`LineTable::allocated_bytes`] prices the backing
//!   arrays, so `EngineStats` can report per-structure peaks and an estimated
//!   state-bytes figure without any extra bookkeeping at the call sites.
//!
//! # Determinism contract
//!
//! The table is fully deterministic: layout depends only on the sequence of
//! inserts and removes (no per-process hash seed), so two identical runs
//! produce identical iteration orders. Iteration order is *unspecified*
//! (probe order, not address order) — callers that need address order sort
//! the handful of audit-time uses explicitly. Nothing on the simulation hot
//! path iterates a `LineTable`.

use std::fmt;

use tc_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use tc_types::BlockAddr;

/// Key marking an empty slot. A real block with this address would need the
/// simulated physical address space to reach `2^64` blocks; insertion
/// debug-asserts against it (the same sentinel convention as the L2 tag
/// array's `EMPTY_TAG`).
const EMPTY_KEY: u64 = u64::MAX;

/// Fibonacci-hashing multiplier (2^64 / phi). The slot index is the *high*
/// bits of `key * PHI`, which mix every key bit; block addresses differ in
/// high region/stride bits as often as in low offset bits, so low-bits
/// masking would cluster whole regions onto one probe chain.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Initial capacity of the first allocation (tables start unallocated).
const INITIAL_CAPACITY: usize = 16;

/// A compact open-addressed map from [`BlockAddr`] to protocol-defined
/// per-line state, with built-in occupancy high-water tracking.
///
/// See the module docs for layout and the determinism contract.
#[derive(Debug, Clone)]
pub struct LineTable<V> {
    /// Slot keys; `EMPTY_KEY` marks a vacant slot. Always a power-of-two
    /// length (or empty before the first insert).
    keys: Vec<u64>,
    /// Slot values, parallel to `keys`; `None` on vacant slots.
    values: Vec<Option<V>>,
    len: usize,
    high_water: usize,
}

impl<V> Default for LineTable<V> {
    fn default() -> Self {
        LineTable::new()
    }
}

impl<V> LineTable<V> {
    /// Creates an empty table. No memory is allocated until the first
    /// insert, so per-node structures that a run never touches cost nothing.
    pub fn new() -> Self {
        LineTable {
            keys: Vec::new(),
            values: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak number of entries the table has ever held — the per-structure
    /// high-water mark `EngineStats` aggregates.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Bytes currently allocated by the backing arrays. Capacity never
    /// shrinks, so at the end of a run this *is* the peak footprint.
    pub fn allocated_bytes(&self) -> u64 {
        (self.keys.len() * std::mem::size_of::<u64>()
            + self.values.len() * std::mem::size_of::<Option<V>>()) as u64
    }

    /// Slot capacity (power of two; zero before the first insert).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// What this table's *peak* entry population would have cost on the
    /// retired `std::collections::BTreeMap` plane, for the before/after
    /// state-bytes comparison in `BENCH_engine.json`. Estimate: B=6 B-tree
    /// leaves hold up to 11 `(key, value)` pairs at ~8/11 typical fill
    /// (×11/8 slack) plus ~24 amortized bytes per entry of node headers,
    /// parent edges, and internal nodes.
    pub fn retired_container_bytes_estimate(&self) -> u64 {
        let entry_bytes = (std::mem::size_of::<u64>() + std::mem::size_of::<V>()) as u64;
        self.high_water as u64 * (entry_bytes * 11 / 8 + 24)
    }

    #[inline]
    fn mask(&self) -> usize {
        debug_assert!(self.keys.len().is_power_of_two());
        self.keys.len() - 1
    }

    /// Home slot of `key` for the current capacity.
    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        // High bits of the product, shifted down to the table's index width.
        let shift = 64 - self.keys.len().trailing_zeros();
        (key.wrapping_mul(PHI) >> shift) as usize
    }

    /// Finds the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Grows (or allocates) the backing arrays and reinserts every entry.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(INITIAL_CAPACITY);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_values = std::mem::replace(&mut self.values, (0..new_cap).map(|_| None).collect());
        let mask = self.mask();
        for (key, value) in old_keys.into_iter().zip(old_values) {
            if key == EMPTY_KEY {
                continue;
            }
            let mut i = self.home_slot(key);
            while self.keys[i] != EMPTY_KEY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.values[i] = value;
        }
    }

    /// Ensures one more entry fits under the 3/4 load-factor ceiling.
    #[inline]
    fn ensure_room(&mut self) {
        if self.keys.is_empty() || (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
    }

    #[inline]
    fn note_insert(&mut self) {
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Places a *new* key, growing first if the load ceiling requires it.
    /// The caller has already established the key is absent, so growth only
    /// ever happens when an entry is genuinely added — replacing a present
    /// key at the ceiling must not double the arrays.
    fn place_new(&mut self, key: u64, value: V) {
        self.ensure_room();
        let mask = self.mask();
        let mut i = self.home_slot(key);
        while self.keys[i] != EMPTY_KEY {
            debug_assert!(self.keys[i] != key, "place_new on a present key");
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.values[i] = Some(value);
        self.note_insert();
    }

    /// Inserts (or replaces) the entry for `addr`, returning the previous
    /// value if one was present.
    pub fn insert(&mut self, addr: BlockAddr, value: V) -> Option<V> {
        let key = addr.value();
        debug_assert!(key != EMPTY_KEY, "address collides with the empty-slot key");
        if let Some(i) = self.find(key) {
            return self.values[i].replace(value);
        }
        self.place_new(key, value);
        None
    }

    /// Looks up the entry for `addr`.
    pub fn get(&self, addr: BlockAddr) -> Option<&V> {
        self.find(addr.value())
            .map(|i| self.values[i].as_ref().expect("occupied slot has a value"))
    }

    /// Looks up the entry for `addr` mutably.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut V> {
        let i = self.find(addr.value())?;
        Some(self.values[i].as_mut().expect("occupied slot has a value"))
    }

    /// Returns `true` if `addr` has an entry.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.find(addr.value()).is_some()
    }

    /// Returns the entry for `addr`, inserting `make()` first if absent.
    pub fn or_insert_with(&mut self, addr: BlockAddr, make: impl FnOnce() -> V) -> &mut V {
        let key = addr.value();
        debug_assert!(key != EMPTY_KEY, "address collides with the empty-slot key");
        let i = match self.find(key) {
            Some(i) => i,
            None => {
                self.place_new(key, make());
                self.find(key).expect("entry just placed")
            }
        };
        self.values[i].as_mut().expect("occupied slot has a value")
    }

    /// Returns the entry for `addr`, inserting the default first if absent.
    pub fn or_default(&mut self, addr: BlockAddr) -> &mut V
    where
        V: Default,
    {
        self.or_insert_with(addr, V::default)
    }

    /// Removes and returns the entry for `addr`. Uses backward-shift
    /// compaction, so the table never accumulates tombstones.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<V> {
        let mut i = self.find(addr.value())?;
        let out = self.values[i].take();
        self.keys[i] = EMPTY_KEY;
        self.len -= 1;
        // Backward-shift: walk the probe chain after the hole; any entry
        // whose home slot does not lie strictly inside (hole, entry] moves
        // back into the hole (it could only have landed past the hole by
        // probing through it).
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY_KEY {
                break;
            }
            let home = self.home_slot(k);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = k;
                self.values[i] = self.values[j].take();
                self.keys[j] = EMPTY_KEY;
                i = j;
            }
        }
        out
    }

    /// Iterates over every entry. Order is deterministic for a given
    /// insert/remove history but otherwise unspecified (see module docs).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &V)> {
        self.keys
            .iter()
            .zip(&self.values)
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, v)| {
                (
                    BlockAddr::new(k),
                    v.as_ref().expect("occupied slot has a value"),
                )
            })
    }

    /// Every stored block address, sorted — for audit paths that must report
    /// in a human-stable order.
    pub fn blocks_sorted(&self) -> Vec<BlockAddr> {
        let mut blocks: Vec<BlockAddr> = self.iter().map(|(a, _)| a).collect();
        blocks.sort_unstable();
        blocks
    }

    /// Serializes the table's *exact* slot layout: capacity plus every
    /// occupied slot as `(slot index, key, value)`. Backward-shift deletion
    /// means the layout is a function of the whole insert/remove history —
    /// it cannot be reproduced by re-inserting the surviving entries — and
    /// iteration order (which some audit paths consume) depends on it, so
    /// snapshots must round-trip positions, not just contents.
    pub fn save_state(&self, w: &mut SnapWriter, mut emit: impl FnMut(&mut SnapWriter, &V)) {
        w.usize(self.capacity());
        w.usize(self.high_water);
        let occupied = self
            .keys
            .iter()
            .zip(&self.values)
            .enumerate()
            .filter(|(_, (&k, _))| k != EMPTY_KEY);
        w.usize(self.len);
        for (slot, (&key, value)) in occupied {
            w.usize(slot);
            w.u64(key);
            emit(w, value.as_ref().expect("occupied slot has a value"));
        }
    }

    /// Rebuilds a table from [`LineTable::save_state`] bytes.
    pub fn load_state(
        r: &mut SnapReader<'_>,
        mut read: impl FnMut(&mut SnapReader<'_>) -> Result<V, SnapshotError>,
    ) -> Result<LineTable<V>, SnapshotError> {
        let capacity = r.usize()?;
        if capacity != 0 && !capacity.is_power_of_two() {
            return Err(SnapshotError::Corrupt(format!(
                "line table capacity {capacity}"
            )));
        }
        let high_water = r.usize()?;
        let len = r.usize()?;
        if len > capacity || high_water < len {
            return Err(SnapshotError::Corrupt("line table accounting".into()));
        }
        let mut keys = vec![EMPTY_KEY; capacity];
        let mut values: Vec<Option<V>> = (0..capacity).map(|_| None).collect();
        for _ in 0..len {
            let slot = r.usize()?;
            let key = r.u64()?;
            if slot >= capacity || keys[slot] != EMPTY_KEY || key == EMPTY_KEY {
                return Err(SnapshotError::Corrupt("line table slot".into()));
            }
            keys[slot] = key;
            values[slot] = Some(read(r)?);
        }
        Ok(LineTable {
            keys,
            values,
            len,
            high_water,
        })
    }
}

impl<V> fmt::Display for LineTable<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} line-state entries (peak {})",
            self.len,
            self.capacity(),
            self.high_water
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LineTable<u64> {
        LineTable::new()
    }

    #[test]
    fn empty_table_allocates_nothing() {
        let t = table();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 0);
        assert_eq!(t.allocated_bytes(), 0);
        assert_eq!(t.high_water(), 0);
        assert!(t.get(BlockAddr::new(7)).is_none());
        assert!(!t.contains(BlockAddr::new(7)));
    }

    #[test]
    fn insert_get_remove_round_trips() {
        let mut t = table();
        assert!(t.insert(BlockAddr::new(7), 70).is_none());
        assert_eq!(t.get(BlockAddr::new(7)), Some(&70));
        assert_eq!(t.insert(BlockAddr::new(7), 71), Some(70));
        assert_eq!(t.len(), 1);
        *t.get_mut(BlockAddr::new(7)).unwrap() += 1;
        assert_eq!(t.remove(BlockAddr::new(7)), Some(72));
        assert!(t.remove(BlockAddr::new(7)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn or_insert_with_creates_once() {
        let mut t = table();
        *t.or_insert_with(BlockAddr::new(3), || 1) += 10;
        *t.or_insert_with(BlockAddr::new(3), || 99) += 10;
        assert_eq!(t.get(BlockAddr::new(3)), Some(&21));
        assert_eq!(t.or_default(BlockAddr::new(4)), &0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn high_water_tracks_the_peak_not_the_present() {
        let mut t = table();
        for i in 0..10 {
            t.insert(BlockAddr::new(i), i);
        }
        for i in 0..8 {
            t.remove(BlockAddr::new(i));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.high_water(), 10);
        assert!(t.allocated_bytes() > 0);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut t = table();
        for i in 0..1000u64 {
            t.insert(BlockAddr::new(i * 97 + 5), i);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.capacity().is_power_of_two());
        // 3/4 load factor ceiling holds after growth.
        assert!(t.len() * 4 <= t.capacity() * 3);
        for i in 0..1000u64 {
            assert_eq!(t.get(BlockAddr::new(i * 97 + 5)), Some(&i));
        }
    }

    #[test]
    fn iteration_visits_each_entry_exactly_once() {
        let mut t = table();
        for i in 0..50u64 {
            t.insert(BlockAddr::new(i), i * 2);
        }
        let mut seen: Vec<(u64, u64)> = t.iter().map(|(a, v)| (a.value(), *v)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 50);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, i as u64 * 2);
        }
        assert_eq!(t.blocks_sorted().len(), 50);
        assert!(t.blocks_sorted().windows(2).all(|w| w[0] < w[1]));
    }

    /// Differential test against `std::collections::HashMap` over a seeded
    /// insert/remove/lookup churn, exercising backward-shift deletion on
    /// colliding probe chains (hand-rolled LCG; no external crates).
    #[test]
    fn differential_churn_against_std_hashmap() {
        use std::collections::HashMap;
        let mut lcg: u64 = 0x5EED_CAFE;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut ours = table();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..20_000u64 {
            // A small key universe forces heavy chain reuse after removals.
            let key = next() % 97;
            match next() % 3 {
                0 => {
                    assert_eq!(
                        ours.insert(BlockAddr::new(key), step),
                        reference.insert(key, step),
                        "insert {key} at step {step}"
                    );
                }
                1 => {
                    assert_eq!(
                        ours.remove(BlockAddr::new(key)),
                        reference.remove(&key),
                        "remove {key} at step {step}"
                    );
                }
                _ => {
                    assert_eq!(
                        ours.get(BlockAddr::new(key)),
                        reference.get(&key),
                        "get {key} at step {step}"
                    );
                }
            }
            assert_eq!(ours.len(), reference.len());
        }
        // Final full-content check.
        let mut seen: Vec<(u64, u64)> = ours.iter().map(|(a, v)| (a.value(), *v)).collect();
        seen.sort_unstable();
        let mut expected: Vec<(u64, u64)> = reference.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn replacing_a_present_key_at_the_load_ceiling_does_not_grow() {
        let mut t = table();
        // Fill to exactly the 3/4 ceiling of the initial 16 slots.
        for i in 0..12u64 {
            t.insert(BlockAddr::new(i), i);
        }
        let capacity = t.capacity();
        assert_eq!(t.len() * 4, capacity * 3, "test wants the exact ceiling");
        // Re-inserting and or_insert_with on present keys must not grow.
        assert_eq!(t.insert(BlockAddr::new(5), 50), Some(5));
        *t.or_insert_with(BlockAddr::new(5), || unreachable!()) += 1;
        assert_eq!(t.capacity(), capacity);
        assert_eq!(t.get(BlockAddr::new(5)), Some(&51));
        // A genuinely new key at the ceiling does grow.
        t.insert(BlockAddr::new(99), 99);
        assert!(t.capacity() > capacity);
    }

    #[test]
    fn layout_is_deterministic_for_identical_histories() {
        let build = || {
            let mut t = table();
            for i in 0..200u64 {
                t.insert(BlockAddr::new(i * 13), i);
            }
            for i in 0..100u64 {
                t.remove(BlockAddr::new(i * 26));
            }
            t.iter().map(|(a, v)| (a.value(), *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
