//! Memory-system building blocks.
//!
//! Coherence protocols in this workspace are built from five reusable pieces:
//!
//! * [`LineTable`] — the compact, open-addressed per-block-address store
//!   every sparse per-line structure (MSHRs, writeback buffers, home state,
//!   persistent-request entries) sits on, with occupancy high-water tracking
//!   built in for the engine's state accounting.
//! * [`SetAssocCache`] — a set-associative, LRU-replacement tag array with a
//!   protocol-defined per-line state type. The unified L2 of every node is
//!   one of these; it is the coherence point of the node.
//! * [`L1Filter`] — a small presence cache used to decide whether a hit
//!   costs L1 latency or L1+L2 latency. Coherence state is kept only at the
//!   (inclusive) L2, which matches how the paper's protocols are described
//!   and keeps the four protocol implementations focused on coherence. Each
//!   entry carries an L2 slot hint so the shared [`hinted_get`] front path
//!   skips the L2 tag probe on hits.
//! * [`MshrTable`] — bookkeeping for outstanding misses (miss status holding
//!   registers), with a configurable capacity.
//! * [`OpSlab`] — a pooled store for the small FIFO lists MSHR entries keep
//!   (pending processor ops merged into a miss), recycling nodes through an
//!   intrusive free list so churny miss traffic allocates nothing in the
//!   steady state.
//! * [`HomeMemory`] — per-home-node storage: the DRAM copy of each block (a
//!   version number standing in for 64 bytes of data) plus protocol-specific
//!   home state (directory entries, memory token counts, owner bits).
//!
//! # Example
//!
//! ```
//! use tc_memsys::SetAssocCache;
//! use tc_types::{BlockAddr, CacheConfig};
//!
//! let config = CacheConfig { size_bytes: 4096, associativity: 2, latency_ns: 6 };
//! let mut cache: SetAssocCache<u32> = SetAssocCache::new(&config, 64);
//! assert!(cache.insert(BlockAddr::new(7), 99).is_none());
//! assert_eq!(cache.get(BlockAddr::new(7)).copied(), Some(99));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod line_table;
pub mod memory;
pub mod mshr;
pub mod op_slab;

pub use cache::{hinted_get, CacheLine, L1Filter, SetAssocCache};
pub use line_table::LineTable;
pub use memory::HomeMemory;
pub use mshr::MshrTable;
pub use op_slab::{OpIter, OpList, OpSlab};
