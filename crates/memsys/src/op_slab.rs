//! A slab-backed pool of small FIFO lists with an intrusive free list.
//!
//! MSHR entries carry a list of pending processor operations merged into
//! the outstanding miss. Backing each entry with its own `Vec` means one
//! heap allocation per miss and one free per completion — pure churn, since
//! the population is bounded by the MSHR capacity times the merge depth.
//! [`OpSlab`] stores every list's nodes in one growable slab; released
//! nodes are threaded onto an intrusive free list (the `next` link of a
//! free node points at the next free node), so steady-state miss traffic
//! recycles storage instead of reallocating it. The slab only grows when
//! the *simultaneous* population exceeds everything seen before.
//!
//! Handles ([`OpList`]) are deliberately not `Clone`: a list is owned by
//! exactly one MSHR entry, and aliasing a handle would let two entries
//! free the same chain.

/// Null link: end of a chain, or an empty list.
const NIL: u32 = u32::MAX;

/// One pooled node: a value plus the intrusive link (next node in the
/// owning list while live, next free node while on the free list).
#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    next: u32,
}

/// Handle to one FIFO list of `T`s inside an [`OpSlab`]. Created empty by
/// [`OpList::new`]; nodes are pushed and cleared through the slab.
#[derive(Debug)]
pub struct OpList {
    head: u32,
    tail: u32,
    len: u32,
}

impl OpList {
    /// An empty list.
    pub const fn new() -> Self {
        OpList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of values in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` when the list holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for OpList {
    fn default() -> Self {
        OpList::new()
    }
}

/// The pool. One per controller: every MSHR entry's pending-op list lives
/// here, and the allocation counters make "the steady state allocates
/// nothing" a testable claim (see [`OpSlab::counters`]).
#[derive(Debug, Clone)]
pub struct OpSlab<T> {
    nodes: Vec<Node<T>>,
    free_head: u32,
    live: usize,
    high_water: usize,
    /// Nodes created by growing the slab (a real heap event, amortized).
    fresh: u64,
    /// Pushes served from the free list (no allocation).
    recycled: u64,
}

impl<T> OpSlab<T> {
    /// An empty pool.
    pub fn new() -> Self {
        OpSlab {
            nodes: Vec::new(),
            free_head: NIL,
            live: 0,
            high_water: 0,
            fresh: 0,
            recycled: 0,
        }
    }

    /// Appends `value` to `list` (FIFO order), reusing a free node when one
    /// exists.
    pub fn push(&mut self, list: &mut OpList, value: T) {
        let index = if self.free_head != NIL {
            let index = self.free_head;
            self.free_head = self.nodes[index as usize].next;
            self.nodes[index as usize].value = value;
            self.nodes[index as usize].next = NIL;
            self.recycled += 1;
            index
        } else {
            let index = self.nodes.len() as u32;
            assert!(index != NIL, "op slab exhausted the 32-bit index space");
            self.nodes.push(Node { value, next: NIL });
            self.fresh += 1;
            index
        };
        if list.head == NIL {
            list.head = index;
        } else {
            self.nodes[list.tail as usize].next = index;
        }
        list.tail = index;
        list.len += 1;
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
    }

    /// A new single-value list.
    pub fn singleton(&mut self, value: T) -> OpList {
        let mut list = OpList::new();
        self.push(&mut list, value);
        list
    }

    /// Iterates `list` front to back. The iterator is exact-sized so it can
    /// feed length-prefixed snapshot encoders directly.
    pub fn iter<'a>(&'a self, list: &OpList) -> OpIter<'a, T> {
        OpIter {
            slab: self,
            cursor: list.head,
            remaining: list.len as usize,
        }
    }

    /// Unlinks every node of `list` onto the free list, leaving it empty.
    /// Values are dropped lazily (when their node is reused or the slab is
    /// dropped); the op types pooled here are small plain data.
    pub fn clear(&mut self, list: &mut OpList) {
        while list.head != NIL {
            let index = list.head;
            list.head = self.nodes[index as usize].next;
            self.nodes[index as usize].next = self.free_head;
            self.free_head = index;
            self.live -= 1;
        }
        list.tail = NIL;
        list.len = 0;
    }

    /// Forgets every list and node. For snapshot restore: handles minted
    /// before a `reset` are invalid, so callers must rebuild every list.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.free_head = NIL;
        self.live = 0;
    }

    /// Number of values across all live lists.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak simultaneous live values — the slab's real footprint.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// `(fresh, recycled)`: nodes created by growing the slab vs pushes
    /// served allocation-free from the free list. After warm-up, `fresh`
    /// stops moving and `recycled` carries all traffic.
    pub fn counters(&self) -> (u64, u64) {
        (self.fresh, self.recycled)
    }
}

impl<T> Default for OpSlab<T> {
    fn default() -> Self {
        OpSlab::new()
    }
}

/// Front-to-back iterator over one list. See [`OpSlab::iter`].
#[derive(Debug)]
pub struct OpIter<'a, T> {
    slab: &'a OpSlab<T>,
    cursor: u32,
    remaining: usize,
}

impl<'a, T> Iterator for OpIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.slab.nodes[self.cursor as usize];
        self.cursor = node.next;
        self.remaining -= 1;
        Some(&node.value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T> ExactSizeIterator for OpIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut slab: OpSlab<u32> = OpSlab::new();
        let mut list = OpList::new();
        for v in [3, 1, 4, 1, 5] {
            slab.push(&mut list, v);
        }
        let seen: Vec<u32> = slab.iter(&list).copied().collect();
        assert_eq!(seen, vec![3, 1, 4, 1, 5]);
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn cleared_nodes_are_recycled_not_reallocated() {
        let mut slab: OpSlab<u32> = OpSlab::new();
        // Warm-up: the deepest simultaneous population this test reaches.
        let mut a = slab.singleton(1);
        let mut b = slab.singleton(2);
        slab.push(&mut a, 3);
        let (fresh_after_warmup, _) = slab.counters();
        assert_eq!(fresh_after_warmup, 3);

        // Steady state: churn far more lists than the warm-up population.
        for round in 0..1000 {
            slab.clear(&mut a);
            slab.clear(&mut b);
            a = slab.singleton(round);
            b = slab.singleton(round + 1);
            slab.push(&mut a, round + 2);
        }
        let (fresh, recycled) = slab.counters();
        assert_eq!(
            fresh, fresh_after_warmup,
            "steady-state churn must not grow the slab"
        );
        assert_eq!(recycled, 3000);
        assert_eq!(slab.high_water(), 3);
    }

    #[test]
    fn interleaved_lists_stay_disjoint() {
        let mut slab: OpSlab<u32> = OpSlab::new();
        let mut a = OpList::new();
        let mut b = OpList::new();
        for i in 0..10 {
            slab.push(&mut a, i);
            slab.push(&mut b, 100 + i);
        }
        assert_eq!(slab.iter(&a).copied().sum::<u32>(), 45);
        assert_eq!(slab.iter(&b).copied().sum::<u32>(), 1045);
        slab.clear(&mut a);
        assert!(a.is_empty());
        assert_eq!(slab.iter(&b).copied().count(), 10);
        assert_eq!(slab.live(), 10);
    }

    #[test]
    fn reset_empties_everything() {
        let mut slab: OpSlab<u32> = OpSlab::new();
        let mut a = slab.singleton(7);
        slab.clear(&mut a);
        slab.push(&mut a, 8);
        slab.reset();
        assert_eq!(slab.live(), 0);
        let rebuilt = slab.singleton(9);
        assert_eq!(slab.iter(&rebuilt).copied().collect::<Vec<_>>(), vec![9]);
    }
}
