//! Miss status holding registers (MSHRs): bookkeeping for outstanding misses.

use tc_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use tc_types::BlockAddr;

use crate::line_table::LineTable;

/// A table of outstanding misses, at most one entry per block, with a
/// configurable capacity.
///
/// The entry type `E` is protocol-defined (requester lists, token
/// accumulation state, retry counters, ...). Entries live in a compact
/// [`LineTable`], so the allocate/lookup/release cycle on the miss path is a
/// bare-`u64` probe instead of a `BTreeMap` descent, and the table reports
/// its own occupancy high-water mark for the engine's state accounting.
/// Iteration order is deterministic for a given history but unspecified;
/// audit paths that need address order sort explicitly.
#[derive(Debug, Clone)]
pub struct MshrTable<E> {
    capacity: usize,
    entries: LineTable<E>,
    allocations: u64,
    capacity_stalls: u64,
}

impl<E> MshrTable<E> {
    /// Creates a table with room for `capacity` simultaneous misses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR table needs at least one entry");
        MshrTable {
            capacity,
            entries: LineTable::new(),
            allocations: 0,
            capacity_stalls: 0,
        }
    }

    /// Maximum number of simultaneous outstanding misses.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of misses currently outstanding.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if a new (distinct-block) miss can be allocated.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry for `addr`. Returns `Err(entry)` (handing the entry
    /// back) if the table is full or the block already has an entry.
    pub fn allocate(&mut self, addr: BlockAddr, entry: E) -> Result<&mut E, E> {
        if self.entries.contains(addr) {
            return Err(entry);
        }
        if !self.has_room() {
            self.capacity_stalls += 1;
            return Err(entry);
        }
        self.allocations += 1;
        Ok(self.entries.or_insert_with(addr, || entry))
    }

    /// Looks up the entry for `addr`.
    pub fn get(&self, addr: BlockAddr) -> Option<&E> {
        self.entries.get(addr)
    }

    /// Looks up the entry for `addr` mutably.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut E> {
        self.entries.get_mut(addr)
    }

    /// Returns `true` if `addr` has an outstanding miss.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.entries.contains(addr)
    }

    /// Deallocates and returns the entry for `addr`.
    pub fn release(&mut self, addr: BlockAddr) -> Option<E> {
        self.entries.remove(addr)
    }

    /// Iterates over outstanding entries (deterministic, unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &E)> {
        self.entries.iter()
    }

    /// The blocks of every outstanding miss, sorted by address — the stable
    /// order deadlock/starvation reports rely on.
    pub fn blocks_sorted(&self) -> Vec<BlockAddr> {
        self.entries.blocks_sorted()
    }

    /// Peak number of simultaneously outstanding misses over the table's
    /// lifetime.
    pub fn high_water(&self) -> usize {
        self.entries.high_water()
    }

    /// Bytes allocated by the backing line table (monotone, so this is the
    /// peak footprint at end of run).
    pub fn state_bytes(&self) -> u64 {
        self.entries.allocated_bytes()
    }

    /// The retired-`BTreeMap` cost estimate for the same peak population
    /// (see [`LineTable::retired_container_bytes_estimate`]).
    pub fn retired_bytes_estimate(&self) -> u64 {
        self.entries.retired_container_bytes_estimate()
    }

    /// (total allocations, allocations rejected for capacity) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.allocations, self.capacity_stalls)
    }

    /// Serializes the entry table and counters (capacity is config-derived).
    pub fn save_state(&self, w: &mut SnapWriter, emit: impl FnMut(&mut SnapWriter, &E)) {
        w.u64(self.allocations);
        w.u64(self.capacity_stalls);
        self.entries.save_state(w, emit);
    }

    /// Restores [`MshrTable::save_state`] bytes onto a same-capacity table.
    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        read: impl FnMut(&mut SnapReader<'_>) -> Result<E, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        self.allocations = r.u64()?;
        self.capacity_stalls = r.u64()?;
        self.entries = LineTable::load_state(r, read)?;
        if self.entries.len() > self.capacity {
            return Err(SnapshotError::Corrupt("MSHR population".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_get_release_cycle() {
        let mut t: MshrTable<&str> = MshrTable::new(2);
        assert!(t.allocate(BlockAddr::new(1), "a").is_ok());
        assert_eq!(t.get(BlockAddr::new(1)), Some(&"a"));
        assert!(t.contains(BlockAddr::new(1)));
        assert_eq!(t.release(BlockAddr::new(1)), Some("a"));
        assert!(t.is_empty());
        assert_eq!(t.release(BlockAddr::new(1)), None);
    }

    #[test]
    fn duplicate_allocation_is_rejected() {
        let mut t: MshrTable<u32> = MshrTable::new(2);
        t.allocate(BlockAddr::new(1), 1).unwrap();
        assert_eq!(t.allocate(BlockAddr::new(1), 2), Err(2));
        assert_eq!(t.get(BlockAddr::new(1)), Some(&1));
    }

    #[test]
    fn capacity_is_enforced_and_counted() {
        let mut t: MshrTable<u32> = MshrTable::new(1);
        t.allocate(BlockAddr::new(1), 1).unwrap();
        assert!(!t.has_room());
        assert_eq!(t.allocate(BlockAddr::new(2), 2), Err(2));
        let (allocs, stalls) = t.counters();
        assert_eq!(allocs, 1);
        assert_eq!(stalls, 1);
    }

    #[test]
    fn entries_can_be_mutated_in_place() {
        let mut t: MshrTable<Vec<u32>> = MshrTable::new(4);
        t.allocate(BlockAddr::new(9), vec![1]).unwrap();
        t.get_mut(BlockAddr::new(9)).unwrap().push(2);
        assert_eq!(t.get(BlockAddr::new(9)).unwrap(), &vec![1, 2]);
    }

    #[test]
    fn iteration_covers_every_entry_and_sorted_blocks_are_ordered() {
        let mut t: MshrTable<u32> = MshrTable::new(4);
        t.allocate(BlockAddr::new(30), 3).unwrap();
        t.allocate(BlockAddr::new(10), 1).unwrap();
        t.allocate(BlockAddr::new(20), 2).unwrap();
        let mut order: Vec<u64> = t.iter().map(|(a, _)| a.value()).collect();
        order.sort_unstable();
        assert_eq!(order, vec![10, 20, 30]);
        assert_eq!(
            t.blocks_sorted(),
            vec![BlockAddr::new(10), BlockAddr::new(20), BlockAddr::new(30)]
        );
    }

    #[test]
    fn high_water_survives_releases() {
        let mut t: MshrTable<u32> = MshrTable::new(8);
        for i in 0..5 {
            t.allocate(BlockAddr::new(i), 0).unwrap();
        }
        for i in 0..5 {
            t.release(BlockAddr::new(i));
        }
        assert_eq!(t.high_water(), 5);
        assert!(t.state_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _: MshrTable<u32> = MshrTable::new(0);
    }
}
