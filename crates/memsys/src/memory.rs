//! Home-memory state storage.

use tc_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{BlockAddr, HomeMap, NodeId};

use crate::line_table::LineTable;

/// Per-home-node memory state.
///
/// Each node is the *home* for an interleaved slice of physical memory. For
/// every block it homes, the node's memory keeps:
///
/// * the DRAM copy of the block's contents (a version number standing in for
///   the 64 data bytes), and
/// * protocol-specific home state `S` — the directory entry, the memory's
///   token count and owner-token bit, or the snooping "memory owner" bit.
///
/// State is stored sparsely in [`LineTable`]s: blocks that have never been
/// touched are in their protocol-defined default state (`S::default()`),
/// which for Token Coherence means "memory holds all `T` tokens including
/// the owner token", and for the other protocols means "memory is the owner,
/// no sharers". These tables are probed on every home-side access and
/// nothing depends on their iteration order (`touched_blocks` feeds an
/// order-insensitive audit set), which is exactly the contract the compact
/// open-addressed plane provides.
#[derive(Debug, Clone)]
pub struct HomeMemory<S> {
    node: NodeId,
    home_map: HomeMap,
    dram_latency_ns: u64,
    state: LineTable<S>,
    data: LineTable<u64>,
    accesses: u64,
}

impl<S: Default + Clone> HomeMemory<S> {
    /// Creates the home memory for `node`.
    pub fn new(node: NodeId, home_map: HomeMap, dram_latency_ns: u64) -> Self {
        HomeMemory {
            node,
            home_map,
            dram_latency_ns,
            state: LineTable::new(),
            data: LineTable::new(),
            accesses: 0,
        }
    }

    /// DRAM access latency in nanoseconds.
    pub fn dram_latency_ns(&self) -> u64 {
        self.dram_latency_ns
    }

    /// Returns `true` if this node is the home for `addr`.
    pub fn is_home(&self, addr: BlockAddr) -> bool {
        self.home_map.is_home(self.node, addr)
    }

    /// The protocol state for a homed block, creating the default entry on
    /// first touch.
    ///
    /// # Panics
    ///
    /// Panics if this node is not the home for `addr`; home state must only
    /// ever be consulted at the home node.
    pub fn state_mut(&mut self, addr: BlockAddr) -> &mut S {
        assert!(
            self.is_home(addr),
            "{} is not the home for {addr}",
            self.node
        );
        self.accesses += 1;
        self.state.or_default(addr)
    }

    /// Reads the protocol state for a homed block without creating an entry.
    pub fn state(&self, addr: BlockAddr) -> Option<&S> {
        self.state.get(addr)
    }

    /// The DRAM copy's data version for a block (zero if never written back).
    pub fn data_version(&self, addr: BlockAddr) -> u64 {
        self.data.get(addr).copied().unwrap_or(0)
    }

    /// Updates the DRAM copy's data version (a writeback).
    pub fn write_data(&mut self, addr: BlockAddr, version: u64) {
        self.data.insert(addr, version);
    }

    /// Number of home-state accesses performed (a proxy for directory
    /// lookups / memory controller occupancy).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Iterates over blocks with explicit (non-default) home state.
    /// Deterministic but unspecified order; callers collect into
    /// order-insensitive sets.
    pub fn touched_blocks(&self) -> impl Iterator<Item = (BlockAddr, &S)> {
        self.state.iter()
    }

    /// Peak number of blocks with materialized home state.
    pub fn entries_high_water(&self) -> u64 {
        self.state.high_water() as u64
    }

    /// Bytes allocated by the home-side line tables (protocol state plus the
    /// DRAM data versions).
    pub fn state_bytes(&self) -> u64 {
        self.state.allocated_bytes() + self.data.allocated_bytes()
    }

    /// The retired-container cost estimate for the same peak populations
    /// (the home maps were `FastHashMap`s; the B-tree formula is within the
    /// same ballpark and keeps one documented estimator).
    pub fn retired_bytes_estimate(&self) -> u64 {
        self.state.retired_container_bytes_estimate() + self.data.retired_container_bytes_estimate()
    }

    /// Serializes the mutable home-side state (protocol state table, DRAM
    /// data versions, access counter). Node, home map, and latency are
    /// config-derived and restored by construction.
    pub fn save_state(&self, w: &mut SnapWriter, emit: impl FnMut(&mut SnapWriter, &S)) {
        w.u64(self.accesses);
        self.state.save_state(w, emit);
        self.data.save_state(w, |w, &v| w.u64(v));
    }

    /// Restores [`HomeMemory::save_state`] bytes onto a same-config memory.
    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        read: impl FnMut(&mut SnapReader<'_>) -> Result<S, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        self.accesses = r.u64()?;
        self.state = LineTable::load_state(r, read)?;
        self.data = LineTable::load_state(r, |r| r.u64())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Default, PartialEq)]
    struct DirEntry {
        sharers: Vec<usize>,
    }

    fn memory_for(node: usize) -> HomeMemory<DirEntry> {
        HomeMemory::new(NodeId::new(node), HomeMap::new(4, 64), 80)
    }

    #[test]
    fn home_check_follows_interleaving() {
        let m = memory_for(1);
        assert!(m.is_home(BlockAddr::new(1)));
        assert!(m.is_home(BlockAddr::new(5)));
        assert!(!m.is_home(BlockAddr::new(2)));
    }

    #[test]
    fn state_is_created_on_demand_with_default() {
        let mut m = memory_for(1);
        assert!(m.state(BlockAddr::new(5)).is_none());
        m.state_mut(BlockAddr::new(5)).sharers.push(3);
        assert_eq!(m.state(BlockAddr::new(5)).unwrap().sharers, vec![3]);
        assert_eq!(m.accesses(), 1);
        assert_eq!(m.touched_blocks().count(), 1);
    }

    #[test]
    #[should_panic(expected = "not the home")]
    fn touching_a_foreign_block_panics() {
        let mut m = memory_for(1);
        m.state_mut(BlockAddr::new(2));
    }

    #[test]
    fn data_versions_default_to_zero_and_update() {
        let mut m = memory_for(0);
        assert_eq!(m.data_version(BlockAddr::new(4)), 0);
        m.write_data(BlockAddr::new(4), 17);
        assert_eq!(m.data_version(BlockAddr::new(4)), 17);
        assert_eq!(m.dram_latency_ns(), 80);
    }
}
