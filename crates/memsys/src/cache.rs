//! Set-associative caches with LRU replacement.

use std::fmt;

use tc_types::{BlockAddr, CacheConfig};

/// One cache line: the block it holds and the protocol-defined state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine<S> {
    /// Block held by this line.
    pub addr: BlockAddr,
    /// Protocol-defined coherence state (tokens, MOESI state, ...).
    pub state: S,
    last_use: u64,
}

/// A set-associative, LRU-replacement cache tag array.
///
/// The per-line state type `S` is chosen by the protocol: the Token Coherence
/// L2 stores token counts and a valid-data bit, the MOESI protocols store a
/// stable/transient state enum. The cache itself knows nothing about
/// coherence; it only finds, inserts, and evicts lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache<S> {
    num_sets: usize,
    ways: usize,
    sets: Vec<Vec<CacheLine<S>>>,
    use_counter: u64,
    lookups: u64,
    hits: u64,
    evictions: u64,
}

impl<S> SetAssocCache<S> {
    /// Builds a cache from a [`CacheConfig`] and the system block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(config: &CacheConfig, block_bytes: u64) -> Self {
        let num_sets = config.num_sets(block_bytes);
        SetAssocCache {
            num_sets,
            ways: config.associativity,
            sets: (0..num_sets).map(|_| Vec::new()).collect(),
            use_counter: 0,
            lookups: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// Builds a cache directly from a set count and associativity (useful for
    /// tests and for the L1 presence filter).
    pub fn with_geometry(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "degenerate cache geometry");
        SetAssocCache {
            num_sets,
            ways,
            sets: (0..num_sets).map(|_| Vec::new()).collect(),
            use_counter: 0,
            lookups: 0,
            hits: 0,
            evictions: 0,
        }
    }

    fn set_index(&self, addr: BlockAddr) -> usize {
        (addr.value() % self.num_sets as u64) as usize
    }

    /// Total number of lines the cache can hold.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Number of lines currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a block without affecting LRU state or statistics.
    pub fn peek(&self, addr: BlockAddr) -> Option<&S> {
        self.sets[self.set_index(addr)]
            .iter()
            .find(|l| l.addr == addr)
            .map(|l| &l.state)
    }

    /// Looks up a block, updating LRU order and hit statistics, and returns a
    /// mutable reference to its state.
    pub fn get(&mut self, addr: BlockAddr) -> Option<&mut S> {
        self.lookups += 1;
        self.use_counter += 1;
        let counter = self.use_counter;
        let set = self.set_index(addr);
        let line = self.sets[set].iter_mut().find(|l| l.addr == addr);
        if let Some(line) = line {
            line.last_use = counter;
            self.hits += 1;
            Some(&mut line.state)
        } else {
            None
        }
    }

    /// Returns `true` if the block is resident (without touching LRU state).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts (or replaces) a block, returning the victim line if one had to
    /// be evicted to make room.
    pub fn insert(&mut self, addr: BlockAddr, state: S) -> Option<CacheLine<S>> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let ways = self.ways;
        let set_index = self.set_index(addr);
        let set = &mut self.sets[set_index];
        if let Some(line) = set.iter_mut().find(|l| l.addr == addr) {
            line.state = state;
            line.last_use = counter;
            return None;
        }
        let victim = if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set has an LRU line");
            self.evictions += 1;
            Some(set.swap_remove(lru))
        } else {
            None
        };
        set.push(CacheLine {
            addr,
            state,
            last_use: counter,
        });
        victim
    }

    /// Removes a block, returning its state if it was resident.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<S> {
        let set_index = self.set_index(addr);
        let set = &mut self.sets[set_index];
        let pos = set.iter().position(|l| l.addr == addr)?;
        Some(set.swap_remove(pos).state)
    }

    /// Chooses the line that would be evicted if `addr` were inserted now,
    /// without inserting. Returns `None` if there is a free way.
    pub fn victim_for(&self, addr: BlockAddr) -> Option<&CacheLine<S>> {
        let set = &self.sets[self.set_index(addr)];
        if set.len() < self.ways || set.iter().any(|l| l.addr == addr) {
            None
        } else {
            set.iter().min_by_key(|l| l.last_use)
        }
    }

    /// Iterates over every resident line.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &S)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (&l.addr, &l.state)))
    }

    /// Every resident block address.
    pub fn blocks(&self) -> Vec<BlockAddr> {
        self.iter().map(|(a, _)| *a).collect()
    }

    /// (lookups, hits, evictions) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.lookups, self.hits, self.evictions)
    }
}

impl<S> fmt::Display for SetAssocCache<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}-way cache, {}/{} lines resident",
            self.num_sets,
            self.ways,
            self.len(),
            self.capacity()
        )
    }
}

/// A presence-only filter standing in for the split L1 instruction/data
/// caches.
///
/// Coherence permissions live in the (inclusive) L2; the L1 filter only
/// decides whether an access that the L2 can satisfy pays L1 latency or
/// L1 + L2 latency, and it is kept inclusive by removing blocks whenever the
/// L2 loses them.
#[derive(Debug, Clone)]
pub struct L1Filter {
    cache: SetAssocCache<()>,
    latency_ns: u64,
}

impl L1Filter {
    /// Builds the filter from the L1 configuration.
    pub fn new(config: &CacheConfig, block_bytes: u64) -> Self {
        L1Filter {
            cache: SetAssocCache::new(config, block_bytes),
            latency_ns: config.latency_ns,
        }
    }

    /// L1 access latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns
    }

    /// Records an access to `addr`: returns `true` if it was already present
    /// (an L1 hit) and ensures it is present afterwards.
    pub fn touch(&mut self, addr: BlockAddr) -> bool {
        let hit = self.cache.get(addr).is_some();
        if !hit {
            self.cache.insert(addr, ());
        }
        hit
    }

    /// Removes a block (called when the L2 loses the block, to preserve
    /// inclusion).
    pub fn invalidate(&mut self, addr: BlockAddr) {
        self.cache.remove(addr);
    }

    /// Returns `true` if the block is present.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.cache.contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        SetAssocCache::with_geometry(2, 2)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut c = small();
        assert!(c.insert(BlockAddr::new(0), 10).is_none());
        assert_eq!(c.get(BlockAddr::new(0)).copied(), Some(10));
        assert_eq!(c.peek(BlockAddr::new(0)).copied(), Some(10));
        assert!(c.contains(BlockAddr::new(0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 1);
        assert!(c.insert(BlockAddr::new(0), 2).is_none());
        assert_eq!(c.peek(BlockAddr::new(0)).copied(), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(BlockAddr::new(0), 0);
        c.insert(BlockAddr::new(2), 2);
        // Touch block 0 so block 2 becomes LRU.
        c.get(BlockAddr::new(0));
        let victim = c.insert(BlockAddr::new(4), 4).expect("eviction expected");
        assert_eq!(victim.addr, BlockAddr::new(2));
        assert!(c.contains(BlockAddr::new(0)));
        assert!(c.contains(BlockAddr::new(4)));
    }

    #[test]
    fn victim_for_predicts_the_eviction() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        assert!(c.victim_for(BlockAddr::new(2)).is_none(), "free way exists");
        c.insert(BlockAddr::new(2), 2);
        c.get(BlockAddr::new(2));
        let predicted = c.victim_for(BlockAddr::new(4)).unwrap().addr;
        let actual = c.insert(BlockAddr::new(4), 4).unwrap().addr;
        assert_eq!(predicted, actual);
        assert_eq!(predicted, BlockAddr::new(0));
    }

    #[test]
    fn victim_for_resident_block_is_none() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        c.insert(BlockAddr::new(2), 2);
        assert!(c.victim_for(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn remove_takes_the_line_out() {
        let mut c = small();
        c.insert(BlockAddr::new(3), 7);
        assert_eq!(c.remove(BlockAddr::new(3)), Some(7));
        assert_eq!(c.remove(BlockAddr::new(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        c.insert(BlockAddr::new(1), 1);
        c.insert(BlockAddr::new(2), 2);
        c.insert(BlockAddr::new(3), 3);
        assert_eq!(c.len(), 4);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn counters_track_hits_and_evictions() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        c.get(BlockAddr::new(0));
        c.get(BlockAddr::new(2));
        c.insert(BlockAddr::new(2), 2);
        c.insert(BlockAddr::new(4), 4);
        let (lookups, hits, evictions) = c.counters();
        assert_eq!(lookups, 2);
        assert_eq!(hits, 1);
        assert_eq!(evictions, 1);
    }

    #[test]
    fn geometry_from_config_matches_table1_l2() {
        let config = CacheConfig {
            size_bytes: 4 * 1024 * 1024,
            associativity: 4,
            latency_ns: 6,
        };
        let c: SetAssocCache<u8> = SetAssocCache::new(&config, 64);
        assert_eq!(c.capacity(), 65536);
    }

    #[test]
    fn iter_and_blocks_report_residents() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 1);
        c.insert(BlockAddr::new(1), 2);
        let mut blocks = c.blocks();
        blocks.sort();
        assert_eq!(blocks, vec![BlockAddr::new(0), BlockAddr::new(1)]);
        let sum: u32 = c.iter().map(|(_, s)| *s).sum();
        assert_eq!(sum, 3);
    }

    #[test]
    fn l1_filter_reports_hits_after_first_touch() {
        let config = CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            latency_ns: 2,
        };
        let mut l1 = L1Filter::new(&config, 64);
        assert_eq!(l1.latency_ns(), 2);
        assert!(!l1.touch(BlockAddr::new(5)));
        assert!(l1.touch(BlockAddr::new(5)));
        l1.invalidate(BlockAddr::new(5));
        assert!(!l1.contains(BlockAddr::new(5)));
        assert!(!l1.touch(BlockAddr::new(5)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_way_geometry_panics() {
        let _: SetAssocCache<u8> = SetAssocCache::with_geometry(4, 0);
    }
}
