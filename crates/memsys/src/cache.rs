//! Set-associative caches with LRU replacement.

use std::fmt;

use tc_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{BlockAddr, CacheConfig};

/// One cache line: the block it holds and the protocol-defined state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLine<S> {
    /// Block held by this line.
    pub addr: BlockAddr,
    /// Protocol-defined coherence state (tokens, MOESI state, ...).
    pub state: S,
    last_use: u64,
}

/// A set-associative, LRU-replacement cache tag array.
///
/// The per-line state type `S` is chosen by the protocol: the Token Coherence
/// L2 stores token counts and a valid-data bit, the MOESI protocols store a
/// stable/transient state enum. The cache itself knows nothing about
/// coherence; it only finds, inserts, and evicts lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache<S> {
    num_sets: usize,
    /// `num_sets - 1` when `num_sets` is a power of two (the common case:
    /// every configured geometry divides powers-of-two sizes), letting
    /// [`SetAssocCache::set_index`] mask instead of paying an integer
    /// division on every lookup of the hot access path. Zero disables it.
    set_mask: u64,
    ways: usize,
    /// Block tags, `ways` consecutive entries per set, struct-of-arrays
    /// against `states`/`last_use`: a set probe scans one contiguous run of
    /// bare `u64`s (a whole 4-way set fits in a single host cache line) and
    /// touches the bulkier state arrays only on a hit. [`EMPTY_TAG`] marks
    /// an invalid way. This matters because the simulated L2 tag arrays are
    /// far larger than the host's caches: the probe is a dependent-load
    /// chain and every avoided line is an avoided stall.
    tags: Vec<u64>,
    /// Per-slot protocol state; `None` on empty ways (parallel to `tags`).
    states: Vec<Option<S>>,
    /// Per-slot LRU stamp (parallel to `tags`; garbage on empty ways).
    last_use: Vec<u64>,
    len: usize,
    use_counter: u64,
    lookups: u64,
    hits: u64,
    evictions: u64,
}

/// Tag marking an empty way. A real block with this address would need the
/// simulated physical address space to reach `2^64` bytes times the block
/// size; [`SetAssocCache::insert`] debug-asserts against it.
const EMPTY_TAG: u64 = u64::MAX;

/// Outcome of [`SetAssocCache::probe_for_fill`].
#[derive(Debug, Clone, Copy)]
enum FillSlot {
    /// The block is already resident at this slot.
    Resident(usize),
    /// The block is absent; this free way takes it without eviction.
    Free(usize),
    /// The set is full; this LRU way is the victim.
    Evict(usize),
}

impl<S> SetAssocCache<S> {
    /// Builds a cache from a [`CacheConfig`] and the system block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(config: &CacheConfig, block_bytes: u64) -> Self {
        let num_sets = config.num_sets(block_bytes);
        SetAssocCache::with_geometry(num_sets, config.associativity)
    }

    /// Builds a cache directly from a set count and associativity (useful for
    /// tests and for the L1 presence filter).
    pub fn with_geometry(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "degenerate cache geometry");
        SetAssocCache {
            num_sets,
            set_mask: if num_sets.is_power_of_two() {
                num_sets as u64 - 1
            } else {
                0
            },
            ways,
            tags: vec![EMPTY_TAG; num_sets * ways],
            states: (0..num_sets * ways).map(|_| None).collect(),
            last_use: vec![0; num_sets * ways],
            len: 0,
            use_counter: 0,
            lookups: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// Where a fill of `addr` would land in its set: the resident slot if
    /// the block is already cached, otherwise the first free way, otherwise
    /// the LRU way. One probe discipline shared by every filling operation
    /// ([`SetAssocCache::insert`], [`SetAssocCache::touch`],
    /// [`SetAssocCache::victim_for`]) so eviction order can never silently
    /// diverge between them — `events_delivered` determinism rides on it.
    #[inline]
    fn probe_for_fill(&self, addr: BlockAddr) -> FillSlot {
        let start = self.set_index(addr) * self.ways;
        let tag = addr.value();
        let mut free: Option<usize> = None;
        let mut lru: Option<usize> = None;
        for i in start..start + self.ways {
            let t = self.tags[i];
            if t == tag {
                return FillSlot::Resident(i);
            }
            if t == EMPTY_TAG {
                if free.is_none() {
                    free = Some(i);
                }
            } else if lru
                .map(|l| self.last_use[i] < self.last_use[l])
                .unwrap_or(true)
            {
                lru = Some(i);
            }
        }
        match free {
            Some(i) => FillSlot::Free(i),
            None => FillSlot::Evict(lru.expect("full set has an LRU line")),
        }
    }

    /// Index of `addr`'s slot within its set, if resident.
    #[inline]
    fn find(&self, addr: BlockAddr) -> Option<usize> {
        let start = self.set_index(addr) * self.ways;
        let tag = addr.value();
        self.tags[start..start + self.ways]
            .iter()
            .position(|&t| t == tag)
            .map(|way| start + way)
    }

    #[inline]
    fn set_index(&self, addr: BlockAddr) -> usize {
        if self.set_mask != 0 {
            (addr.value() & self.set_mask) as usize
        } else {
            (addr.value() % self.num_sets as u64) as usize
        }
    }

    /// Total number of lines the cache can hold.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Number of lines currently resident.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a block without affecting LRU state or statistics.
    pub fn peek(&self, addr: BlockAddr) -> Option<&S> {
        self.find(addr)
            .map(|i| self.states[i].as_ref().expect("occupied tag has state"))
    }

    /// Looks up a block mutably without affecting LRU state or statistics
    /// (used to refresh slot hints, never on the simulated access path).
    pub fn peek_mut(&mut self, addr: BlockAddr) -> Option<&mut S> {
        let i = self.find(addr)?;
        Some(self.states[i].as_mut().expect("occupied tag has state"))
    }

    /// Validates a remembered slot hint: returns the slot if it still holds
    /// `addr`'s line. A tag can only ever live in its own set, so a tag
    /// match *is* residency — no set arithmetic needed.
    #[inline]
    pub fn hinted_slot(&self, hint: u32, addr: BlockAddr) -> Option<usize> {
        let i = hint as usize;
        if i < self.tags.len() && self.tags[i] == addr.value() {
            Some(i)
        } else {
            None
        }
    }

    /// Accesses a resident line directly by slot, updating LRU order and the
    /// hit statistics exactly as a tag-probe hit in [`SetAssocCache::get`]
    /// would — the hinted fast path is behaviourally indistinguishable from
    /// the full probe, it only skips the set scan.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the slot is occupied; callers validate with
    /// [`SetAssocCache::hinted_slot`] first.
    #[inline]
    pub fn get_at(&mut self, slot: usize) -> &mut S {
        debug_assert!(self.tags[slot] != EMPTY_TAG, "hinted slot is empty");
        self.lookups += 1;
        self.hits += 1;
        self.use_counter += 1;
        self.last_use[slot] = self.use_counter;
        self.states[slot].as_mut().expect("occupied tag has state")
    }

    /// [`SetAssocCache::get`] that also reports which slot the line occupies,
    /// so the caller can remember it as a hint for the next access.
    pub fn get_with_slot(&mut self, addr: BlockAddr) -> Option<(usize, &mut S)> {
        self.lookups += 1;
        self.use_counter += 1;
        let counter = self.use_counter;
        if let Some(i) = self.find(addr) {
            self.last_use[i] = counter;
            self.hits += 1;
            Some((i, self.states[i].as_mut().expect("occupied tag has state")))
        } else {
            None
        }
    }

    /// Looks up a block, updating LRU order and hit statistics, and returns a
    /// mutable reference to its state.
    pub fn get(&mut self, addr: BlockAddr) -> Option<&mut S> {
        self.lookups += 1;
        self.use_counter += 1;
        let counter = self.use_counter;
        if let Some(i) = self.find(addr) {
            self.last_use[i] = counter;
            self.hits += 1;
            Some(self.states[i].as_mut().expect("occupied tag has state"))
        } else {
            None
        }
    }

    /// Returns `true` if the block is resident (without touching LRU state).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts (or replaces) a block, returning the victim line if one had to
    /// be evicted to make room.
    pub fn insert(&mut self, addr: BlockAddr, state: S) -> Option<CacheLine<S>> {
        debug_assert!(
            addr.value() != EMPTY_TAG,
            "address collides with the empty-way tag"
        );
        self.use_counter += 1;
        let counter = self.use_counter;
        let (i, victim) = match self.probe_for_fill(addr) {
            FillSlot::Resident(i) => {
                self.states[i] = Some(state);
                self.last_use[i] = counter;
                return None;
            }
            FillSlot::Free(i) => {
                self.len += 1;
                (i, None)
            }
            FillSlot::Evict(i) => {
                self.evictions += 1;
                (
                    i,
                    Some(CacheLine {
                        addr: BlockAddr::new(self.tags[i]),
                        state: self.states[i].take().expect("occupied tag has state"),
                        last_use: self.last_use[i],
                    }),
                )
            }
        };
        self.tags[i] = addr.value();
        self.states[i] = Some(state);
        self.last_use[i] = counter;
        victim
    }

    /// Records an access to `addr` in a presence-only cache (`S: Default`):
    /// returns `true` if the block was already resident (updating LRU order
    /// and the hit counter, like [`SetAssocCache::get`]) and fills it in the
    /// same set pass otherwise (evicting the LRU line, like
    /// [`SetAssocCache::insert`]).
    pub fn touch(&mut self, addr: BlockAddr) -> bool
    where
        S: Default,
    {
        self.touch_entry(addr).0
    }

    /// [`SetAssocCache::touch`] that also returns the (possibly
    /// just-defaulted) per-line state, so presence caches can piggyback a
    /// payload — the L1 filter's L2 slot hint — on the same single set pass.
    pub fn touch_entry(&mut self, addr: BlockAddr) -> (bool, &mut S)
    where
        S: Default,
    {
        self.lookups += 1;
        self.use_counter += 1;
        let counter = self.use_counter;
        let (hit, i) = match self.probe_for_fill(addr) {
            FillSlot::Resident(i) => {
                self.last_use[i] = counter;
                self.hits += 1;
                (true, i)
            }
            FillSlot::Free(i) => {
                self.len += 1;
                (false, i)
            }
            FillSlot::Evict(i) => {
                self.evictions += 1;
                (false, i)
            }
        };
        if !hit {
            self.tags[i] = addr.value();
            self.states[i] = Some(S::default());
            self.last_use[i] = counter;
        }
        (
            hit,
            self.states[i].as_mut().expect("occupied tag has state"),
        )
    }

    /// Removes a block, returning its state if it was resident.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<S> {
        let i = self.find(addr)?;
        self.tags[i] = EMPTY_TAG;
        self.len -= 1;
        self.states[i].take()
    }

    /// Chooses the line that would be evicted if `addr` were inserted now,
    /// without inserting. Returns `None` if there is a free way.
    pub fn victim_for(&self, addr: BlockAddr) -> Option<(BlockAddr, &S)> {
        match self.probe_for_fill(addr) {
            FillSlot::Resident(_) | FillSlot::Free(_) => None,
            FillSlot::Evict(i) => Some((
                BlockAddr::new(self.tags[i]),
                self.states[i].as_ref().expect("occupied tag has state"),
            )),
        }
    }

    /// Iterates over every resident line.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &S)> {
        self.tags
            .iter()
            .zip(&self.states)
            .filter(|(&t, _)| t != EMPTY_TAG)
            .map(|(&t, s)| {
                (
                    BlockAddr::new(t),
                    s.as_ref().expect("occupied tag has state"),
                )
            })
    }

    /// Every resident block address.
    pub fn blocks(&self) -> Vec<BlockAddr> {
        self.iter().map(|(a, _)| a).collect()
    }

    /// (lookups, hits, evictions) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.lookups, self.hits, self.evictions)
    }

    /// Serializes resident lines (slot, tag, LRU stamp, state) plus the
    /// LRU/statistics counters. Geometry is *not* serialized — it is
    /// config-derived, so restore happens onto a freshly-constructed cache
    /// of the same configuration (validated by slot bounds).
    pub fn save_state(&self, w: &mut SnapWriter, mut emit: impl FnMut(&mut SnapWriter, &S)) {
        w.usize(self.len);
        w.u64(self.use_counter);
        w.u64(self.lookups);
        w.u64(self.hits);
        w.u64(self.evictions);
        for (i, &tag) in self.tags.iter().enumerate() {
            if tag == EMPTY_TAG {
                continue;
            }
            w.usize(i);
            w.u64(tag);
            w.u64(self.last_use[i]);
            emit(w, self.states[i].as_ref().expect("occupied tag has state"));
        }
    }

    /// Restores [`SetAssocCache::save_state`] bytes onto this cache, which
    /// must have the same geometry (same configuration) as the saved one.
    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        mut read: impl FnMut(&mut SnapReader<'_>) -> Result<S, SnapshotError>,
    ) -> Result<(), SnapshotError> {
        self.tags.fill(EMPTY_TAG);
        for state in &mut self.states {
            *state = None;
        }
        self.last_use.fill(0);
        let len = r.usize()?;
        if len > self.capacity() {
            return Err(SnapshotError::Corrupt("cache population".into()));
        }
        self.use_counter = r.u64()?;
        self.lookups = r.u64()?;
        self.hits = r.u64()?;
        self.evictions = r.u64()?;
        for _ in 0..len {
            let slot = r.usize()?;
            let tag = r.u64()?;
            if slot >= self.capacity() || self.tags[slot] != EMPTY_TAG || tag == EMPTY_TAG {
                return Err(SnapshotError::Corrupt("cache slot".into()));
            }
            self.tags[slot] = tag;
            self.last_use[slot] = r.u64()?;
            self.states[slot] = Some(read(r)?);
        }
        self.len = len;
        Ok(())
    }
}

impl<S> fmt::Display for SetAssocCache<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}-way cache, {}/{} lines resident",
            self.num_sets,
            self.ways,
            self.len(),
            self.capacity()
        )
    }
}

/// An L1 filter entry: the remembered L2 slot of the block, or
/// [`SlotHint::NONE`] when unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotHint(u32);

impl SlotHint {
    /// "No hint yet" sentinel — never a valid slot (the L2 would need 2^32
    /// lines).
    const NONE: u32 = u32::MAX;
}

impl Default for SlotHint {
    fn default() -> Self {
        SlotHint(SlotHint::NONE)
    }
}

/// A presence filter standing in for the split L1 instruction/data caches,
/// doubling as the front-side fast path of every controller.
///
/// Coherence permissions live in the (inclusive) L2; the L1 filter decides
/// whether an access that the L2 can satisfy pays L1 latency or L1 + L2
/// latency, and it is kept inclusive by removing blocks whenever the L2
/// loses them. Each entry additionally remembers the block's L2 *slot* so
/// the shared [`hinted_get`] front path can skip the L2 set scan on hits —
/// the hint is advisory (validated by a single tag compare, repaired by a
/// full probe on mismatch) and never affects simulated behaviour.
#[derive(Debug, Clone)]
pub struct L1Filter {
    cache: SetAssocCache<SlotHint>,
    latency_ns: u64,
}

impl L1Filter {
    /// Builds the filter from the L1 configuration.
    pub fn new(config: &CacheConfig, block_bytes: u64) -> Self {
        L1Filter {
            cache: SetAssocCache::new(config, block_bytes),
            latency_ns: config.latency_ns,
        }
    }

    /// L1 access latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns
    }

    /// Records an access to `addr`: returns `true` if it was already present
    /// (an L1 hit) and ensures it is present afterwards. One set lookup for
    /// both the probe and the fill (this runs on every processor access).
    pub fn touch(&mut self, addr: BlockAddr) -> bool {
        self.touch_hint(addr).0
    }

    /// [`L1Filter::touch`] that also returns the remembered L2 slot hint
    /// ([`u32::MAX`] when none has been learned yet) in the same set pass.
    pub fn touch_hint(&mut self, addr: BlockAddr) -> (bool, u32) {
        let (hit, hint) = self.cache.touch_entry(addr);
        (hit, hint.0)
    }

    /// Remembers `slot` as `addr`'s L2 home for the next access. A pure
    /// host-side memo: no LRU or statistics change.
    pub fn remember(&mut self, addr: BlockAddr, slot: u32) {
        if let Some(hint) = self.cache.peek_mut(addr) {
            hint.0 = slot;
        }
    }

    /// Removes a block (called when the L2 loses the block, to preserve
    /// inclusion).
    pub fn invalidate(&mut self, addr: BlockAddr) {
        self.cache.remove(addr);
    }

    /// Returns `true` if the block is present.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.cache.contains(addr)
    }

    /// Serializes the filter's resident set and slot hints.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.cache.save_state(w, |w, hint| w.u32(hint.0));
    }

    /// Restores [`L1Filter::save_state`] bytes onto a same-config filter.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.cache.load_state(r, |r| Ok(SlotHint(r.u32()?)))
    }
}

/// The shared front-side fast path of all four coherence controllers: one
/// L1-filter touch plus a hint-validated L2 access.
///
/// Returns the L1 hit flag (latency classification) and the L2 line, if
/// resident. When the L1 holds a valid slot hint the L2 set scan is skipped
/// entirely — a single tag compare replaces the dependent-load probe chain —
/// and a stale or missing hint falls back to the full probe and re-learns
/// the slot. LRU order and hit statistics are updated identically on both
/// paths (see [`SetAssocCache::get_at`]), so the fast path is invisible to
/// the simulation: `events_delivered` is pinned across it.
pub fn hinted_get<'a, S>(
    l1: &mut L1Filter,
    l2: &'a mut SetAssocCache<S>,
    addr: BlockAddr,
) -> (bool, Option<&'a mut S>) {
    let (l1_hit, hint) = l1.touch_hint(addr);
    if let Some(slot) = l2.hinted_slot(hint, addr) {
        return (l1_hit, Some(l2.get_at(slot)));
    }
    match l2.get_with_slot(addr) {
        Some((slot, line)) => {
            l1.remember(addr, slot as u32);
            (l1_hit, Some(line))
        }
        None => (l1_hit, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        SetAssocCache::with_geometry(2, 2)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut c = small();
        assert!(c.insert(BlockAddr::new(0), 10).is_none());
        assert_eq!(c.get(BlockAddr::new(0)).copied(), Some(10));
        assert_eq!(c.peek(BlockAddr::new(0)).copied(), Some(10));
        assert!(c.contains(BlockAddr::new(0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 1);
        assert!(c.insert(BlockAddr::new(0), 2).is_none());
        assert_eq!(c.peek(BlockAddr::new(0)).copied(), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(BlockAddr::new(0), 0);
        c.insert(BlockAddr::new(2), 2);
        // Touch block 0 so block 2 becomes LRU.
        c.get(BlockAddr::new(0));
        let victim = c.insert(BlockAddr::new(4), 4).expect("eviction expected");
        assert_eq!(victim.addr, BlockAddr::new(2));
        assert!(c.contains(BlockAddr::new(0)));
        assert!(c.contains(BlockAddr::new(4)));
    }

    #[test]
    fn victim_for_predicts_the_eviction() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        assert!(c.victim_for(BlockAddr::new(2)).is_none(), "free way exists");
        c.insert(BlockAddr::new(2), 2);
        c.get(BlockAddr::new(2));
        let predicted = c.victim_for(BlockAddr::new(4)).unwrap().0;
        let actual = c.insert(BlockAddr::new(4), 4).unwrap().addr;
        assert_eq!(predicted, actual);
        assert_eq!(predicted, BlockAddr::new(0));
    }

    #[test]
    fn victim_for_resident_block_is_none() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        c.insert(BlockAddr::new(2), 2);
        assert!(c.victim_for(BlockAddr::new(0)).is_none());
    }

    #[test]
    fn remove_takes_the_line_out() {
        let mut c = small();
        c.insert(BlockAddr::new(3), 7);
        assert_eq!(c.remove(BlockAddr::new(3)), Some(7));
        assert_eq!(c.remove(BlockAddr::new(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        c.insert(BlockAddr::new(1), 1);
        c.insert(BlockAddr::new(2), 2);
        c.insert(BlockAddr::new(3), 3);
        assert_eq!(c.len(), 4);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn counters_track_hits_and_evictions() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 0);
        c.get(BlockAddr::new(0));
        c.get(BlockAddr::new(2));
        c.insert(BlockAddr::new(2), 2);
        c.insert(BlockAddr::new(4), 4);
        let (lookups, hits, evictions) = c.counters();
        assert_eq!(lookups, 2);
        assert_eq!(hits, 1);
        assert_eq!(evictions, 1);
    }

    #[test]
    fn geometry_from_config_matches_table1_l2() {
        let config = CacheConfig {
            size_bytes: 4 * 1024 * 1024,
            associativity: 4,
            latency_ns: 6,
        };
        let c: SetAssocCache<u8> = SetAssocCache::new(&config, 64);
        assert_eq!(c.capacity(), 65536);
    }

    #[test]
    fn iter_and_blocks_report_residents() {
        let mut c = small();
        c.insert(BlockAddr::new(0), 1);
        c.insert(BlockAddr::new(1), 2);
        let mut blocks = c.blocks();
        blocks.sort();
        assert_eq!(blocks, vec![BlockAddr::new(0), BlockAddr::new(1)]);
        let sum: u32 = c.iter().map(|(_, s)| *s).sum();
        assert_eq!(sum, 3);
    }

    #[test]
    fn l1_filter_reports_hits_after_first_touch() {
        let config = CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            latency_ns: 2,
        };
        let mut l1 = L1Filter::new(&config, 64);
        assert_eq!(l1.latency_ns(), 2);
        assert!(!l1.touch(BlockAddr::new(5)));
        assert!(l1.touch(BlockAddr::new(5)));
        l1.invalidate(BlockAddr::new(5));
        assert!(!l1.contains(BlockAddr::new(5)));
        assert!(!l1.touch(BlockAddr::new(5)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_way_geometry_panics() {
        let _: SetAssocCache<u8> = SetAssocCache::with_geometry(4, 0);
    }

    #[test]
    fn hinted_get_matches_full_probe_behaviour() {
        let l1_config = CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            latency_ns: 2,
        };
        let mut l1 = L1Filter::new(&l1_config, 64);
        let mut l2: SetAssocCache<u32> = SetAssocCache::with_geometry(4, 2);
        // Cold: L1 miss, L2 miss.
        let (l1_hit, line) = hinted_get(&mut l1, &mut l2, BlockAddr::new(8));
        assert!(!l1_hit);
        assert!(line.is_none());
        l2.insert(BlockAddr::new(8), 80);
        // Second access: L1 hit (touched above), full probe learns the slot.
        let (l1_hit, line) = hinted_get(&mut l1, &mut l2, BlockAddr::new(8));
        assert!(l1_hit);
        assert_eq!(line.copied(), Some(80));
        // Third access rides the hint; counters advance exactly like a
        // tag-probe hit would.
        let (lookups_before, hits_before, _) = l2.counters();
        let (l1_hit, line) = hinted_get(&mut l1, &mut l2, BlockAddr::new(8));
        assert!(l1_hit);
        assert_eq!(line.copied(), Some(80));
        let (lookups, hits, _) = l2.counters();
        assert_eq!(lookups, lookups_before + 1);
        assert_eq!(hits, hits_before + 1);
    }

    #[test]
    fn stale_hints_fall_back_to_the_full_probe() {
        let l1_config = CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            latency_ns: 2,
        };
        let mut l1 = L1Filter::new(&l1_config, 64);
        let mut l2: SetAssocCache<u32> = SetAssocCache::with_geometry(2, 1);
        l2.insert(BlockAddr::new(0), 1);
        hinted_get(&mut l1, &mut l2, BlockAddr::new(0)); // learn slot
        hinted_get(&mut l1, &mut l2, BlockAddr::new(0)); // ride hint
                                                         // Evict block 0 by filling its (single-way) set with block 2; the L2
                                                         // slot now holds a different tag, so the hint must fail validation.
        l2.insert(BlockAddr::new(2), 2);
        let (_, line) = hinted_get(&mut l1, &mut l2, BlockAddr::new(0));
        assert!(line.is_none(), "stale hint must not resurrect the line");
        // Re-insert into the same slot: the repaired hint works again.
        l2.remove(BlockAddr::new(2));
        l2.insert(BlockAddr::new(0), 10);
        let (_, line) = hinted_get(&mut l1, &mut l2, BlockAddr::new(0));
        assert_eq!(line.copied(), Some(10));
    }

    #[test]
    fn hinted_lru_order_matches_unhinted_lru_order() {
        // Two caches, same insert/access sequence — one driven through the
        // hinted front, one through plain get(). Eviction victims must agree.
        let l1_config = CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            latency_ns: 2,
        };
        let mut l1 = L1Filter::new(&l1_config, 64);
        let mut hinted: SetAssocCache<u32> = SetAssocCache::with_geometry(2, 2);
        let mut plain: SetAssocCache<u32> = SetAssocCache::with_geometry(2, 2);
        for block in [0u64, 2] {
            hinted.insert(BlockAddr::new(block), block as u32);
            plain.insert(BlockAddr::new(block), block as u32);
        }
        // Touch block 0 twice through each front so block 2 is LRU.
        for _ in 0..2 {
            hinted_get(&mut l1, &mut hinted, BlockAddr::new(0));
            plain.get(BlockAddr::new(0));
        }
        let hv = hinted.insert(BlockAddr::new(4), 4).expect("eviction").addr;
        let pv = plain.insert(BlockAddr::new(4), 4).expect("eviction").addr;
        assert_eq!(hv, pv);
        assert_eq!(hv, BlockAddr::new(2));
    }
}
