//! The processor model.

use std::collections::BTreeMap;

use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{Address, Cycle, MemOp, MemOpKind, NodeId, ProcessorConfig, ReqId};
use tc_workloads::{GeneratedOp, WorkloadGenerator, WorkloadProfile};

/// What [`Processor::note_completion`] did, so the runner can maintain its
/// incremental completed-operation counter and wake blocked processors
/// without re-scanning every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionOutcome {
    /// Whether an outstanding miss was actually completed (false for stale
    /// responses to unknown request ids).
    pub completed: bool,
    /// Whether the processor was blocked and should be woken.
    pub was_blocked: bool,
}

/// What the processor wants to do next when it is woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueDecision {
    /// Issue this operation now.
    Issue(MemOp),
    /// Nothing can be issued until an outstanding miss completes.
    Blocked,
    /// The processor has issued every operation it was asked to.
    Finished,
}

/// A simplified dynamically-scheduled processor.
///
/// The model captures what matters for coherence-protocol comparisons: hits
/// are cheap and overlap with computation, several misses can be outstanding
/// at once (up to the MSHR count), and the reorder window limits how far the
/// processor can run ahead of an outstanding miss. Instruction-level detail
/// (pipelines, branch prediction) is deliberately omitted; its effect is
/// folded into the workload's "think time" between memory operations.
#[derive(Debug)]
pub struct Processor {
    node: NodeId,
    config: ProcessorConfig,
    generator: WorkloadGenerator,
    target_ops: u64,
    issued: u64,
    completed: u64,
    outstanding: BTreeMap<ReqId, Cycle>,
    issued_past_miss: usize,
    blocked: bool,
    staged: Option<GeneratedOp>,
    transactions: u64,
    ops_in_transaction: usize,
    total_think: Cycle,
}

impl Processor {
    /// Creates a processor for `node` running `profile`, which will issue
    /// `target_ops` memory operations and then stop.
    pub fn new(
        node: NodeId,
        profile: &WorkloadProfile,
        config: ProcessorConfig,
        num_nodes: usize,
        seed: u64,
        target_ops: u64,
    ) -> Self {
        Processor {
            node,
            config,
            generator: WorkloadGenerator::new(profile, node, num_nodes, seed),
            target_ops,
            issued: 0,
            completed: 0,
            outstanding: BTreeMap::new(),
            issued_past_miss: 0,
            blocked: false,
            staged: None,
            transactions: 0,
            ops_in_transaction: 0,
            total_think: 0,
        }
    }

    /// The node this processor belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operations completed so far.
    pub fn completed_ops(&self) -> u64 {
        self.completed
    }

    /// Transactions (groups of `ops_per_transaction` operations) completed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Whether the processor has completed every operation it was asked to
    /// issue.
    pub fn is_done(&self) -> bool {
        self.completed >= self.target_ops
    }

    /// Whether the processor is stalled waiting for a miss.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Number of misses currently outstanding.
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding.len()
    }

    /// Total think (compute) cycles consumed so far.
    pub fn total_think_cycles(&self) -> Cycle {
        self.total_think
    }

    /// Decides what to do when woken at time `now`. If an operation is
    /// issued, the caller must pass it to the coherence controller and then
    /// call either [`Processor::note_hit`] or [`Processor::note_miss`].
    ///
    /// Returns the decision plus the think time consumed before the issued
    /// operation (so the caller can account for it when scheduling).
    pub fn next_issue(&mut self, _now: Cycle) -> (IssueDecision, Cycle) {
        if self.issued >= self.target_ops {
            return (IssueDecision::Finished, 0);
        }
        if self.outstanding.len() >= self.config.max_outstanding_misses {
            self.blocked = true;
            return (IssueDecision::Blocked, 0);
        }
        if !self.outstanding.is_empty() && self.issued_past_miss >= self.config.overlap_window {
            self.blocked = true;
            return (IssueDecision::Blocked, 0);
        }
        let generated = self
            .staged
            .take()
            .unwrap_or_else(|| self.generator.next_op());
        let think = generated.think_cycles;
        self.total_think += think;
        self.issued += 1;
        if !self.outstanding.is_empty() {
            self.issued_past_miss += 1;
        }
        (IssueDecision::Issue(generated.op), think)
    }

    /// Records that the most recently issued operation hit in the caches.
    pub fn note_hit(&mut self, _now: Cycle) {
        self.complete_one();
    }

    /// Records that the most recently issued operation missed and is now
    /// outstanding.
    pub fn note_miss(&mut self, req: ReqId, now: Cycle) {
        self.outstanding.insert(req, now);
    }

    /// Records the completion of an outstanding miss. Completions for
    /// unknown request ids (stale responses) are ignored.
    pub fn note_completion(&mut self, req: ReqId, _now: Cycle) -> CompletionOutcome {
        if self.outstanding.remove(&req).is_none() {
            return CompletionOutcome {
                completed: false,
                was_blocked: false,
            };
        }
        self.complete_one();
        if self.outstanding.is_empty() {
            self.issued_past_miss = 0;
        }
        let was_blocked = self.blocked;
        self.blocked = false;
        CompletionOutcome {
            completed: true,
            was_blocked,
        }
    }

    /// The issue time of the oldest outstanding miss, if any (used by the
    /// starvation audit).
    pub fn oldest_outstanding(&self) -> Option<(ReqId, Cycle)> {
        self.outstanding
            .iter()
            .min_by_key(|(_, t)| **t)
            .map(|(r, t)| (*r, *t))
    }

    fn complete_one(&mut self) {
        self.completed += 1;
        self.ops_in_transaction += 1;
        if self.ops_in_transaction >= self.config.ops_per_transaction {
            self.ops_in_transaction = 0;
            self.transactions += 1;
        }
    }

    /// Serializes the processor's mutable state (the generator cursor, issue
    /// and completion counters, and outstanding misses). `node`, `config`,
    /// and `target_ops` are construction parameters and not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.generator.save_state(w);
        w.u64(self.issued);
        w.u64(self.completed);
        w.seq(self.outstanding.iter(), |w, (req, &at)| {
            w.u64(req.value());
            w.u64(at);
        });
        w.usize(self.issued_past_miss);
        w.bool(self.blocked);
        w.option(self.staged.as_ref(), |w, staged| {
            w.u64(staged.think_cycles);
            w.u64(staged.op.id.value());
            w.u64(staged.op.addr.value());
            w.u8(mem_op_kind_tag(staged.op.kind));
        });
        w.u64(self.transactions);
        w.usize(self.ops_in_transaction);
        w.u64(self.total_think);
    }

    /// Restores [`Processor::save_state`] bytes onto a same-config processor.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.generator.load_state(r)?;
        self.issued = r.u64()?;
        self.completed = r.u64()?;
        let outstanding_len = r.bounded_len(16)?;
        self.outstanding.clear();
        for _ in 0..outstanding_len {
            let req = ReqId::new(r.u64()?);
            let at = r.u64()?;
            self.outstanding.insert(req, at);
        }
        self.issued_past_miss = r.usize()?;
        self.blocked = r.bool()?;
        self.staged = r.option(|r| {
            Ok(GeneratedOp {
                think_cycles: r.u64()?,
                op: MemOp::new(
                    ReqId::new(r.u64()?),
                    Address::new(r.u64()?),
                    mem_op_kind_from_tag(r.u8()?)?,
                ),
            })
        })?;
        self.transactions = r.u64()?;
        self.ops_in_transaction = r.usize()?;
        self.total_think = r.u64()?;
        Ok(())
    }
}

fn mem_op_kind_tag(kind: MemOpKind) -> u8 {
    match kind {
        MemOpKind::Load => 0,
        MemOpKind::Store => 1,
        MemOpKind::Ifetch => 2,
        MemOpKind::Atomic => 3,
    }
}

fn mem_op_kind_from_tag(tag: u8) -> Result<MemOpKind, SnapshotError> {
    Ok(match tag {
        0 => MemOpKind::Load,
        1 => MemOpKind::Store,
        2 => MemOpKind::Ifetch,
        3 => MemOpKind::Atomic,
        other => return Err(SnapshotError::Corrupt(format!("mem op tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn processor(target: u64) -> Processor {
        Processor::new(
            NodeId::new(0),
            &WorkloadProfile::private_only(),
            ProcessorConfig {
                max_outstanding_misses: 2,
                overlap_window: 4,
                ops_per_transaction: 10,
            },
            4,
            1,
            target,
        )
    }

    #[test]
    fn issues_until_target_then_finishes() {
        let mut p = processor(3);
        for _ in 0..3 {
            match p.next_issue(0) {
                (IssueDecision::Issue(_), _) => p.note_hit(0),
                other => panic!("expected issue, got {other:?}"),
            }
        }
        assert!(matches!(p.next_issue(0), (IssueDecision::Finished, 0)));
        assert!(p.is_done());
        assert_eq!(p.completed_ops(), 3);
    }

    #[test]
    fn blocks_when_mshrs_are_full() {
        let mut p = processor(100);
        for i in 0..2 {
            let (decision, _) = p.next_issue(0);
            let IssueDecision::Issue(op) = decision else {
                panic!("expected issue");
            };
            p.note_miss(op.id, i);
        }
        assert!(matches!(p.next_issue(5), (IssueDecision::Blocked, _)));
        assert!(p.is_blocked());
        assert_eq!(p.outstanding_misses(), 2);
    }

    #[test]
    fn completion_unblocks_and_counts() {
        let mut p = processor(100);
        let (decision, _) = p.next_issue(0);
        let IssueDecision::Issue(op) = decision else {
            panic!()
        };
        p.note_miss(op.id, 0);
        // Fill the second MSHR too.
        let (decision, _) = p.next_issue(1);
        let IssueDecision::Issue(op2) = decision else {
            panic!()
        };
        p.note_miss(op2.id, 1);
        let _ = p.next_issue(2); // blocks
        assert!(p.note_completion(op.id, 50).was_blocked);
        assert!(!p.is_blocked());
        assert_eq!(p.completed_ops(), 1);
        // Unknown completions are ignored.
        assert!(!p.note_completion(ReqId::new(9999), 60).completed);
    }

    #[test]
    fn overlap_window_limits_run_ahead() {
        let mut p = processor(100);
        let (decision, _) = p.next_issue(0);
        let IssueDecision::Issue(op) = decision else {
            panic!()
        };
        p.note_miss(op.id, 0);
        // The window allows 4 more issues past the outstanding miss.
        let mut issued = 0;
        loop {
            match p.next_issue(1) {
                (IssueDecision::Issue(_), _) => {
                    p.note_hit(1);
                    issued += 1;
                }
                (IssueDecision::Blocked, _) => break,
                (IssueDecision::Finished, _) => break,
            }
            assert!(issued < 50, "window must eventually block");
        }
        assert_eq!(issued, 4);
    }

    #[test]
    fn transactions_count_groups_of_ops() {
        let mut p = processor(25);
        while !p.is_done() {
            match p.next_issue(0) {
                (IssueDecision::Issue(_), _) => p.note_hit(0),
                _ => break,
            }
        }
        assert_eq!(p.completed_ops(), 25);
        assert_eq!(p.transactions(), 2);
    }

    #[test]
    fn oldest_outstanding_tracks_issue_times() {
        let mut p = processor(10);
        let (IssueDecision::Issue(op1), _) = p.next_issue(0) else {
            panic!()
        };
        p.note_miss(op1.id, 100);
        let (IssueDecision::Issue(op2), _) = p.next_issue(0) else {
            panic!()
        };
        p.note_miss(op2.id, 200);
        assert_eq!(p.oldest_outstanding(), Some((op1.id, 100)));
    }
}
