//! Run reports: the measurements every experiment consumes.

use std::fmt;

use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AdversarySpec, BandwidthMode, ControllerStats, Cycle, EngineStats, FaultSpec,
    InvariantViolation, MissStats, ProtocolKind, ReissueStats, TopologyKind, TrafficClass,
    TrafficStats,
};

use crate::verify::{emit_violation, read_violation};

/// Traffic normalized per miss, broken down by message class, as in
/// Figures 4b and 5b of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficBreakdown {
    /// (class, link-crossing bytes per miss) for every traffic class.
    pub per_class: Vec<(TrafficClass, f64)>,
}

impl TrafficBreakdown {
    /// Builds the breakdown from raw traffic and a miss count.
    pub fn new(traffic: &TrafficStats, misses: u64) -> Self {
        let divisor = misses.max(1) as f64;
        let per_class = TrafficClass::ALL
            .iter()
            .map(|class| (*class, traffic.link_bytes(*class) as f64 / divisor))
            .collect();
        TrafficBreakdown { per_class }
    }

    /// Total link-crossing bytes per miss.
    pub fn total(&self) -> f64 {
        self.per_class.iter().map(|(_, b)| b).sum()
    }

    /// Bytes per miss for one class.
    pub fn class(&self, class: TrafficClass) -> f64 {
        self.per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, b)| *b)
            .unwrap_or(0.0)
    }
}

/// Everything measured in one simulation run.
///
/// `PartialEq` compares every field — including the engine high-water marks
/// and `events_delivered` — so "two runs are equal" means *bit-identical
/// simulation behaviour*, the contract the campaign driver's determinism
/// test pins across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Protocol that was run.
    pub protocol: ProtocolKind,
    /// Interconnect topology used.
    pub topology: TopologyKind,
    /// Whether link bandwidth was limited or unlimited.
    pub bandwidth: BandwidthMode,
    /// Name of the workload profile.
    pub workload: String,
    /// Number of nodes simulated.
    pub num_nodes: usize,
    /// Final simulated time (total runtime) in cycles/nanoseconds.
    pub runtime_cycles: Cycle,
    /// Total memory operations completed across all processors.
    pub total_ops: u64,
    /// Total transactions (groups of operations) completed.
    pub total_transactions: u64,
    /// Aggregated cache/miss statistics across all nodes.
    pub misses: MissStats,
    /// Aggregated reissue histogram (Table 2; zero for non-token protocols).
    pub reissue: ReissueStats,
    /// Aggregated per-controller statistics.
    pub controllers: ControllerStats,
    /// Interconnect traffic by class.
    pub traffic: TrafficStats,
    /// Fault spec the run executed under ([`FaultSpec::none`] for a
    /// reliable fabric); the matching counters live in `engine.faults`.
    pub faults: FaultSpec,
    /// Adversarial-scheduling spec the run executed under
    /// ([`AdversarySpec::none`] for an unperturbed schedule); the matching
    /// counters live in `engine.adversary`.
    pub adversary: AdversarySpec,
    /// Median end-to-end miss latency, in cycles (0 when no miss completed).
    pub miss_latency_p50: Cycle,
    /// 99th-percentile end-to-end miss latency, in cycles.
    pub miss_latency_p99: Cycle,
    /// Worst end-to-end miss latency, in cycles.
    pub miss_latency_max: Cycle,
    /// Completion-share skew across nodes: `(max - min) / mean` per-node
    /// completed operations, in parts per million. The first-class fairness
    /// metric — 0 means every node completed the same share of work.
    pub completion_skew_ppm: u64,
    /// Engine-level high-water marks (queue depth, arena occupancy), for
    /// data-driven bottleneck hunts.
    pub engine: EngineStats,
    /// Invariant violations detected by the verifier (must be empty).
    pub violations: Vec<InvariantViolation>,
}

impl RunReport {
    /// This report with engine *capacity telemetry* zeroed, leaving only
    /// behavioral fields — the view the sharded-execution determinism
    /// contract is stated over.
    ///
    /// A sharded run (`RunOptions::shards >= 1`) produces the same events,
    /// messages, statistics, and violations at every shard count, but each
    /// shard has its own calendar queue and message arena, so the *peak
    /// occupancy* of those structures (and the per-shard vectors in
    /// [`tc_types::ShardStats`]) necessarily depends on how many shards the
    /// work was split across. Comparing `determinism_view()`s bit-for-bit
    /// checks everything the simulation computed while ignoring only how
    /// full the engine's internal containers got.
    pub fn determinism_view(&self) -> RunReport {
        let mut view = self.clone();
        view.engine.peak_queue_depth = 0;
        view.engine.peak_arena_occupancy = 0;
        view.engine.sharding = tc_types::ShardStats::default();
        view
    }

    /// Runtime normalized per transaction: the figure-of-merit the paper
    /// plots ("normalized cycles per transaction", smaller is better).
    pub fn cycles_per_transaction(&self) -> f64 {
        if self.total_transactions == 0 {
            return self.runtime_cycles as f64;
        }
        self.runtime_cycles as f64 * self.num_nodes as f64 / self.total_transactions as f64
    }

    /// Runtime normalized per memory operation (a finer-grained variant of
    /// the same metric, useful for short test runs).
    pub fn cycles_per_op(&self) -> f64 {
        if self.total_ops == 0 {
            return self.runtime_cycles as f64;
        }
        self.runtime_cycles as f64 * self.num_nodes as f64 / self.total_ops as f64
    }

    /// Traffic per miss broken down by class (Figures 4b / 5b).
    pub fn traffic_breakdown(&self) -> TrafficBreakdown {
        TrafficBreakdown::new(&self.traffic, self.misses.total_misses())
    }

    /// Total link-crossing bytes per miss.
    pub fn bytes_per_miss(&self) -> f64 {
        self.traffic_breakdown().total()
    }

    /// Total link-crossing bytes per completed memory operation (used by the
    /// scalability experiment, where miss rates differ between protocols).
    pub fn bytes_per_op(&self) -> f64 {
        self.traffic.total_link_bytes() as f64 / self.total_ops.max(1) as f64
    }

    /// The Table 2 row for this run: percentage of misses not reissued,
    /// reissued once, reissued more than once, and completed by a persistent
    /// request.
    pub fn table2_row(&self) -> [f64; 4] {
        self.reissue.percentages()
    }

    /// A short label identifying the configuration, e.g. `TokenB/Torus`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.protocol, self.topology)
    }

    /// Returns an error listing the violations if any were detected.
    ///
    /// # Errors
    ///
    /// Returns the first violation (and logs the count) when the verifier
    /// found any safety or liveness violation.
    pub fn verified(&self) -> Result<(), InvariantViolation> {
        match self.violations.first() {
            None => Ok(()),
            Some(first) => Err(first.clone()),
        }
    }

    /// Serializes every field through the snapshot codec — the persistence
    /// format of the campaign service's result cache. Enum variants are
    /// written as stable tags (append, never renumber); the fault and
    /// adversary specs travel as their canonical `Display` strings, whose
    /// `parse` round-trips are pinned in `tc_types`.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u8(match self.protocol {
            ProtocolKind::TokenB => 0,
            ProtocolKind::Snooping => 1,
            ProtocolKind::Directory => 2,
            ProtocolKind::Hammer => 3,
        });
        w.u8(match self.topology {
            TopologyKind::Tree => 0,
            TopologyKind::Torus => 1,
        });
        w.u8(match self.bandwidth {
            BandwidthMode::Limited => 0,
            BandwidthMode::Unlimited => 1,
        });
        w.str(&self.workload);
        w.usize(self.num_nodes);
        w.u64(self.runtime_cycles);
        w.u64(self.total_ops);
        w.u64(self.total_transactions);
        self.misses.save_state(w);
        self.reissue.save_state(w);
        self.controllers.save_state(w);
        self.traffic.save_state(w);
        w.str(&self.faults.to_string());
        w.str(&self.adversary.to_string());
        w.u64(self.miss_latency_p50);
        w.u64(self.miss_latency_p99);
        w.u64(self.miss_latency_max);
        w.u64(self.completion_skew_ppm);
        self.engine.save_state(w);
        w.seq(self.violations.iter(), emit_violation);
    }

    /// Rebuilds a report from [`RunReport::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on truncated or corrupt input (including
    /// an unknown enum tag or an unparseable spec string).
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<RunReport, SnapshotError> {
        let protocol = match r.u8()? {
            0 => ProtocolKind::TokenB,
            1 => ProtocolKind::Snooping,
            2 => ProtocolKind::Directory,
            3 => ProtocolKind::Hammer,
            _ => return Err(SnapshotError::Corrupt("unknown protocol tag".to_string())),
        };
        let topology = match r.u8()? {
            0 => TopologyKind::Tree,
            1 => TopologyKind::Torus,
            _ => return Err(SnapshotError::Corrupt("unknown topology tag".to_string())),
        };
        let bandwidth = match r.u8()? {
            0 => BandwidthMode::Limited,
            1 => BandwidthMode::Unlimited,
            _ => return Err(SnapshotError::Corrupt("unknown bandwidth tag".to_string())),
        };
        let workload = r.str()?;
        let num_nodes = r.usize()?;
        let runtime_cycles = r.u64()?;
        let total_ops = r.u64()?;
        let total_transactions = r.u64()?;
        let misses = MissStats::load_state(r)?;
        let reissue = ReissueStats::load_state(r)?;
        let controllers = ControllerStats::load_state(r)?;
        let traffic = TrafficStats::load_state(r)?;
        let faults = FaultSpec::parse(&r.str()?)
            .map_err(|_| SnapshotError::Corrupt("unparseable fault spec".to_string()))?;
        let adversary = AdversarySpec::parse(&r.str()?)
            .map_err(|_| SnapshotError::Corrupt("unparseable adversary spec".to_string()))?;
        let miss_latency_p50 = r.u64()?;
        let miss_latency_p99 = r.u64()?;
        let miss_latency_max = r.u64()?;
        let completion_skew_ppm = r.u64()?;
        let engine = EngineStats::load_state(r)?;
        let violations = r.seq(read_violation)?;
        Ok(RunReport {
            protocol,
            topology,
            bandwidth,
            workload,
            num_nodes,
            runtime_cycles,
            total_ops,
            total_transactions,
            misses,
            reissue,
            controllers,
            traffic,
            faults,
            adversary,
            miss_latency_p50,
            miss_latency_p99,
            miss_latency_max,
            completion_skew_ppm,
            engine,
            violations,
        })
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} ({:?} bandwidth), workload {} x{} nodes",
            self.protocol, self.topology, self.bandwidth, self.workload, self.num_nodes
        )?;
        writeln!(
            f,
            "  runtime: {} cycles  ({:.1} cycles/transaction, {:.2} cycles/op)",
            self.runtime_cycles,
            self.cycles_per_transaction(),
            self.cycles_per_op()
        )?;
        writeln!(
            f,
            "  misses: {} ({:.1}% cache-to-cache), avg latency {:.1} ns, {} writebacks",
            self.misses.total_misses(),
            100.0 * self.misses.cache_to_cache_fraction(),
            self.misses.average_miss_latency(),
            self.misses.writebacks
        )?;
        writeln!(
            f,
            "  miss latency percentiles: p50 {} / p99 {} / max {} ns; completion skew {} ppm",
            self.miss_latency_p50,
            self.miss_latency_p99,
            self.miss_latency_max,
            self.completion_skew_ppm
        )?;
        let [p0, p1, p2, p3] = self.table2_row();
        writeln!(
            f,
            "  reissues: {:.2}% none, {:.2}% once, {:.2}% more, {:.2}% persistent",
            p0, p1, p2, p3
        )?;
        writeln!(f, "  traffic: {:.1} bytes/miss", self.bytes_per_miss())?;
        writeln!(
            f,
            "  engine: {} events, peak queue depth {}, peak in-flight messages {}",
            self.engine.events_delivered,
            self.engine.peak_queue_depth,
            self.engine.peak_arena_occupancy
        )?;
        writeln!(
            f,
            "  line-state plane: {} peak entries (mshr {}, wb {}, windows {}, home {}, \
             persistent {}), ~{} KiB",
            self.engine.state.total_entries(),
            self.engine.state.mshr_peak,
            self.engine.state.wb_buffer_peak,
            self.engine.state.wb_window_peak,
            self.engine.state.home_peak,
            self.engine.state.persistent_peak,
            self.engine.state.state_bytes / 1024
        )?;
        if self.engine.arena_accounting_errors > 0 {
            writeln!(
                f,
                "  WARNING: {} arena accounting error(s) — a message slot was over-released",
                self.engine.arena_accounting_errors
            )?;
        }
        if !self.faults.is_none() {
            writeln!(f, "  faults ({}): {}", self.faults, self.engine.faults)?;
        }
        if !self.adversary.is_none() {
            writeln!(
                f,
                "  adversary ({}): {}",
                self.adversary, self.engine.adversary
            )?;
        }
        if self.engine.sharding.shards > 0 {
            let s = &self.engine.sharding;
            writeln!(
                f,
                "  sharded: {} shard(s), lookahead {} ns, {} windows, {} sync stalls",
                s.shards, s.lookahead_ns, s.windows, s.sync_stalls
            )?;
        }
        write!(f, "  violations: {}", self.violations.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut traffic = TrafficStats::new();
        traffic.record(TrafficClass::Request, 8, 4);
        traffic.record(TrafficClass::DataResponseOrWriteback, 72, 2);
        let misses = MissStats {
            read_misses: 2,
            completed_misses: 2,
            total_miss_latency: 300,
            ..MissStats::default()
        };
        RunReport {
            protocol: ProtocolKind::TokenB,
            topology: TopologyKind::Torus,
            bandwidth: BandwidthMode::Limited,
            workload: "OLTP".to_string(),
            num_nodes: 16,
            runtime_cycles: 10_000,
            total_ops: 4_000,
            total_transactions: 16,
            misses,
            reissue: ReissueStats {
                not_reissued: 97,
                reissued_once: 2,
                reissued_more: 1,
                persistent: 0,
            },
            controllers: ControllerStats::new(),
            traffic,
            faults: FaultSpec::none(),
            adversary: AdversarySpec::none(),
            miss_latency_p50: 120,
            miss_latency_p99: 340,
            miss_latency_max: 400,
            completion_skew_ppm: 0,
            engine: EngineStats::default(),
            violations: Vec::new(),
        }
    }

    #[test]
    fn cycles_per_transaction_normalizes_by_node_count() {
        let r = report();
        assert!((r.cycles_per_transaction() - 10_000.0).abs() < 1e-9);
        assert!((r.cycles_per_op() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_breakdown_divides_by_misses() {
        let r = report();
        let breakdown = r.traffic_breakdown();
        assert!((breakdown.class(TrafficClass::Request) - 16.0).abs() < 1e-9);
        assert!((breakdown.class(TrafficClass::DataResponseOrWriteback) - 72.0).abs() < 1e-9);
        assert!((breakdown.total() - r.bytes_per_miss()).abs() < 1e-9);
    }

    #[test]
    fn table2_row_reports_percentages() {
        let r = report();
        let row = r.table2_row();
        assert!((row[0] - 97.0).abs() < 1e-9);
        assert!((row.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn verified_fails_when_violations_exist() {
        let mut r = report();
        assert!(r.verified().is_ok());
        r.violations.push(InvariantViolation::DuplicateOwner {
            addr: tc_types::BlockAddr::new(1),
            at: 5,
        });
        assert!(r.verified().is_err());
    }

    #[test]
    fn display_is_informative() {
        let text = report().to_string();
        assert!(text.contains("TokenB"));
        assert!(text.contains("cycles/transaction"));
        assert!(text.contains("bytes/miss"));
    }

    #[test]
    fn zero_division_guards_hold() {
        let mut r = report();
        r.total_transactions = 0;
        r.total_ops = 0;
        r.misses = MissStats::default();
        assert!(r.cycles_per_transaction() > 0.0);
        assert!(r.cycles_per_op() > 0.0);
        assert!(r.bytes_per_miss() >= 0.0);
    }

    #[test]
    fn label_is_compact() {
        assert_eq!(report().label(), "TokenB/Torus");
    }
}
