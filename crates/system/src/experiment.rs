//! Ready-made experiment configurations for every table and figure of the
//! paper's evaluation, shared by the benchmark binaries, the examples, and
//! the integration tests.

use tc_protocols::ProtocolRegistry;
use tc_types::{BandwidthMode, DirectoryMode, FaultSpec, ProtocolKind, SystemConfig, TopologyKind};
use tc_workloads::WorkloadProfile;

use crate::report::RunReport;
use crate::runner::{RunOptions, System};

/// A single experiment point: a configuration plus a workload.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Short label used in printed tables (e.g. `"TokenB-Torus"`).
    pub label: String,
    /// System configuration for this point.
    pub config: SystemConfig,
    /// Workload to run.
    pub workload: WorkloadProfile,
    /// Per-point fault spec; when non-empty it overrides the campaign-wide
    /// `RunOptions::faults` (the `faultsweep` campaign varies faults across
    /// points this way).
    pub faults: FaultSpec,
}

impl ExperimentPoint {
    /// Creates a point (with a reliable fabric).
    pub fn new(label: impl Into<String>, config: SystemConfig, workload: WorkloadProfile) -> Self {
        ExperimentPoint {
            label: label.into(),
            config,
            workload,
            faults: FaultSpec::none(),
        }
    }

    /// Returns this point with a per-point fault spec.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Builds and runs the point with the default protocol registry.
    pub fn run(&self, options: RunOptions) -> RunReport {
        self.run_with(options, tc_protocols::default_registry())
    }

    /// Builds and runs the point, constructing controllers through
    /// `registry` (for experimental protocol variants).
    pub fn run_with(&self, options: RunOptions, registry: &ProtocolRegistry) -> RunReport {
        let mut options = options;
        if !self.faults.is_none() {
            options.faults = self.faults;
        }
        let mut system = System::build_with(&self.config, &self.workload, registry);
        system.run(options)
    }
}

impl RunOptions {
    /// Standard run length used by the experiment campaigns: long enough for
    /// the relative protocol behaviour to stabilize, short enough to finish
    /// a full figure in minutes.
    pub fn standard() -> Self {
        RunOptions {
            ops_per_node: 12_000,
            max_cycles: 1_000_000_000,
            ..RunOptions::default()
        }
    }

    /// An abbreviated run used by tests and smoke checks.
    pub fn smoke() -> Self {
        RunOptions {
            ops_per_node: 1_500,
            max_cycles: 100_000_000,
            ..RunOptions::default()
        }
    }

    /// Run options for the full 64-node, million-ops-per-node sweep.
    pub fn sweep64() -> Self {
        RunOptions {
            ops_per_node: SWEEP64_OPS_PER_NODE,
            max_cycles: 200_000_000_000,
            ..RunOptions::default()
        }
    }
}

/// The base 16-processor configuration of Table 1.
pub fn base_config() -> SystemConfig {
    SystemConfig::isca03_default()
}

/// Table 2: TokenB reissue behaviour on the torus for each commercial
/// workload.
pub fn table2_points() -> Vec<ExperimentPoint> {
    WorkloadProfile::commercial()
        .into_iter()
        .map(|w| {
            ExperimentPoint::new(
                w.name,
                base_config()
                    .with_protocol(ProtocolKind::TokenB)
                    .with_topology(TopologyKind::Torus),
                w,
            )
        })
        .collect()
}

/// Figure 4a: runtime of Snooping on the tree vs TokenB on the tree and the
/// torus, each with limited and unlimited bandwidth, for one workload.
pub fn figure4a_points(workload: &WorkloadProfile) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for bandwidth in [BandwidthMode::Limited, BandwidthMode::Unlimited] {
        let suffix = match bandwidth {
            BandwidthMode::Limited => "3.2GB/s",
            BandwidthMode::Unlimited => "unlimited",
        };
        points.push(ExperimentPoint::new(
            format!("TokenB-Tree ({suffix})"),
            base_config()
                .with_protocol(ProtocolKind::TokenB)
                .with_topology(TopologyKind::Tree)
                .with_bandwidth(bandwidth),
            workload.clone(),
        ));
        points.push(ExperimentPoint::new(
            format!("Snooping-Tree ({suffix})"),
            base_config()
                .with_protocol(ProtocolKind::Snooping)
                .with_bandwidth(bandwidth),
            workload.clone(),
        ));
        points.push(ExperimentPoint::new(
            format!("TokenB-Torus ({suffix})"),
            base_config()
                .with_protocol(ProtocolKind::TokenB)
                .with_topology(TopologyKind::Torus)
                .with_bandwidth(bandwidth),
            workload.clone(),
        ));
    }
    points
}

/// Figure 4b: traffic of TokenB vs Snooping (limited bandwidth, each on its
/// natural interconnect) for one workload.
pub fn figure4b_points(workload: &WorkloadProfile) -> Vec<ExperimentPoint> {
    vec![
        ExperimentPoint::new(
            "TokenB",
            base_config()
                .with_protocol(ProtocolKind::TokenB)
                .with_topology(TopologyKind::Torus),
            workload.clone(),
        ),
        ExperimentPoint::new(
            "Snooping",
            base_config().with_protocol(ProtocolKind::Snooping),
            workload.clone(),
        ),
    ]
}

/// Figure 5a: runtime of TokenB, Hammer, and Directory on the torus, with
/// limited and unlimited bandwidth, plus the Directory variant with a
/// perfect (zero-latency) directory, for one workload.
pub fn figure5a_points(workload: &WorkloadProfile) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for bandwidth in [BandwidthMode::Limited, BandwidthMode::Unlimited] {
        let suffix = match bandwidth {
            BandwidthMode::Limited => "3.2GB/s",
            BandwidthMode::Unlimited => "unlimited",
        };
        for protocol in [
            ProtocolKind::TokenB,
            ProtocolKind::Hammer,
            ProtocolKind::Directory,
        ] {
            points.push(ExperimentPoint::new(
                format!("{protocol}-Torus ({suffix})"),
                base_config()
                    .with_protocol(protocol)
                    .with_topology(TopologyKind::Torus)
                    .with_bandwidth(bandwidth),
                workload.clone(),
            ));
        }
    }
    // The DRAM-directory-lookup sensitivity point: a perfect directory cache.
    let mut perfect = base_config()
        .with_protocol(ProtocolKind::Directory)
        .with_topology(TopologyKind::Torus);
    perfect.directory_mode = DirectoryMode::Perfect;
    points.push(ExperimentPoint::new(
        "Directory-Torus (perfect directory)",
        perfect,
        workload.clone(),
    ));
    points
}

/// Figure 5b: traffic of TokenB, Hammer, and Directory on the torus for one
/// workload.
pub fn figure5b_points(workload: &WorkloadProfile) -> Vec<ExperimentPoint> {
    [
        ProtocolKind::TokenB,
        ProtocolKind::Hammer,
        ProtocolKind::Directory,
    ]
    .into_iter()
    .map(|protocol| {
        ExperimentPoint::new(
            protocol.name(),
            base_config()
                .with_protocol(protocol)
                .with_topology(TopologyKind::Torus),
            workload.clone(),
        )
    })
    .collect()
}

/// The per-node operation count of the full 64-node sweep. At the engine's
/// measured throughput this is minutes of wall-clock per point in release
/// mode; tests scale it down via [`ExperimentPoint::run`]'s options while CI
/// runs one full point as a smoke check.
pub const SWEEP64_OPS_PER_NODE: u64 = 1_000_000;

/// The 64-node scale sweep: every protocol on every topology it supports
/// (snooping requires the ordered tree), on the contended OLTP calibration.
/// Seven points: TokenB/Directory/Hammer on both the torus and the tree,
/// plus Snooping on the tree.
pub fn sweep64_points() -> Vec<ExperimentPoint> {
    let workload = WorkloadProfile::oltp();
    let mut points = Vec::new();
    for protocol in [
        ProtocolKind::TokenB,
        ProtocolKind::Directory,
        ProtocolKind::Hammer,
        ProtocolKind::Snooping,
    ] {
        for topology in [TopologyKind::Torus, TopologyKind::Tree] {
            if protocol == ProtocolKind::Snooping && topology != TopologyKind::Tree {
                continue;
            }
            points.push(ExperimentPoint::new(
                format!("{protocol}-{topology:?}-64p"),
                base_config()
                    .with_nodes(64)
                    .with_protocol(protocol)
                    .with_topology(topology),
                workload.clone(),
            ));
        }
    }
    points
}

/// The reference fault mix for the `faultsweep` campaign: the acceptance
/// mix from the paper-reproduction issue — 1% loss, 0.5% duplication, 2%
/// jitter up to 150 ns, and a reorder window of 4 link hops.
pub fn faultsweep_reference_spec() -> FaultSpec {
    FaultSpec::none()
        .with_drop(0.01)
        .with_dup(0.005)
        .with_delay(0.02, 150)
        .with_reorder(4)
}

/// The `faultsweep` campaign: for each protocol that contracts to survive
/// any fault class, a fault-free baseline, one point per tolerated class,
/// and a combined point (the reference mix gated to the protocol's
/// contract). A contended hot-block workload on a small system keeps every
/// point fast while making the recovery machinery — reissue timeouts and
/// persistent requests — actually work for its living.
pub fn faultsweep_points() -> Vec<ExperimentPoint> {
    use tc_types::FaultKind;
    let workload = WorkloadProfile::hot_block();
    let mut points = Vec::new();
    for protocol in [
        ProtocolKind::TokenB,
        ProtocolKind::Hammer,
        ProtocolKind::Directory,
    ] {
        let config = base_config()
            .with_nodes(4)
            .with_protocol(protocol)
            .with_topology(TopologyKind::Torus);
        points.push(ExperimentPoint::new(
            format!("{protocol} (reliable)"),
            config.clone(),
            workload.clone(),
        ));
        for kind in protocol.tolerated_faults() {
            let spec = match kind {
                FaultKind::Drop => FaultSpec::none().with_drop(0.01),
                FaultKind::Duplicate => FaultSpec::none().with_dup(0.005),
                FaultKind::Delay => FaultSpec::none().with_delay(0.05, 200),
                FaultKind::Reorder => FaultSpec::none().with_reorder(4),
                FaultKind::LinkDown => FaultSpec::none().with_outage(1, 2, 10_000, 60_000),
            };
            points.push(
                ExperimentPoint::new(
                    format!("{protocol}+{kind}"),
                    config.clone(),
                    workload.clone(),
                )
                .with_faults(spec),
            );
        }
        let (combined, _gaps) = faultsweep_reference_spec().gated_for(protocol);
        points.push(
            ExperimentPoint::new(
                format!("{protocol}+combined"),
                config.clone(),
                workload.clone(),
            )
            .with_faults(combined),
        );
    }
    points
}

/// Question 5 (scalability): TokenB vs Directory traffic on the uniform
/// microbenchmark at increasing node counts.
pub fn scalability_points(num_nodes: usize) -> Vec<ExperimentPoint> {
    [
        ProtocolKind::TokenB,
        ProtocolKind::Directory,
        ProtocolKind::Hammer,
    ]
    .into_iter()
    .map(|protocol| {
        ExperimentPoint::new(
            format!("{protocol}-{num_nodes}p"),
            base_config()
                .with_nodes(num_nodes)
                .with_protocol(protocol)
                .with_topology(TopologyKind::Torus),
            WorkloadProfile::uniform_shared(),
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_all_three_commercial_workloads() {
        let points = table2_points();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.config.protocol, ProtocolKind::TokenB);
            assert_eq!(p.config.interconnect.topology, TopologyKind::Torus);
            assert!(p.config.validate().is_ok());
        }
    }

    #[test]
    fn figure4a_has_six_valid_points() {
        let points = figure4a_points(&WorkloadProfile::oltp());
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.config.validate().is_ok(), "{}", p.label);
        }
        assert!(points.iter().any(|p| p.label.contains("Snooping")));
        assert!(points.iter().any(|p| p.label.contains("Torus")));
    }

    #[test]
    fn figure5a_includes_the_perfect_directory_point() {
        let points = figure5a_points(&WorkloadProfile::apache());
        assert_eq!(points.len(), 7);
        assert!(points
            .iter()
            .any(|p| p.config.directory_mode == DirectoryMode::Perfect));
        for p in &points {
            assert!(p.config.validate().is_ok(), "{}", p.label);
        }
    }

    #[test]
    fn sweep64_covers_every_protocol_and_every_legal_topology() {
        let points = sweep64_points();
        assert_eq!(points.len(), 7);
        for p in &points {
            assert_eq!(p.config.num_nodes, 64);
            assert!(p.config.validate().is_ok(), "{}", p.label);
        }
        for protocol in ProtocolKind::ALL {
            assert!(
                points.iter().any(|p| p.config.protocol == protocol),
                "{protocol} missing from the sweep"
            );
        }
        assert!(points
            .iter()
            .any(|p| p.config.interconnect.topology == TopologyKind::Tree));
        assert!(points
            .iter()
            .any(|p| p.config.interconnect.topology == TopologyKind::Torus));
        assert_eq!(RunOptions::sweep64().ops_per_node, SWEEP64_OPS_PER_NODE);
    }

    #[test]
    fn scalability_points_grow_token_count_with_nodes() {
        let points = scalability_points(64);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.config.num_nodes, 64);
            assert!(p.config.validate().is_ok(), "{}", p.label);
        }
    }

    #[test]
    fn run_option_constructors_are_distinct_and_sane() {
        // `Default` stays the runner-level quick configuration; the named
        // constructors cover the campaign regimes (the deprecated
        // `default_options`/`smoke_options`/`sweep64_options` free functions
        // were removed once every caller moved to these).
        assert!(RunOptions::default().ops_per_node > 0);
        assert!(RunOptions::smoke().ops_per_node < RunOptions::standard().ops_per_node);
        assert_eq!(RunOptions::sweep64().ops_per_node, SWEEP64_OPS_PER_NODE);
    }

    #[test]
    fn a_point_can_be_run_end_to_end() {
        let mut config = base_config()
            .with_nodes(4)
            .with_protocol(ProtocolKind::TokenB);
        config.l2.size_bytes = 256 * 1024;
        let point = ExperimentPoint::new("smoke", config, WorkloadProfile::specjbb());
        let report = point.run(RunOptions {
            ops_per_node: 400,
            max_cycles: 20_000_000,
            ..RunOptions::default()
        });
        assert!(report.total_ops >= 1600);
        assert!(report.violations.is_empty());
    }
}
