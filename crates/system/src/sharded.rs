//! Sharded execution: one run split spatially across worker threads with
//! conservative, topology-derived lookahead (classic conservative PDES,
//! barrier-window flavor).
//!
//! # How the run is partitioned
//!
//! Each shard owns a *contiguous* range of nodes — their controllers,
//! processors, line tables, and outstanding-miss bookkeeping — plus its own
//! event queue and message arena. Everything a node does to itself (wakeups,
//! timers, cache hits) stays on its shard. The only cross-shard interaction
//! is a message send, and every send goes through the *one* global
//! interconnect model at a window boundary: the fabric's per-link bandwidth
//! state (`free_at` under [`tc_types::BandwidthMode::Limited`]) is
//! order-sensitive global state, so sends are committed serially, in a
//! canonical merged order, by the coordinator.
//!
//! # Why the windows are safe (lookahead)
//!
//! The window width is [`tc_interconnect::Interconnect::lookahead_ns`]: the
//! minimum hop count between any two *distinct* nodes times the link
//! latency, i.e. the minimum time any send needs before it can affect
//! another node. Every window `[start, end)` satisfies
//! `end - start <= lookahead` (the coordinator aligns boundaries to
//! lookahead multiples and skips ahead over idle gaps), so a send popped at
//! cycle `c >= end - lookahead` cannot produce a remote arrival before
//! `c + lookahead >= end` — committing all of a window's sends at its end
//! boundary never delivers into the past. The one exception is a node
//! sending to *itself* (zero links crossed); those arrivals are clamped to
//! the boundary, a legal extra delay on an unordered fabric that every
//! protocol already tolerates (it is exactly what the fault and adversary
//! planes inject on purpose).
//!
//! # Why `shards(1) == shards(N)`, bit for bit
//!
//! Determinism is by construction, not by luck:
//!
//! * Every event has a canonical key. Node-originated events (wakeups,
//!   timers, send-hand-offs) are keyed `(node, per-node monotone seq)` —
//!   a node's events are always processed on its home shard in `(cycle,
//!   key)` order, so the allocation sequence is a function of that node's
//!   history alone. Committed deliveries are keyed by the coordinator's
//!   global commit counter plus the arrival's index in the fan-out.
//! * Shards only exchange *logs* (sends and verifier operations), each
//!   tagged with the originating event's `(cycle, key)`; the coordinator
//!   merges them into one canonical order before touching shared state
//!   (fabric, fault/adversary planes, verifier).
//! * Fault and adversary RNG streams are forked *per source node* (see
//!   [`tc_interconnect::FaultPlane::new_per_node`]), so the dice a message
//!   sees depend on which node sent it, never on which shard or thread.
//! * All run-control decisions (draining, drain limit, livelock budget,
//!   termination) are made by the coordinator at window boundaries from
//!   merged totals — quantities that are themselves shard-invariant.
//!
//! The per-shard *capacity* telemetry (queue/arena peaks, per-shard event
//! counts in [`ShardStats`]) necessarily differs with the shard count;
//! [`crate::RunReport::determinism_view`] is the report view the
//! bit-identity contract is stated over.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

use tc_interconnect::{Adversary, FaultPlane, Interconnect};
use tc_sim::{Arena, ArenaRef};
use tc_types::{
    AccessOutcome, BlockAddr, CoherenceController, Cycle, EngineStats, FastHashMap, Message,
    MissKind, MsgKind, NodeId, Outbox, ReqId, ShardStats, Timer,
};

use crate::processor::{IssueDecision, Processor};
use crate::report::RunReport;
use crate::runner::{
    add_in_flight_tokens, completion_skew_ppm, final_audit_merged, latency_percentiles,
    merge_controller_stats, RunOptions, System,
};

/// High bit distinguishes coordinator-committed deliveries from
/// node-originated events; within a cycle, all node events order before all
/// deliveries (an arbitrary but fixed — hence deterministic — convention).
const DELIVERY_KEY_BIT: u64 = 1 << 63;

/// Canonical key for a node-originated event: the allocation sequence is a
/// function of the owning node's own processing history, so it is identical
/// at every shard count.
fn node_key(node: usize, seq: u64) -> u64 {
    debug_assert!(seq < (1 << 40), "per-node event sequence overflow");
    ((node as u64 + 1) << 40) | seq
}

/// Canonical key for a committed delivery: global commit order of the send,
/// then the arrival's index within the fan-out.
fn delivery_key(commit_seq: u64, arrival_idx: usize) -> u64 {
    debug_assert!(arrival_idx < (1 << 12), "fan-out wider than the key space");
    debug_assert!(commit_seq < (1 << 51), "commit sequence overflow");
    DELIVERY_KEY_BIT | (commit_seq << 12) | arrival_idx as u64
}

/// A shard-local event. Mirrors the serial engine's `SystemEvent`.
#[derive(Debug, Clone, Copy)]
enum ShardEvent {
    Wakeup(NodeId),
    Send(ArenaRef),
    Deliver { node: NodeId, msg: ArenaRef },
    Timer { node: NodeId, timer: Timer },
}

/// One queued event. Ordered by `(at, key)`; keys are unique, so the order
/// is total and the payload is never compared.
#[derive(Debug)]
struct QEntry {
    at: Cycle,
    key: u64,
    event: ShardEvent,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// A send logged by a shard, to be committed to the global fabric by the
/// coordinator in canonical `(at, key)` order.
#[derive(Debug)]
struct SendRec {
    at: Cycle,
    key: u64,
    msg: Message,
}

/// One verifier call logged by a shard. `(at, key, sub)` is the canonical
/// position of the call — the popped event's cycle and key plus a per-event
/// counter — while the payload carries the call's actual arguments (which
/// may reference future cycles, e.g. a hit's `done_at`).
#[derive(Debug)]
struct VRec {
    at: Cycle,
    key: u64,
    sub: u32,
    op: VerifyOp,
}

#[derive(Debug)]
enum VerifyOp {
    Write {
        node: NodeId,
        addr: BlockAddr,
        version: u64,
        at: Cycle,
    },
    Read {
        node: NodeId,
        addr: BlockAddr,
        version: u64,
        valid_since: Cycle,
        at: Cycle,
    },
    Persistent {
        node: NodeId,
        addr: BlockAddr,
        at: Cycle,
    },
    Completion {
        node: NodeId,
        addr: BlockAddr,
        at: Cycle,
    },
}

/// A committed message headed for one shard: the payload plus every
/// delivery (cycle, key, node) it owes that shard. A fan-out spanning
/// shards is cloned per shard; within a shard the payload is parked once.
#[derive(Debug)]
struct Envelope {
    msg: Message,
    deliveries: Vec<(Cycle, u64, NodeId)>,
}

enum Cmd {
    Window {
        end: Cycle,
        draining: bool,
        envelopes: Vec<Envelope>,
    },
    Finish,
}

/// What a shard reports back at each window boundary.
struct WindowDone {
    sends: Vec<SendRec>,
    vops: Vec<VRec>,
    popped: u64,
    /// Cumulative operations completed on this shard.
    completed: u64,
    /// Cumulative transactions completed on this shard.
    transactions: u64,
    /// Earliest pending event after the window, for global-min derivation.
    next_pending: Option<Cycle>,
    /// Latest cycle this shard has processed, for the final clock.
    max_popped: Cycle,
}

/// Everything a shard hands back when the run ends.
struct ShardFinal {
    controllers: Vec<Box<dyn CoherenceController>>,
    processors: Vec<Processor>,
    completions: Vec<u64>,
    samples: Vec<Cycle>,
    max_miss_latency: Cycle,
    delivered: u64,
    peak_queue: u64,
    arena_peak: u64,
    arena_errors: u64,
    /// Per still-pending delivery: `(block, tokens, owner-token count)`,
    /// the shard's contribution to the final token-conservation audit.
    in_flight: Vec<(BlockAddr, i64, i64)>,
}

/// One shard: a contiguous node range `[lo, hi)` and everything those nodes
/// own, plus this window's outgoing logs.
struct Shard {
    lo: usize,
    block_bytes: u64,
    queue: BinaryHeap<Reverse<QEntry>>,
    arena: Arena<Message>,
    controllers: Vec<Box<dyn CoherenceController>>,
    processors: Vec<Processor>,
    outstanding_writes: FastHashMap<ReqId, bool>,
    node_seq: Vec<u64>,
    completions: Vec<u64>,
    samples: Vec<Cycle>,
    max_miss_latency: Cycle,
    completed: u64,
    delivered: u64,
    peak_queue: u64,
    max_popped: Cycle,
    draining: bool,
    sends: Vec<SendRec>,
    vops: Vec<VRec>,
    /// Canonical position of the event being processed, stamped onto every
    /// verifier op it emits.
    cur_at: Cycle,
    cur_key: u64,
    cur_sub: u32,
}

impl Shard {
    fn new(
        lo: usize,
        hi: usize,
        controllers: Vec<Box<dyn CoherenceController>>,
        processors: Vec<Processor>,
        block_bytes: u64,
    ) -> Self {
        let mut shard = Shard {
            lo,
            block_bytes,
            queue: BinaryHeap::new(),
            arena: Arena::new(),
            controllers,
            processors,
            outstanding_writes: FastHashMap::default(),
            node_seq: vec![0; hi - lo],
            completions: vec![0; hi - lo],
            samples: Vec::new(),
            max_miss_latency: 0,
            completed: 0,
            delivered: 0,
            peak_queue: 0,
            max_popped: 0,
            draining: false,
            sends: Vec::new(),
            vops: Vec::new(),
            cur_at: 0,
            cur_key: 0,
            cur_sub: 0,
        };
        for n in lo..hi {
            let key = shard.next_key(NodeId::new(n));
            shard.schedule(0, key, ShardEvent::Wakeup(NodeId::new(n)));
        }
        shard
    }

    fn local(&self, node: NodeId) -> usize {
        node.index() - self.lo
    }

    fn next_key(&mut self, node: NodeId) -> u64 {
        let local = node.index() - self.lo;
        let seq = self.node_seq[local];
        self.node_seq[local] += 1;
        node_key(node.index(), seq)
    }

    fn schedule(&mut self, at: Cycle, key: u64, event: ShardEvent) {
        self.queue.push(Reverse(QEntry { at, key, event }));
        self.peak_queue = self.peak_queue.max(self.queue.len() as u64);
    }

    fn vop(&mut self, op: VerifyOp) {
        let sub = self.cur_sub;
        self.cur_sub += 1;
        self.vops.push(VRec {
            at: self.cur_at,
            key: self.cur_key,
            sub,
            op,
        });
    }

    fn ingest(&mut self, envelopes: Vec<Envelope>) {
        for env in envelopes {
            let parked = self
                .arena
                .insert_shared(env.msg, env.deliveries.len() as u32);
            for (at, key, node) in env.deliveries {
                self.schedule(at, key, ShardEvent::Deliver { node, msg: parked });
            }
        }
    }

    /// Processes every pending event with `cycle < end` in `(cycle, key)`
    /// order, logging sends and verifier ops instead of applying them.
    fn process_window(&mut self, end: Cycle, draining: bool, out: &mut Outbox) -> WindowDone {
        self.draining = draining;
        let mut popped = 0u64;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at >= end {
                break;
            }
            let Reverse(QEntry {
                at: now,
                key,
                event,
            }) = self.queue.pop().unwrap();
            self.cur_at = now;
            self.cur_key = key;
            self.cur_sub = 0;
            self.max_popped = self.max_popped.max(now);
            popped += 1;
            match event {
                ShardEvent::Wakeup(node) => {
                    if !self.draining {
                        self.processor_step(now, node, out);
                    }
                }
                ShardEvent::Send(msg_ref) => {
                    let msg = self.arena.take(msg_ref);
                    if matches!(msg.kind, MsgKind::PersistentRequest { .. }) {
                        // Fairness oracle: the bounded-wait clock starts at
                        // the first persistent request a (node, block) pair
                        // puts on the wire.
                        self.vop(VerifyOp::Persistent {
                            node: msg.src,
                            addr: msg.addr,
                            at: now,
                        });
                    }
                    self.sends.push(SendRec { at: now, key, msg });
                }
                ShardEvent::Deliver { node, msg: msg_ref } => {
                    let msg = self.arena.get(msg_ref);
                    self.controllers[node.index() - self.lo].handle_message(now, msg, out);
                    self.arena.release(msg_ref);
                    self.process_outbox(now, node, out);
                }
                ShardEvent::Timer { node, timer } => {
                    self.controllers[node.index() - self.lo].handle_timer(now, timer, out);
                    self.process_outbox(now, node, out);
                }
            }
        }
        self.delivered += popped;
        WindowDone {
            sends: std::mem::take(&mut self.sends),
            vops: std::mem::take(&mut self.vops),
            popped,
            completed: self.completed,
            transactions: self.processors.iter().map(|p| p.transactions()).sum(),
            next_pending: self.queue.peek().map(|Reverse(e)| e.at),
            max_popped: self.max_popped,
        }
    }

    /// Mirror of the serial engine's `processor_step`, with verifier calls
    /// replaced by log records.
    fn processor_step(&mut self, now: Cycle, node: NodeId, out: &mut Outbox) {
        let local = self.local(node);
        let (decision, think) = self.processors[local].next_issue(now);
        match decision {
            IssueDecision::Finished | IssueDecision::Blocked => {}
            IssueDecision::Issue(op) => {
                let issue_time = now + think;
                let block = op.addr.block(self.block_bytes);
                let is_write = op.kind.is_write();
                let outcome = self.controllers[local].access(issue_time, &op, out);
                match outcome {
                    AccessOutcome::Hit {
                        latency,
                        version,
                        valid_since,
                    } => {
                        self.processors[local].note_hit(issue_time);
                        self.completed += 1;
                        self.completions[local] += 1;
                        let done_at = issue_time + latency;
                        if is_write {
                            self.vop(VerifyOp::Write {
                                node,
                                addr: block,
                                version,
                                at: done_at,
                            });
                        } else {
                            // See the serial engine: the legality window
                            // opens at the serialization lower bound the
                            // protocol reports, not at the access.
                            self.vop(VerifyOp::Read {
                                node,
                                addr: block,
                                version,
                                valid_since: valid_since.min(issue_time),
                                at: done_at,
                            });
                        }
                        let key = self.next_key(node);
                        self.schedule(done_at.max(issue_time + 1), key, ShardEvent::Wakeup(node));
                    }
                    AccessOutcome::Miss => {
                        self.outstanding_writes.insert(op.id, is_write);
                        self.processors[local].note_miss(op.id, issue_time);
                        let key = self.next_key(node);
                        self.schedule(issue_time + 1, key, ShardEvent::Wakeup(node));
                    }
                }
                self.process_outbox(now, node, out);
            }
        }
    }

    /// Mirror of the serial engine's `process_outbox`: sends are parked
    /// locally and handed to the coordinator when their `Send` event pops;
    /// completions log their verifier calls.
    fn process_outbox(&mut self, now: Cycle, node: NodeId, out: &mut Outbox) {
        for msg in out.messages.drain(..) {
            let at = msg.sent_at.max(now);
            let parked = self.arena.insert(msg);
            let key = self.next_key(node);
            self.schedule(at, key, ShardEvent::Send(parked));
        }
        for (at, timer) in out.timers.drain(..) {
            let key = self.next_key(node);
            self.schedule(at.max(now), key, ShardEvent::Timer { node, timer });
        }
        for completion in out.completions.drain(..) {
            let latency = completion.completed_at.saturating_sub(completion.issued_at);
            self.max_miss_latency = self.max_miss_latency.max(latency);
            self.samples.push(latency);
            self.vop(VerifyOp::Completion {
                node,
                addr: completion.addr,
                at: completion.completed_at,
            });
            let is_write = self
                .outstanding_writes
                .remove(&completion.req_id)
                .unwrap_or(completion.kind != MissKind::Read);
            if is_write {
                self.vop(VerifyOp::Write {
                    node,
                    addr: completion.addr,
                    version: completion.data_version,
                    at: completion.completed_at,
                });
            } else {
                self.vop(VerifyOp::Read {
                    node,
                    addr: completion.addr,
                    version: completion.data_version,
                    valid_since: completion.issued_at,
                    at: completion.completed_at,
                });
            }
            let local = self.local(node);
            let outcome = self.processors[local].note_completion(completion.req_id, now);
            if outcome.completed {
                self.completed += 1;
                self.completions[local] += 1;
            }
            if outcome.was_blocked {
                let key = self.next_key(node);
                self.schedule(now + 1, key, ShardEvent::Wakeup(node));
            }
        }
    }

    fn into_final(mut self) -> ShardFinal {
        // Tokens still in flight to this shard's nodes: pending `Deliver`
        // events, exactly like the serial engine's final audit. Unprocessed
        // `Send` events are deliberately not counted — their tokens were
        // never injected into the fabric.
        let mut in_flight = Vec::new();
        for Reverse(entry) in self.queue.iter() {
            if let ShardEvent::Deliver { msg, .. } = entry.event {
                let msg = self.arena.get(msg);
                let tokens = msg.kind.token_count() as i64;
                if tokens > 0 {
                    let owner = if msg.kind.carries_owner_token() { 1 } else { 0 };
                    in_flight.push((msg.addr, tokens, owner));
                }
            }
        }
        ShardFinal {
            controllers: std::mem::take(&mut self.controllers),
            processors: std::mem::take(&mut self.processors),
            completions: std::mem::take(&mut self.completions),
            samples: std::mem::take(&mut self.samples),
            max_miss_latency: self.max_miss_latency,
            delivered: self.delivered,
            peak_queue: self.peak_queue,
            arena_peak: self.arena.high_water() as u64,
            arena_errors: self.arena.accounting_errors(),
            in_flight,
        }
    }
}

fn worker(
    mut shard: Shard,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::SyncSender<WindowDone>,
) -> ShardFinal {
    let mut out = Outbox::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Window {
                end,
                draining,
                envelopes,
            } => {
                shard.ingest(envelopes);
                let done = shard.process_window(end, draining, &mut out);
                if tx.send(done).is_err() {
                    break;
                }
            }
            Cmd::Finish => break,
        }
    }
    shard.into_final()
}

/// Runs `system` to completion across `options.shards` worker threads.
/// Called by [`System::run`] when `options.shards > 0`; restores the merged
/// controllers, processors, fabric, and verifier into `system` afterwards so
/// post-run inspection (`controller_debug`, `outstanding_blocks`) works the
/// same as after a serial run.
pub(crate) fn run_sharded(system: &mut System, options: &RunOptions) -> RunReport {
    let num_nodes = system.config.num_nodes;
    let num_shards = (options.shards.max(1) as usize).min(num_nodes);
    let target_total = options.ops_per_node * num_nodes as u64;
    let drain_limit = options.max_cycles.saturating_mul(2);
    let lookahead = system.interconnect.lookahead_ns();
    system.starvation_bound = options.starvation_bound(&system.config);
    let bound = system.starvation_bound;
    if options.adversary.sabotage != 0 {
        let victim = options.adversary.victim_node as usize % num_nodes;
        system.controllers[victim].set_arbiter_sabotage(true);
    }

    // Move the shared state out of the system: controllers and processors
    // are dealt to the shards, the fabric and verifier stay with the
    // coordinator. Everything is put back (merged, in node order) at the
    // end.
    let mut fabric = std::mem::replace(
        &mut system.interconnect,
        Interconnect::new(num_nodes, system.config.interconnect),
    );
    let mut verifier = std::mem::take(&mut system.verifier);
    let mut citer = std::mem::take(&mut system.controllers).into_iter();
    let mut piter = std::mem::take(&mut system.processors).into_iter();

    let mut node_shard = vec![0usize; num_nodes];
    let mut shards: Vec<Shard> = Vec::with_capacity(num_shards);
    let mut shard_lo = vec![0usize; num_shards];
    for (s, lo_slot) in shard_lo.iter_mut().enumerate() {
        let lo = s * num_nodes / num_shards;
        let hi = (s + 1) * num_nodes / num_shards;
        *lo_slot = lo;
        for slot in node_shard.iter_mut().take(hi).skip(lo) {
            *slot = s;
        }
        let controllers: Vec<_> = (lo..hi).map(|_| citer.next().unwrap()).collect();
        let processors: Vec<_> = (lo..hi).map(|_| piter.next().unwrap()).collect();
        shards.push(Shard::new(
            lo,
            hi,
            controllers,
            processors,
            system.config.block_bytes,
        ));
    }

    // Per-source-node RNG streams: the dice a message sees depend on which
    // node sent it, never on which shard the node landed on, so fault and
    // adversary decisions reproduce (seed, spec) exactly at any shard count.
    let mut fault_plane = (!options.faults.is_none()).then(|| {
        FaultPlane::new_per_node(
            options.faults,
            system.config.protocol,
            system.config.seed,
            system.config.interconnect.link_latency_ns,
            num_nodes,
        )
    });
    let mut adversary_plane = (!options.adversary.is_none()).then(|| {
        Adversary::new_per_node(
            options.adversary,
            system.config.seed,
            system.config.interconnect.link_latency_ns,
            num_nodes,
        )
    });

    let mut stats = ShardStats {
        shards: num_shards as u32,
        lookahead_ns: lookahead,
        windows: 0,
        sync_stalls: 0,
        shard_events: vec![0; num_shards],
        shard_peak_queue: vec![0; num_shards],
        shard_peak_arena: vec![0; num_shards],
    };

    // Run-control state, all mutated at window boundaries only.
    let mut draining = false;
    let mut drain_limit_hit = false;
    let mut reached_target_at: Option<Cycle> = None;
    let mut ops_at_target = 0u64;
    let mut transactions_at_target = 0u64;
    let mut events_since_progress = 0u64;
    let mut livelock_hit = false;
    let mut completed_total = 0u64;
    let mut transactions_total = 0u64;
    let mut final_now: Cycle = 0;
    let mut boundary: Cycle = 0;
    let mut commit_seq = 0u64;
    let mut pending: Vec<Vec<Envelope>> = (0..num_shards).map(|_| Vec::new()).collect();
    let mut next_pending: Vec<Option<Cycle>> = vec![Some(0); num_shards];
    let mut finals: Vec<ShardFinal> = Vec::with_capacity(num_shards);

    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(num_shards);
        let mut done_rxs = Vec::with_capacity(num_shards);
        let mut handles = Vec::with_capacity(num_shards);
        for shard in shards.drain(..) {
            let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Cmd>(1);
            let (done_tx, done_rx) = mpsc::sync_channel::<WindowDone>(1);
            cmd_txs.push(cmd_tx);
            done_rxs.push(done_rx);
            handles.push(scope.spawn(move || worker(shard, cmd_rx, done_tx)));
        }

        let mut by_shard: Vec<Vec<(Cycle, u64, NodeId)>> =
            (0..num_shards).map(|_| Vec::new()).collect();
        let mut arrivals: Vec<(Cycle, NodeId)> = Vec::new();

        loop {
            // Global minimum pending cycle across shard queues and
            // not-yet-dispatched envelopes; `None` means the run drained.
            let mut global_min: Option<Cycle> = None;
            let mut fold = |c: Cycle| global_min = Some(global_min.map_or(c, |m: Cycle| m.min(c)));
            for s in 0..num_shards {
                if let Some(c) = next_pending[s] {
                    fold(c);
                }
                for env in &pending[s] {
                    for &(at, _, _) in &env.deliveries {
                        fold(at);
                    }
                }
            }
            let Some(global_min) = global_min else { break };

            if !draining && (completed_total >= target_total || global_min >= options.max_cycles) {
                draining = true;
                // The serial engine stamps the cycle of the pop that crossed
                // the target; boundary quantization makes that the end of
                // the window the target was crossed in (within one lookahead
                // of any legal schedule's stamp, and shard-count-invariant).
                reached_target_at = Some(if completed_total >= target_total {
                    boundary
                } else {
                    global_min
                });
                ops_at_target = completed_total;
                transactions_at_target = transactions_total;
            }
            if draining && global_min >= drain_limit {
                drain_limit_hit = true;
                break;
            }

            let mut end = (global_min / lookahead + 1) * lookahead;
            if draining {
                end = end.min(drain_limit);
            }
            stats.windows += 1;
            for s in 0..num_shards {
                cmd_txs[s]
                    .send(Cmd::Window {
                        end,
                        draining,
                        envelopes: std::mem::take(&mut pending[s]),
                    })
                    .expect("shard worker hung up mid-run");
            }
            let mut dones: Vec<WindowDone> = Vec::with_capacity(num_shards);
            for done_rx in &done_rxs {
                dones.push(done_rx.recv().expect("shard worker hung up mid-run"));
            }

            let mut window_events = 0u64;
            let prev_completed = completed_total;
            completed_total = 0;
            transactions_total = 0;
            for (s, done) in dones.iter().enumerate() {
                window_events += done.popped;
                stats.shard_events[s] += done.popped;
                if done.popped == 0 {
                    stats.sync_stalls += 1;
                }
                completed_total += done.completed;
                transactions_total += done.transactions;
                next_pending[s] = done.next_pending;
                final_now = final_now.max(done.max_popped);
            }

            // Verifier merge: every shard's logged calls, replayed into the
            // one verifier in canonical (cycle, key, sub) order.
            let mut vops: Vec<VRec> = Vec::new();
            for done in &mut dones {
                vops.append(&mut done.vops);
            }
            vops.sort_unstable_by_key(|v| (v.at, v.key, v.sub));
            for vrec in vops {
                match vrec.op {
                    VerifyOp::Write {
                        node,
                        addr,
                        version,
                        at,
                    } => verifier.record_write(node, addr, version, at),
                    VerifyOp::Read {
                        node,
                        addr,
                        version,
                        valid_since,
                        at,
                    } => verifier.check_read(node, addr, version, valid_since, at),
                    VerifyOp::Persistent { node, addr, at } => {
                        verifier.note_persistent_request(node, addr, at)
                    }
                    VerifyOp::Completion { node, addr, at } => {
                        verifier.note_completion(node, addr, at, bound)
                    }
                }
            }

            // Send commit: every shard's logged sends, applied to the one
            // global fabric (and fault/adversary planes) in canonical
            // (cycle, key) order. Arrivals are clamped to the boundary —
            // a no-op for anything that crossed a link (the lookahead
            // guarantees it) and a legal delay for self-sends.
            let mut sends: Vec<SendRec> = Vec::new();
            for done in &mut dones {
                sends.append(&mut done.sends);
            }
            sends.sort_unstable_by_key(|s| (s.at, s.key));
            for rec in sends {
                arrivals.clear();
                fabric.send_arrivals(rec.at, &rec.msg, &mut arrivals);
                if let Some(plane) = fault_plane.as_mut() {
                    if rec.msg.reissue {
                        plane.stats_mut().reissue_timeouts += 1;
                    }
                    plane.apply(rec.at, &rec.msg, &mut arrivals);
                }
                if let Some(plane) = adversary_plane.as_mut() {
                    plane.apply(rec.at, &rec.msg, &mut arrivals);
                }
                if arrivals.is_empty() {
                    continue;
                }
                let seq = commit_seq;
                commit_seq += 1;
                for (idx, &(at, node)) in arrivals.iter().enumerate() {
                    by_shard[node_shard[node.index()]].push((
                        at.max(end),
                        delivery_key(seq, idx),
                        node,
                    ));
                }
                for s in 0..num_shards {
                    if by_shard[s].is_empty() {
                        continue;
                    }
                    pending[s].push(Envelope {
                        msg: rec.msg.clone(),
                        deliveries: std::mem::take(&mut by_shard[s]),
                    });
                }
            }

            boundary = end;

            // Livelock watchdog, window-quantized: windows are at most one
            // lookahead wide, so the budget still bounds the run tightly.
            if completed_total != prev_completed {
                events_since_progress = 0;
            } else {
                events_since_progress += window_events;
                if events_since_progress >= options.livelock_events_budget {
                    livelock_hit = true;
                    eprintln!(
                        "livelock watchdog: {events_since_progress} events without a completed \
                         op at cycle {boundary}; cutting the sharded run off"
                    );
                    break;
                }
            }
        }

        for cmd_tx in &cmd_txs {
            let _ = cmd_tx.send(Cmd::Finish);
        }
        for handle in handles {
            finals.push(handle.join().expect("shard worker panicked"));
        }
    });

    // Merge the shards back together, in node order.
    let mut controllers_back: Vec<Box<dyn CoherenceController>> = Vec::with_capacity(num_nodes);
    let mut processors_back: Vec<Processor> = Vec::with_capacity(num_nodes);
    let mut completions_per_node = vec![0u64; num_nodes];
    let mut samples: Vec<Cycle> = Vec::new();
    let mut max_miss_latency: Cycle = 0;
    let mut delivered_total = 0u64;
    let mut arena_errors = 0u64;
    let mut peak_queue = 0u64;
    let mut peak_arena = 0u64;
    let mut in_flight_tokens: FastHashMap<BlockAddr, (i64, i64)> = FastHashMap::default();
    for (s, fin) in finals.into_iter().enumerate() {
        stats.shard_peak_queue[s] = fin.peak_queue;
        stats.shard_peak_arena[s] = fin.arena_peak;
        peak_queue = peak_queue.max(fin.peak_queue);
        peak_arena = peak_arena.max(fin.arena_peak);
        delivered_total += fin.delivered;
        arena_errors += fin.arena_errors;
        for (addr, tokens, owner) in fin.in_flight {
            let entry = in_flight_tokens.entry(addr).or_insert((0, 0));
            entry.0 += tokens;
            entry.1 += owner;
        }
        for (i, c) in fin.completions.into_iter().enumerate() {
            completions_per_node[shard_lo[s] + i] = c;
        }
        samples.extend(fin.samples);
        max_miss_latency = max_miss_latency.max(fin.max_miss_latency);
        controllers_back.extend(fin.controllers);
        processors_back.extend(fin.processors);
    }
    // Committed-but-undispatched envelopes (a drain-limit or livelock cut
    // mid-flight): their tokens are in the fabric, so the conservation
    // audit must see them — one count per delivery, like pending `Deliver`
    // events.
    for bucket in &pending {
        for env in bucket {
            for _ in &env.deliveries {
                add_in_flight_tokens(&mut in_flight_tokens, &env.msg);
            }
        }
    }

    let runtime_cycles = match reached_target_at {
        Some(cycles) => cycles,
        None => {
            ops_at_target = completed_total;
            transactions_at_target = transactions_total;
            final_now
        }
    };

    verifier.sweep_escalations(final_now, bound);
    final_audit_merged(
        &mut verifier,
        &system.config,
        &controllers_back,
        &processors_back,
        &in_flight_tokens,
        final_now,
        drain_limit_hit,
        livelock_hit.then_some(events_since_progress),
    );

    let (misses, reissue, controller_stats, line_state) = merge_controller_stats(&controllers_back);

    let mut fault_stats = fault_plane.as_ref().map(|p| p.stats()).unwrap_or_default();
    if fault_plane.is_some() {
        fault_stats.persistent_activations = controller_stats.persistent_requests_initiated;
        fault_stats.max_recovery_ns = max_miss_latency;
    }
    let adversary_stats = adversary_plane
        .as_ref()
        .map(|p| p.stats())
        .unwrap_or_default();

    let (miss_latency_p50, miss_latency_p99, miss_latency_max) = latency_percentiles(&mut samples);
    let skew = completion_skew_ppm(&completions_per_node);

    // Put the merged state back so post-run accessors behave as after a
    // serial run.
    system.controllers = controllers_back;
    system.processors = processors_back;
    system.interconnect = fabric;
    system.verifier = verifier;
    system.completed_ops = completed_total;
    system.max_miss_latency = max_miss_latency;
    system.miss_latency_samples = samples;
    system.completions_per_node = completions_per_node;

    RunReport {
        protocol: system.config.protocol,
        topology: system.config.interconnect.topology,
        bandwidth: system.config.interconnect.bandwidth,
        workload: system.workload.name.to_string(),
        num_nodes,
        runtime_cycles,
        total_ops: ops_at_target,
        total_transactions: transactions_at_target,
        misses,
        reissue,
        controllers: controller_stats,
        traffic: system.interconnect.traffic().clone(),
        faults: options.faults,
        adversary: options.adversary,
        miss_latency_p50,
        miss_latency_p99,
        miss_latency_max,
        completion_skew_ppm: skew,
        engine: EngineStats {
            peak_queue_depth: peak_queue,
            peak_arena_occupancy: peak_arena,
            events_delivered: delivered_total,
            arena_accounting_errors: arena_errors,
            state: line_state,
            faults: fault_stats,
            adversary: adversary_stats,
            sharding: stats,
        },
        violations: system.verifier.violations().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{AdversarySpec, FaultSpec, ProtocolKind, SystemConfig};
    use tc_workloads::WorkloadProfile;

    fn small_config(protocol: ProtocolKind, seed: u64) -> SystemConfig {
        let mut config = SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(protocol)
            .with_seed(seed);
        config.l2.size_bytes = 256 * 1024;
        config
    }

    fn run_at(config: &SystemConfig, options: RunOptions, shards: u32) -> RunReport {
        let mut system = System::build(config, &WorkloadProfile::oltp());
        system.run(options.with_shards(shards))
    }

    fn base_options() -> RunOptions {
        RunOptions {
            ops_per_node: 600,
            max_cycles: 50_000_000,
            ..RunOptions::default()
        }
    }

    /// The acceptance bar: the same run at shard counts 1, 2, and 4 yields
    /// bit-identical reports (behavioral view) for every protocol and
    /// several seeds.
    #[test]
    fn shard_count_is_invisible_across_protocols_and_seeds() {
        for protocol in [
            ProtocolKind::TokenB,
            ProtocolKind::Directory,
            ProtocolKind::Hammer,
            ProtocolKind::Snooping,
        ] {
            for seed in [12, 99] {
                let config = small_config(protocol, seed);
                let one = run_at(&config, base_options(), 1).determinism_view();
                assert!(
                    one.violations.is_empty(),
                    "{protocol:?}/{seed}: {:?}",
                    one.violations
                );
                assert!(one.total_ops >= 4 * 600, "{protocol:?}/{seed}");
                for shards in [2u32, 4] {
                    let many = run_at(&config, base_options(), shards).determinism_view();
                    assert_eq!(
                        one, many,
                        "{protocol:?} seed {seed}: shards(1) != shards({shards})"
                    );
                }
            }
        }
    }

    /// Per-source-node RNG streams: a faulted + adversarial run reproduces
    /// (seed, spec) exactly at every shard count — the fault/adversary dice
    /// a message sees cannot depend on the partition.
    #[test]
    fn faulted_and_adversarial_runs_are_shard_count_invariant() {
        let faults = FaultSpec::none()
            .with_drop(0.002)
            .with_dup(0.001)
            .with_delay(0.01, 120)
            .with_seed(7);
        let adversary = AdversarySpec::none().with_reorder(4).with_seed(9);
        let options = base_options()
            .with_faults(faults)
            .with_adversary(adversary)
            .with_livelock_budget(2_000_000);
        let config = small_config(ProtocolKind::TokenB, 12);
        let one = run_at(&config, options, 1).determinism_view();
        assert!(one.engine.faults.total_injected() > 0 || one.engine.faults.reissue_timeouts > 0);
        for shards in [2u32, 4] {
            let many = run_at(&config, options, shards).determinism_view();
            assert_eq!(one, many, "faulted run: shards(1) != shards({shards})");
        }
    }

    /// Shard counts above the node count clamp instead of panicking or
    /// changing results.
    #[test]
    fn shard_count_clamps_to_node_count() {
        let config = small_config(ProtocolKind::Directory, 12);
        let four = run_at(&config, base_options(), 4).determinism_view();
        let sixteen = run_at(&config, base_options(), 16).determinism_view();
        assert_eq!(four, sixteen);
    }

    /// The sharded report carries real sharding telemetry.
    #[test]
    fn sharded_report_records_topology_derived_lookahead() {
        let config = small_config(ProtocolKind::TokenB, 12);
        let report = run_at(&config, base_options(), 2);
        let sharding = &report.engine.sharding;
        assert_eq!(sharding.shards, 2);
        assert!(sharding.lookahead_ns > 0);
        assert!(sharding.windows > 0);
        assert_eq!(sharding.shard_events.len(), 2);
        assert_eq!(
            sharding.shard_events.iter().sum::<u64>(),
            report.engine.events_delivered
        );
        // Serial runs stay untouched: no shard stats, and the legacy
        // engine's schedule.
        let serial = run_at(&config, base_options(), 0);
        assert_eq!(serial.engine.sharding, ShardStats::default());
    }

    /// Checkpointing composes with the serial engine only; the combination
    /// must refuse loudly, not silently skip snapshots.
    #[test]
    #[should_panic(expected = "checkpointing is not supported under sharded execution")]
    fn sharded_run_with_checkpoints_panics() {
        let config = small_config(ProtocolKind::TokenB, 12);
        let mut system = System::build(&config, &WorkloadProfile::oltp());
        system.run(base_options().with_shards(2).with_checkpoint_every(1000));
    }
}
