//! Full-system assembly: processors, nodes, the event-driven runner,
//! verification, and experiment configuration.
//!
//! This crate glues the substrates together into the 16-processor target
//! system of the paper's Table 1 and drives it:
//!
//! * [`Processor`] — a miss-overlap processor model that issues the workload
//!   generator's memory operations, hides hit latency behind computation, and
//!   keeps several misses outstanding (the memory-level parallelism that
//!   matters when comparing protocols);
//! * [`System`] — one interconnect, N nodes (each a processor + coherence
//!   controller for one of the four protocols), and a deterministic
//!   event-driven runner;
//! * [`Verifier`] — checks, during the run, that every load returns the value
//!   of the most recent completed store (the safety property token counting
//!   is supposed to guarantee), and, at the end of the run, that tokens were
//!   conserved, that at most one writer existed per block, and that no
//!   request starved;
//! * [`RunReport`] — the measurements every experiment consumes: normalized
//!   runtime (cycles per transaction), miss and reissue statistics (Table 2),
//!   and traffic per miss broken down by message class (Figures 4b and 5b);
//! * [`experiment`] — ready-made configurations for each figure and table of
//!   the paper, shared by the benchmark binaries, the examples, and the
//!   integration tests;
//! * [`Campaign`] — a builder-style driver that executes a whole set of
//!   experiment points across OS threads (each point is an independently
//!   seeded, hermetic simulation, so parallelism changes wall-clock only,
//!   never results) and aggregates the reports into the paper's tables.
//!
//! Controllers are constructed through the `tc_protocols` registry: the four
//! paper protocols are registered by default, and [`System::build_with`]
//! accepts a custom registry so a new protocol variant is a registration
//! rather than an engine edit.
//!
//! # Example
//!
//! ```
//! use tc_system::{RunOptions, System};
//! use tc_types::{ProtocolKind, SystemConfig};
//! use tc_workloads::WorkloadProfile;
//!
//! let config = SystemConfig::isca03_default()
//!     .with_nodes(4)
//!     .with_protocol(ProtocolKind::TokenB);
//! let mut system = System::build(&config, &WorkloadProfile::specjbb());
//! let report = system.run(RunOptions {
//!     ops_per_node: 200,
//!     max_cycles: 2_000_000,
//!     ..RunOptions::default()
//! });
//! assert!(report.total_ops >= 4 * 200);
//! assert!(report.violations.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod experiment;
pub mod processor;
pub mod report;
pub mod runner;
mod sharded;
pub mod verify;

pub use campaign::{
    run_to_json, Campaign, CampaignEvent, CampaignReport, CampaignRun, CampaignSummary,
};
pub use experiment::ExperimentPoint;
pub use processor::{CompletionOutcome, Processor};
pub use report::{RunReport, TrafficBreakdown};
pub use runner::{RunOptions, RunProgress, System};
pub use verify::Verifier;
