//! The event-driven system runner.

use tc_interconnect::{Adversary, FaultPlane, Interconnect};
use tc_protocols::ProtocolRegistry;
use tc_sim::{Arena, ArenaRef, EventQueue, SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AccessOutcome, AdversarySpec, BlockAddr, CoherenceController, ControllerStats, Cycle,
    EngineStats, FastHashMap, FaultSpec, LineStateStats, Message, MissKind, MissStats, MsgKind,
    NodeId, Outbox, ProtocolKind, ReissueStats, ReqId, SystemConfig, Timer, TimerKind,
};
use tc_workloads::WorkloadProfile;

use crate::processor::{IssueDecision, Processor};
use crate::report::RunReport;
use crate::verify::Verifier;

/// Options controlling one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Memory operations to complete per node before the run ends.
    pub ops_per_node: u64,
    /// Hard ceiling on simulated time, in cycles, to bound runaway runs.
    pub max_cycles: Cycle,
    /// Fault-injection spec for the fabric. The default,
    /// [`FaultSpec::none`], instantiates no fault plane at all: faultless
    /// runs stay bit-identical to runs before fault injection existed.
    pub faults: FaultSpec,
    /// Livelock watchdog: if this many events are processed without a
    /// single operation completing, the run is cut off and reported as a
    /// structured `InvariantViolation::Livelock` instead of spinning to the
    /// cycle cap. The default is far above any healthy run's
    /// between-completions gap.
    pub livelock_events_budget: u64,
    /// When set, [`System::run_with_checkpoints`] seals a full engine
    /// snapshot every this-many delivered events and hands it to the
    /// checkpoint sink. `None` (the default) takes no snapshots and leaves
    /// the hot loop untouched. Checkpointing is observational: a run with
    /// checkpoints enabled is bit-identical to the same run without.
    pub checkpoint_every: Option<u64>,
    /// Adversarial-scheduling spec for the fabric. Like `faults`, the
    /// default [`AdversarySpec::none`] instantiates no adversary plane at
    /// all, so unadversarial runs stay bit-identical to runs before the
    /// adversary existed.
    pub adversary: AdversarySpec,
    /// Number of spatial shards (worker threads) to split the run across.
    /// `0` (the default) runs the original serial engine, bit-identical to
    /// every release before sharding existed. Any value `>= 1` selects the
    /// conservative-PDES windowed engine, whose reports are bit-identical
    /// across *all* shard counts (behavioral fields; see
    /// [`RunReport::determinism_view`]) but follow a different — equally
    /// legal — message schedule than the serial engine. Clamped to the node
    /// count at run time. Incompatible with `checkpoint_every`.
    pub shards: u32,
}

impl RunOptions {
    /// Returns these options with the given fault spec.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Returns these options with the given adversarial-scheduling spec.
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Returns these options with the given livelock watchdog budget
    /// (events processed without a completed operation before the run is
    /// cut off). Clamped to at least 1.
    pub fn with_livelock_budget(mut self, events: u64) -> Self {
        self.livelock_events_budget = events.max(1);
        self
    }

    /// Returns these options with a checkpoint cadence (in delivered
    /// events).
    pub fn with_checkpoint_every(mut self, events: u64) -> Self {
        self.checkpoint_every = Some(events.max(1));
        self
    }

    /// Returns these options with the given shard count (see
    /// [`RunOptions::shards`]).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// The fairness oracle's bounded-wait threshold, in cycles: once a
    /// persistent request activates, the operation behind it must complete
    /// within this bound or the run carries a structured
    /// [`tc_types::InvariantViolation::Starvation`].
    ///
    /// Derived, not guessed: a generous multiple of the worst service time
    /// the *configuration* can explain — every node ahead in the arbiter's
    /// FIFO costing a full persistent-request round trip (link crossings,
    /// controller hops, a memory access), plus everything the run's fault
    /// and adversary specs are allowed to add (injected delays, link-outage
    /// windows, reorder/targeted-delay/storm latitude). Generosity costs
    /// nothing in detection power: true starvation is *unbounded*, so it
    /// clears any finite bound; the margin only keeps legal-but-slow
    /// schedules from false-positiving.
    pub fn starvation_bound(&self, config: &SystemConfig) -> Cycle {
        let link = config.interconnect.link_latency_ns;
        let per_waiter = 8 * link + 2 * config.controller_latency_ns + config.dram_latency_ns;
        let base = (config.num_nodes as Cycle) * per_waiter;
        let fault_extra = self.faults.delay_max_ns
            + self
                .faults
                .outages
                .iter()
                .flatten()
                .map(|o| o.until.saturating_sub(o.from))
                .max()
                .unwrap_or(0);
        let adversary_extra = self.adversary.max_extra_delay_ns(link);
        (base + fault_extra + adversary_extra).saturating_mul(64)
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            ops_per_node: 20_000,
            max_cycles: 500_000_000,
            faults: FaultSpec::none(),
            livelock_events_budget: 50_000_000,
            checkpoint_every: None,
            adversary: AdversarySpec::none(),
            shards: 0,
        }
    }
}

/// The loop-carried state of a run in flight: everything [`System::run`]
/// used to keep in locals, lifted out so a run can be cut at any event
/// boundary, serialized into a snapshot, and resumed bit-identically.
#[derive(Debug)]
pub struct RunProgress {
    draining: bool,
    drain_limit_hit: bool,
    /// The cycle at which the completion target (or cycle limit) was
    /// reached; `None` while the run is still making progress. An `Option`
    /// rather than a zero sentinel: a run can legitimately reach its target
    /// at cycle 0, and a run that drains without ever reaching it must fall
    /// back to the final clock instead of garbage.
    reached_target_at: Option<Cycle>,
    ops_at_target: u64,
    transactions_at_target: u64,
    /// Forward-progress watchdog: events processed since an operation last
    /// completed.
    events_since_progress: u64,
    livelock_hit: bool,
    /// The fault plane only exists when the spec injects something, so the
    /// (default) reliable-fabric path takes no extra branches beyond one
    /// `Option` check per send and stays bit-identical.
    fault_plane: Option<FaultPlane>,
    /// Same construction discipline as the fault plane: the adversary only
    /// exists when the spec perturbs something, so
    /// [`AdversarySpec::none`] runs pay one `Option` check and nothing
    /// else.
    adversary_plane: Option<Adversary>,
}

impl RunProgress {
    fn start(options: &RunOptions, config: &SystemConfig) -> Self {
        RunProgress {
            draining: false,
            drain_limit_hit: false,
            reached_target_at: None,
            ops_at_target: 0,
            transactions_at_target: 0,
            events_since_progress: 0,
            livelock_hit: false,
            fault_plane: RunProgress::build_fault_plane(options, config),
            adversary_plane: RunProgress::build_adversary_plane(options, config),
        }
    }

    fn build_fault_plane(options: &RunOptions, config: &SystemConfig) -> Option<FaultPlane> {
        if options.faults.is_none() {
            None
        } else {
            Some(FaultPlane::new(
                options.faults,
                config.protocol,
                config.seed,
                config.interconnect.link_latency_ns,
            ))
        }
    }

    fn build_adversary_plane(options: &RunOptions, config: &SystemConfig) -> Option<Adversary> {
        if options.adversary.is_none() {
            None
        } else {
            Some(Adversary::new(
                options.adversary,
                config.seed,
                config.interconnect.link_latency_ns,
            ))
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.bool(self.draining);
        w.bool(self.drain_limit_hit);
        w.option(self.reached_target_at, |w, at| w.u64(at));
        w.u64(self.ops_at_target);
        w.u64(self.transactions_at_target);
        w.u64(self.events_since_progress);
        w.bool(self.livelock_hit);
        w.option(self.fault_plane.as_ref(), |w, plane| plane.save_state(w));
        w.option(self.adversary_plane.as_ref(), |w, plane| {
            plane.save_state(w)
        });
    }

    fn load_state(
        r: &mut SnapReader<'_>,
        options: &RunOptions,
        config: &SystemConfig,
    ) -> Result<Self, SnapshotError> {
        let draining = r.bool()?;
        let drain_limit_hit = r.bool()?;
        let reached_target_at = r.option(|r| r.u64())?;
        let ops_at_target = r.u64()?;
        let transactions_at_target = r.u64()?;
        let events_since_progress = r.u64()?;
        let livelock_hit = r.bool()?;
        // The plane skeleton is config-derived; only the RNG position and
        // fault statistics travel in the snapshot.
        let fault_plane = r.option(|r| {
            let mut plane = RunProgress::build_fault_plane(options, config).ok_or_else(|| {
                SnapshotError::Corrupt(
                    "snapshot has a fault plane but the options inject no faults".into(),
                )
            })?;
            plane.load_state(r)?;
            Ok(plane)
        })?;
        let adversary_plane = r.option(|r| {
            let mut plane =
                RunProgress::build_adversary_plane(options, config).ok_or_else(|| {
                    SnapshotError::Corrupt(
                        "snapshot has an adversary plane but the options perturb nothing".into(),
                    )
                })?;
            plane.load_state(r)?;
            Ok(plane)
        })?;
        Ok(RunProgress {
            draining,
            drain_limit_hit,
            reached_target_at,
            ops_at_target,
            transactions_at_target,
            events_since_progress,
            livelock_hit,
            fault_plane,
            adversary_plane,
        })
    }
}

/// A handle to a [`Message`] parked in the runner's payload arena. The
/// arena checks a generation stamp on every access, so a handle that
/// outlives its message (a double-delivery bug) panics loudly instead of
/// reading a recycled slot.
type MsgRef = ArenaRef;

/// Events driving the system.
///
/// Deliberately small plain-old-data: the calendar queue moves entries on
/// every push/pop/migration, so the (large) `Message` payloads live in the
/// runner's [`Arena`] and events carry only a [`MsgRef`]. A message's slot
/// is occupied from the moment its `Send` is scheduled until its last
/// `Deliver` is handled; a fan-out (multicast/broadcast) parks one shared
/// slot for all of its deliveries — controllers receive `&Message`, so
/// nothing is ever cloned on the delivery path.
#[derive(Debug, Clone, Copy)]
enum SystemEvent {
    /// A processor is ready to issue its next operation.
    Wakeup(NodeId),
    /// A controller hands a message to the interconnect.
    Send(MsgRef),
    /// The interconnect delivers a message to a node.
    Deliver { node: NodeId, msg: MsgRef },
    /// A controller timer fires.
    Timer { node: NodeId, timer: Timer },
}

/// One simulated multiprocessor: N nodes, an interconnect, a verifier, and a
/// deterministic event queue.
#[derive(Debug)]
pub struct System {
    pub(crate) config: SystemConfig,
    pub(crate) workload: WorkloadProfile,
    pub(crate) controllers: Vec<Box<dyn CoherenceController>>,
    pub(crate) processors: Vec<Processor>,
    pub(crate) interconnect: Interconnect,
    queue: EventQueue<SystemEvent>,
    pub(crate) verifier: Verifier,
    /// Whether each outstanding miss (by request id) is a store, so that
    /// completions can be classified per operation rather than per miss.
    outstanding_writes: FastHashMap<tc_types::ReqId, bool>,
    /// Operations completed across all processors, maintained incrementally
    /// at hit/completion sites so the event loop never re-sums per node.
    pub(crate) completed_ops: u64,
    /// In-flight message payloads; events reference them by [`MsgRef`].
    messages: Arena<Message>,
    /// Scratch outbox handed to controllers; drained (capacity kept) after
    /// every event so the steady-state loop allocates nothing.
    scratch_out: Outbox,
    /// Scratch buffer for interconnect arrival times, reused across sends.
    arrival_buf: Vec<(Cycle, NodeId)>,
    /// Worst end-to-end miss latency observed, reported as the worst-case
    /// recovery latency when fault injection is active.
    pub(crate) max_miss_latency: Cycle,
    /// Every completed miss's end-to-end latency, for the report's
    /// p50/p99/max percentiles. Bounded by the op count, not the event
    /// count, so a full OLTP calibration stays in the hundreds of
    /// kilobytes.
    pub(crate) miss_latency_samples: Vec<Cycle>,
    /// Operations completed per node (hits and misses), the input to the
    /// report's completion-share skew — the fairness metric the adversary
    /// tries to maximize.
    pub(crate) completions_per_node: Vec<u64>,
    /// The fairness oracle's bounded-wait threshold for this run, set from
    /// [`RunOptions::starvation_bound`] when a run starts.
    pub(crate) starvation_bound: Cycle,
    /// When set (`TC_TRACE_BLOCK` env var), every send/delivery touching this
    /// block is printed to stderr — the deterministic replay makes this a
    /// complete causal trace of one block's protocol activity, and the
    /// runner keeps a rolling window snapshot so the first violation
    /// triggers an automatic time-travel replay of the window leading up
    /// to it (`TC_TRACE_WINDOW` events, default 65536).
    trace_block: Option<BlockAddr>,
    /// True while this system is re-executing a trace window, so the
    /// replay neither re-snapshots nor recursively replays.
    replaying: bool,
}

impl System {
    /// Assembles a system for `config` running `profile` on every processor,
    /// constructing the controllers through the default protocol registry
    /// (the four paper protocols).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]); validate first if you need an error
    /// instead.
    pub fn build(config: &SystemConfig, profile: &WorkloadProfile) -> Self {
        System::build_with(config, profile, tc_protocols::default_registry())
    }

    /// [`System::build`] with an explicit protocol registry, so experimental
    /// protocol variants (registered under an existing [`ProtocolKind`] for
    /// configuration purposes) can be run without touching the engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or if `registry` has no
    /// factory for `config.protocol`.
    pub fn build_with(
        config: &SystemConfig,
        profile: &WorkloadProfile,
        registry: &ProtocolRegistry,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"));
        let controllers = (0..config.num_nodes)
            .map(|n| registry.build(NodeId::new(n), config))
            .collect();
        let processors = (0..config.num_nodes)
            .map(|n| {
                Processor::new(
                    NodeId::new(n),
                    profile,
                    config.processor,
                    config.num_nodes,
                    config.seed,
                    u64::MAX,
                )
            })
            .collect();
        let interconnect = Interconnect::new(config.num_nodes, config.interconnect);
        let mut queue = EventQueue::new();
        for n in 0..config.num_nodes {
            queue.schedule(0, SystemEvent::Wakeup(NodeId::new(n)));
        }
        System {
            config: config.clone(),
            workload: profile.clone(),
            controllers,
            processors,
            interconnect,
            queue,
            verifier: Verifier::new(),
            outstanding_writes: FastHashMap::default(),
            completed_ops: 0,
            messages: Arena::new(),
            scratch_out: Outbox::new(),
            arrival_buf: Vec::new(),
            max_miss_latency: 0,
            miss_latency_samples: Vec::new(),
            completions_per_node: vec![0; config.num_nodes],
            starvation_bound: Cycle::MAX,
            trace_block: std::env::var("TC_TRACE_BLOCK")
                .ok()
                .and_then(|v| v.parse().ok())
                .map(BlockAddr::new),
            replaying: false,
        }
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Debug-formats one node's controller, for post-mortem inspection of
    /// wedged runs (`examples/conformance_repro.rs` prints this for stuck
    /// nodes).
    pub fn controller_debug(&self, node: NodeId) -> String {
        format!("{:#?}", self.controllers[node.index()])
    }

    /// The blocks each node is still waiting on, for post-mortem reports.
    pub fn outstanding_blocks(&self, node: NodeId) -> Vec<BlockAddr> {
        self.controllers[node.index()].outstanding_blocks()
    }

    /// Total number of events the runner has delivered so far. The
    /// engine-throughput benchmark divides this by wall-clock seconds to get
    /// events per second.
    pub fn events_delivered(&self) -> u64 {
        self.queue.total_delivered()
    }

    fn total_transactions(&self) -> u64 {
        self.processors.iter().map(|p| p.transactions()).sum()
    }

    /// Runs the simulation until every node has completed
    /// `options.ops_per_node` operations (or the cycle limit is hit), drains
    /// outstanding transactions, audits the final state, and reports.
    pub fn run(&mut self, options: RunOptions) -> RunReport {
        self.run_with_checkpoints(options, &mut |_, _| {})
    }

    /// [`System::run`] with a checkpoint sink: when
    /// `options.checkpoint_every` is set, `sink(events_delivered, bytes)` is
    /// called with a sealed snapshot at each cadence boundary. Snapshots are
    /// cut *between* events, so a system rebuilt from one (via
    /// [`System::restore`]) and resumed produces a bit-identical
    /// [`RunReport`].
    pub fn run_with_checkpoints(
        &mut self,
        options: RunOptions,
        sink: &mut dyn FnMut(u64, &[u8]),
    ) -> RunReport {
        if options.shards > 0 {
            // The snapshot plane serializes the serial engine's single
            // calendar queue and arena; a sharded run has S of each plus a
            // coordinator, and is short-lived by design. Reject loudly
            // rather than silently not checkpointing.
            assert!(
                options.checkpoint_every.is_none(),
                "checkpointing is not supported under sharded execution \
                 (RunOptions::shards > 0); run serially to checkpoint"
            );
            return crate::sharded::run_sharded(self, &options);
        }
        let mut progress = RunProgress::start(&options, &self.config);
        self.drive(&options, &mut progress, sink, None);
        self.finish(&options, progress)
    }

    /// Continues a run restored by [`System::restore`] to completion. The
    /// options must match the original run's (enforced by the snapshot
    /// fingerprint at restore time).
    pub fn resume(&mut self, options: RunOptions, progress: RunProgress) -> RunReport {
        self.resume_with_checkpoints(options, progress, &mut |_, _| {})
    }

    /// [`System::resume`] with a checkpoint sink, so a resumed run keeps
    /// checkpointing on the same delivered-events cadence.
    pub fn resume_with_checkpoints(
        &mut self,
        options: RunOptions,
        mut progress: RunProgress,
        sink: &mut dyn FnMut(u64, &[u8]),
    ) -> RunReport {
        self.drive(&options, &mut progress, sink, None);
        self.finish(&options, progress)
    }

    /// The event loop. Pulled out of [`System::run`] so the same loop
    /// serves fresh runs, resumed runs, and bounded trace replays
    /// (`stop_after_events`). Checkpoint and trace-window cuts happen
    /// *before* each pop, at an event boundary where the scratch outbox is
    /// empty — the snapshot never has to serialize mid-event state.
    fn drive(
        &mut self,
        options: &RunOptions,
        progress: &mut RunProgress,
        sink: &mut dyn FnMut(u64, &[u8]),
        stop_after_events: Option<u64>,
    ) {
        let target_total = options.ops_per_node * self.config.num_nodes as u64;
        let drain_limit = options.max_cycles.saturating_mul(2);
        self.starvation_bound = options.starvation_bound(&self.config);
        if options.adversary.sabotage != 0 {
            // Test-only arbiter sabotage, aimed at the victim node's
            // controller: the starvation oracle must catch what this
            // breaks. Applied at loop entry so resumed runs and replays
            // re-arm it (idempotent).
            let victim = options.adversary.victim_node as usize % self.config.num_nodes;
            self.controllers[victim].set_arbiter_sabotage(true);
        }
        let mut next_checkpoint = options
            .checkpoint_every
            .map(|k| (self.queue.total_delivered() / k + 1) * k);
        // Rolling window snapshot for time-travel replay: with a trace
        // block set, keep the snapshot from the last window boundary so a
        // violation can replay the window leading up to it. Never active
        // inside a replay (no recursion).
        let trace_window: Option<u64> = if self.trace_block.is_some() && !self.replaying {
            Some(
                std::env::var("TC_TRACE_WINDOW")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(65_536)
                    .max(1),
            )
        } else {
            None
        };
        let mut window_snap: Option<(u64, Vec<u8>)> = None;
        // First cut fires immediately on loop entry, so a violation in the
        // very first window still has a snapshot to replay from.
        let mut next_window_cut = trace_window.map(|w| (self.queue.total_delivered() / w) * w);
        let mut violations_seen = self.verifier.violations().len();
        // The scratch outbox lives in a local for the whole loop instead of
        // being swapped out of and back into `self` around every controller
        // call.
        let mut out = std::mem::take(&mut self.scratch_out);

        loop {
            let delivered = self.queue.total_delivered();
            if let Some(limit) = stop_after_events {
                if delivered >= limit {
                    break;
                }
            }
            if let (Some(k), Some(at)) = (options.checkpoint_every, next_checkpoint) {
                if delivered >= at {
                    sink(delivered, &self.snapshot(options, progress));
                    next_checkpoint = Some((delivered / k + 1) * k);
                }
            }
            if let (Some(w), Some(at)) = (trace_window, next_window_cut) {
                if delivered >= at {
                    window_snap = Some((delivered, self.snapshot(options, progress)));
                    next_window_cut = Some((delivered / w + 1) * w);
                }
            }
            let Some((now, event)) = self.queue.pop() else {
                break;
            };
            if !progress.draining
                && (self.completed_ops >= target_total || now >= options.max_cycles)
            {
                progress.draining = true;
                progress.reached_target_at = Some(now);
                progress.ops_at_target = self.completed_ops;
                progress.transactions_at_target = self.total_transactions();
            }
            if progress.draining && now >= drain_limit {
                progress.drain_limit_hit = true;
                break;
            }
            let ops_before = self.completed_ops;
            match event {
                SystemEvent::Wakeup(node) => {
                    if !progress.draining {
                        self.processor_step(now, node, &mut out);
                    }
                }
                SystemEvent::Send(msg_ref) => {
                    let msg = self.messages.take(msg_ref);
                    if self.trace_block == Some(msg.addr) {
                        eprintln!("[{now}] SEND {msg} kind={:?}", msg.kind);
                    }
                    if matches!(msg.kind, MsgKind::PersistentRequest { .. }) {
                        // Fairness oracle: the bounded-wait clock starts at
                        // the first persistent request a (node, block) pair
                        // puts on the wire.
                        self.verifier
                            .note_persistent_request(msg.src, msg.addr, now);
                    }
                    let mut arrivals = std::mem::take(&mut self.arrival_buf);
                    self.interconnect.send_arrivals(now, &msg, &mut arrivals);
                    if let Some(plane) = progress.fault_plane.as_mut() {
                        if msg.reissue {
                            plane.stats_mut().reissue_timeouts += 1;
                        }
                        plane.apply(now, &msg, &mut arrivals);
                    }
                    if let Some(plane) = progress.adversary_plane.as_mut() {
                        // After the fault plane: the adversary perturbs the
                        // arrivals that actually survived injection.
                        plane.apply(now, &msg, &mut arrivals);
                    }
                    // Park the payload once, shared by every delivery of
                    // the fan-out; the last delivery's release frees it.
                    // Nothing is cloned, broadcast or not. Fault-dropped
                    // arrivals shrink the share count (a fully-dropped
                    // message is never parked); duplicates grow it.
                    if !arrivals.is_empty() {
                        let parked = self.messages.insert_shared(msg, arrivals.len() as u32);
                        for &(at, node) in &arrivals {
                            self.queue
                                .schedule(at, SystemEvent::Deliver { node, msg: parked });
                        }
                    }
                    arrivals.clear();
                    self.arrival_buf = arrivals;
                }
                SystemEvent::Deliver { node, msg: msg_ref } => {
                    let msg = self.messages.get(msg_ref);
                    if self.trace_block == Some(msg.addr) {
                        eprintln!("[{now}] DELIVER to {node} {msg} kind={:?}", msg.kind);
                    }
                    self.controllers[node.index()].handle_message(now, msg, &mut out);
                    self.messages.release(msg_ref);
                    self.process_outbox(now, node, &mut out);
                }
                SystemEvent::Timer { node, timer } => {
                    self.controllers[node.index()].handle_timer(now, timer, &mut out);
                    self.process_outbox(now, node, &mut out);
                }
            }
            if trace_window.is_some() && self.verifier.violations().len() > violations_seen {
                violations_seen = self.verifier.violations().len();
                if let Some((from, snap)) = window_snap.as_ref() {
                    self.windowed_replay(options, snap, *from, self.queue.total_delivered());
                }
            }
            if self.completed_ops != ops_before {
                progress.events_since_progress = 0;
            } else {
                progress.events_since_progress += 1;
                if progress.events_since_progress >= options.livelock_events_budget {
                    progress.livelock_hit = true;
                    eprintln!(
                        "livelock watchdog: {} events without a completed \
                         op at cycle {now}; cutting the run off (rerun with TC_TRACE_BLOCK=<blk> \
                         for a causal trace of the spinning block)",
                        progress.events_since_progress
                    );
                    break;
                }
            }
        }
        self.scratch_out = out;
    }

    /// Post-loop wrap-up: final audit, stats merge, report assembly.
    fn finish(&mut self, options: &RunOptions, mut progress: RunProgress) -> RunReport {
        let runtime_cycles = match progress.reached_target_at {
            Some(cycles) => cycles,
            None => {
                // The queue drained (or the drain limit hit) before the
                // target was reached: report the state at the end of the run.
                progress.ops_at_target = self.completed_ops;
                progress.transactions_at_target = self.total_transactions();
                self.queue.now()
            }
        };

        // Fairness oracle: anything still escalated after the drain is
        // checked against the bound before the liveness audit runs.
        self.verifier
            .sweep_escalations(self.queue.now(), self.starvation_bound);
        self.final_audit(
            progress.drain_limit_hit,
            progress
                .livelock_hit
                .then_some(progress.events_since_progress),
        );

        let (misses, reissue, controllers, line_state) = merge_controller_stats(&self.controllers);

        // Recovery-side fault numbers: how hard the correctness substrate
        // had to work. Left all-zero on faultless runs so the default
        // report is unchanged.
        let mut fault_stats = progress
            .fault_plane
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();
        if progress.fault_plane.is_some() {
            fault_stats.persistent_activations = controllers.persistent_requests_initiated;
            fault_stats.max_recovery_ns = self.max_miss_latency;
        }

        let (miss_latency_p50, miss_latency_p99, miss_latency_max) =
            latency_percentiles(&mut self.miss_latency_samples);
        let completion_skew_ppm = completion_skew_ppm(&self.completions_per_node);

        let adversary_stats = progress
            .adversary_plane
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();

        RunReport {
            protocol: self.config.protocol,
            topology: self.config.interconnect.topology,
            bandwidth: self.config.interconnect.bandwidth,
            workload: self.workload.name.to_string(),
            num_nodes: self.config.num_nodes,
            runtime_cycles,
            total_ops: progress.ops_at_target,
            total_transactions: progress.transactions_at_target,
            misses,
            reissue,
            controllers,
            traffic: self.interconnect.traffic().clone(),
            faults: options.faults,
            adversary: options.adversary,
            miss_latency_p50,
            miss_latency_p99,
            miss_latency_max,
            completion_skew_ppm,
            engine: EngineStats {
                peak_queue_depth: self.queue.max_depth() as u64,
                peak_arena_occupancy: self.messages.high_water() as u64,
                events_delivered: self.queue.total_delivered(),
                arena_accounting_errors: self.messages.accounting_errors(),
                state: line_state,
                faults: fault_stats,
                adversary: adversary_stats,
                sharding: tc_types::ShardStats::default(),
            },
            violations: self.verifier.violations().to_vec(),
        }
    }

    /// Serializes the full engine state — clock and calendar queue, message
    /// arena, interconnect, verifier history, per-processor and
    /// per-controller state, and the loop-carried [`RunProgress`] — into one
    /// sealed (versioned + checksummed) snapshot. Must be called at an
    /// event boundary (the runner only calls it between pops).
    pub fn snapshot(&self, options: &RunOptions, progress: &RunProgress) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(self.fingerprint(options));
        w.u64(self.completed_ops);
        w.u64(self.max_miss_latency);
        w.seq(self.miss_latency_samples.iter(), |w, &s| w.u64(s));
        w.seq(self.completions_per_node.iter(), |w, &c| w.u64(c));
        self.queue.save_state(&mut w, emit_system_event);
        self.messages.save_state(&mut w, |w, msg| msg.save_state(w));
        self.interconnect.save_state(&mut w);
        self.verifier.save_state(&mut w);
        // The hash map iterates in arbitrary order; sort so identical
        // states produce identical snapshot bytes.
        let mut writes: Vec<(u64, bool)> = self
            .outstanding_writes
            .iter()
            .map(|(id, &is_write)| (id.value(), is_write))
            .collect();
        writes.sort_unstable();
        w.seq(writes.iter(), |w, &(id, is_write)| {
            w.u64(id);
            w.bool(is_write);
        });
        w.seq(self.processors.iter(), |w, p| p.save_state(w));
        w.seq(self.controllers.iter(), |w, c| c.save_state(w));
        progress.save_state(&mut w);
        tc_sim::seal(tc_sim::snapshot::SNAPSHOT_VERSION, &w.into_bytes())
    }

    /// Restores engine state from a [`System::snapshot`] into a freshly
    /// built system with the same configuration, returning the
    /// [`RunProgress`] to pass to [`System::resume`]. The embedded
    /// fingerprint must match this system's config/workload/options — a
    /// snapshot cannot be restored into a different experiment.
    pub fn restore(
        &mut self,
        options: &RunOptions,
        bytes: &[u8],
    ) -> Result<RunProgress, SnapshotError> {
        let (_version, payload) = tc_sim::open(bytes)?;
        let mut r = SnapReader::new(payload);
        let fingerprint = r.u64()?;
        if fingerprint != self.fingerprint(options) {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot fingerprint {fingerprint:#018x} does not match this \
                 system's {:#018x}: config, workload, or run options differ",
                self.fingerprint(options)
            )));
        }
        self.completed_ops = r.u64()?;
        self.max_miss_latency = r.u64()?;
        let num_samples = r.bounded_len(8)?;
        self.miss_latency_samples = Vec::with_capacity(num_samples);
        for _ in 0..num_samples {
            self.miss_latency_samples.push(r.u64()?);
        }
        let num_counts = r.bounded_len(8)?;
        if num_counts != self.completions_per_node.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has completion counts for {num_counts} nodes, system has {}",
                self.completions_per_node.len()
            )));
        }
        for count in &mut self.completions_per_node {
            *count = r.u64()?;
        }
        self.queue = EventQueue::load_state(&mut r, read_system_event)?;
        self.messages = Arena::load_state(&mut r, Message::load_state)?;
        self.interconnect.load_state(&mut r)?;
        self.verifier.load_state(&mut r)?;
        self.outstanding_writes.clear();
        let num_writes = r.bounded_len(9)?;
        for _ in 0..num_writes {
            let id = ReqId::new(r.u64()?);
            let is_write = r.bool()?;
            self.outstanding_writes.insert(id, is_write);
        }
        let num_processors = r.bounded_len(8)?;
        if num_processors != self.processors.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {num_processors} processors, system has {}",
                self.processors.len()
            )));
        }
        for processor in &mut self.processors {
            processor.load_state(&mut r)?;
        }
        let num_controllers = r.bounded_len(1)?;
        if num_controllers != self.controllers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {num_controllers} controllers, system has {}",
                self.controllers.len()
            )));
        }
        for controller in &mut self.controllers {
            controller.load_state(&mut r)?;
        }
        let progress = RunProgress::load_state(&mut r, options, &self.config)?;
        r.finish()?;
        Ok(progress)
    }

    /// A 64-bit digest of everything a snapshot depends on but does not
    /// carry: the system configuration, the workload profile, and the
    /// behavior-relevant run options. `checkpoint_every` is deliberately
    /// excluded — checkpointing is observational, so a snapshot taken at
    /// one cadence restores fine under another (or under none).
    fn fingerprint(&self, options: &RunOptions) -> u64 {
        // `shards` is folded in even though sharded runs never snapshot:
        // a snapshot taken serially (shards = 0) then restored under
        // shards > 0 must fail as a structured `Corrupt`, not resume on the
        // wrong engine.
        let key = format!(
            "{:?}|{:?}|{}|{}|{:?}|{}|{:?}|{}",
            self.config,
            self.workload,
            options.ops_per_node,
            options.max_cycles,
            options.faults,
            options.livelock_events_budget,
            options.adversary,
            options.shards
        );
        tc_sim::fnv1a64(key.as_bytes())
    }

    /// Time-travel replay: rebuild a fresh system, restore the rolling
    /// window snapshot, and re-drive it up to the violating event so the
    /// `TC_TRACE_BLOCK` trace covers the whole window leading up to the
    /// violation. The replay uses the default protocol registry; runs built
    /// with a custom registry get the trace but not the replay.
    fn windowed_replay(&self, options: &RunOptions, snap: &[u8], from: u64, upto: u64) {
        eprintln!(
            "violation at event {upto}; replaying the trace window from event {from} \
             (adjust with TC_TRACE_WINDOW)"
        );
        let mut replay = System::build(&self.config, &self.workload);
        replay.replaying = true;
        match replay.restore(options, snap) {
            Ok(mut progress) => {
                replay.drive(options, &mut progress, &mut |_, _| {}, Some(upto));
            }
            Err(e) => eprintln!("trace replay could not restore the window snapshot: {e}"),
        }
    }

    fn processor_step(&mut self, now: Cycle, node: NodeId, out: &mut Outbox) {
        let (decision, think) = self.processors[node.index()].next_issue(now);
        match decision {
            IssueDecision::Finished | IssueDecision::Blocked => {}
            IssueDecision::Issue(op) => {
                let issue_time = now + think;
                let block = op.addr.block(self.config.block_bytes);
                let is_write = op.kind.is_write();
                let outcome = self.controllers[node.index()].access(issue_time, &op, out);
                match outcome {
                    AccessOutcome::Hit {
                        latency,
                        version,
                        valid_since,
                    } => {
                        self.processors[node.index()].note_hit(issue_time);
                        self.completed_ops += 1;
                        self.completions_per_node[node.index()] += 1;
                        let done_at = issue_time + latency;
                        if is_write {
                            self.verifier.record_write(node, block, version, done_at);
                        } else {
                            // The legality window opens at the serialization
                            // lower bound the protocol reports for the copy,
                            // not at the access: an unacknowledged snooping
                            // hit may legally observe a value a later-ordered
                            // remote write has already superseded, until the
                            // invalidation arrives (see `AccessOutcome::Hit`).
                            self.verifier.check_read(
                                node,
                                block,
                                version,
                                valid_since.min(issue_time),
                                done_at,
                            );
                        }
                        self.queue
                            .schedule(done_at.max(issue_time + 1), SystemEvent::Wakeup(node));
                    }
                    AccessOutcome::Miss => {
                        self.outstanding_writes.insert(op.id, is_write);
                        self.processors[node.index()].note_miss(op.id, issue_time);
                        // Keep issuing under the miss (hit-under-miss and
                        // miss-under-miss) until the processor blocks itself.
                        self.queue
                            .schedule(issue_time + 1, SystemEvent::Wakeup(node));
                    }
                }
                self.process_outbox(now, node, out);
            }
        }
    }

    /// Drains `out` into the event queue and the verifier, keeping its
    /// allocations for reuse.
    fn process_outbox(&mut self, now: Cycle, node: NodeId, out: &mut Outbox) {
        for msg in out.messages.drain(..) {
            let at = msg.sent_at.max(now);
            let parked = self.messages.insert(msg);
            self.queue.schedule(at, SystemEvent::Send(parked));
        }
        for (at, timer) in out.timers.drain(..) {
            self.queue
                .schedule(at.max(now), SystemEvent::Timer { node, timer });
        }
        for completion in out.completions.drain(..) {
            let latency = completion.completed_at.saturating_sub(completion.issued_at);
            self.max_miss_latency = self.max_miss_latency.max(latency);
            self.miss_latency_samples.push(latency);
            // Fairness oracle: a completion on this (node, block) pair
            // stops its bounded-wait clock, if one was running.
            self.verifier.note_completion(
                node,
                completion.addr,
                completion.completed_at,
                self.starvation_bound,
            );
            // Classify by the original operation, not the miss: a store that
            // merged into a read miss is still a store.
            let is_write = self
                .outstanding_writes
                .remove(&completion.req_id)
                .unwrap_or(completion.kind != MissKind::Read);
            if is_write {
                self.verifier.record_write(
                    node,
                    completion.addr,
                    completion.data_version,
                    completion.completed_at,
                );
            } else {
                self.verifier.check_read(
                    node,
                    completion.addr,
                    completion.data_version,
                    completion.issued_at,
                    completion.completed_at,
                );
            }
            let outcome = self.processors[node.index()].note_completion(completion.req_id, now);
            if outcome.completed {
                self.completed_ops += 1;
                self.completions_per_node[node.index()] += 1;
            }
            if outcome.was_blocked {
                self.queue.schedule(now + 1, SystemEvent::Wakeup(node));
            }
        }
    }

    /// Audits the quiesced final state: token conservation, single-writer,
    /// and starvation/deadlock/livelock. `drain_limit_hit` distinguishes a
    /// run that was cut off with events still flowing (deadlock — something
    /// is spinning or stranded) from one whose event queue drained with
    /// requests still outstanding (starvation — nothing left that could
    /// complete them); `livelock` carries the watchdog's
    /// events-without-progress count when the forward-progress budget
    /// tripped, which takes precedence over both.
    fn final_audit(&mut self, drain_limit_hit: bool, livelock: Option<u64>) {
        let now = self.queue.now();
        // Tokens in flight at quiescence: exactly the token counts of
        // `Deliver` events still pending in the queue (their payloads are
        // still parked in the arena). Derived here once instead of being
        // tracked by per-send/per-delivery map updates in the hot loop; a
        // message whose `Send` was never processed is deliberately *not*
        // counted, matching the incremental accounting this replaces (its
        // tokens were never injected into the fabric).
        let mut in_flight_tokens: FastHashMap<BlockAddr, (i64, i64)> = FastHashMap::default();
        for event in self.queue.iter() {
            if let SystemEvent::Deliver { msg, .. } = event {
                let msg = self.messages.get(*msg);
                add_in_flight_tokens(&mut in_flight_tokens, msg);
            }
        }
        final_audit_merged(
            &mut self.verifier,
            &self.config,
            &self.controllers,
            &self.processors,
            &in_flight_tokens,
            now,
            drain_limit_hit,
            livelock,
        );
    }
}

/// Accumulates one in-flight message's token counts into the final-audit
/// map (total tokens, owner tokens) for its block.
pub(crate) fn add_in_flight_tokens(
    in_flight_tokens: &mut FastHashMap<BlockAddr, (i64, i64)>,
    msg: &Message,
) {
    let tokens = msg.kind.token_count() as i64;
    if tokens > 0 {
        let entry = in_flight_tokens.entry(msg.addr).or_insert((0, 0));
        entry.0 += tokens;
        if msg.kind.carries_owner_token() {
            entry.1 += 1;
        }
    }
}

/// Merges per-controller statistics into the report's aggregate
/// (miss, reissue, controller, line-state) tuples.
pub(crate) fn merge_controller_stats(
    controllers: &[Box<dyn CoherenceController>],
) -> (MissStats, ReissueStats, ControllerStats, LineStateStats) {
    let mut misses = MissStats::default();
    let mut reissue = ReissueStats::default();
    let mut merged = ControllerStats::new();
    let mut line_state = LineStateStats::default();
    for controller in controllers {
        let stats = controller.stats();
        misses.merge(&stats.misses);
        reissue.merge(&stats.reissue);
        merged.merge(&stats);
        line_state.merge(&controller.line_state_stats());
    }
    (misses, reissue, merged, line_state)
}

/// Miss-latency percentiles `(p50, p99, max)` over every completed miss.
/// Sorts in place: the run is over and the samples have no other consumer.
pub(crate) fn latency_percentiles(samples: &mut [Cycle]) -> (Cycle, Cycle, Cycle) {
    samples.sort_unstable();
    let percentile = |p: usize| -> Cycle {
        match samples.len() {
            0 => 0,
            n => samples[(n - 1) * p / 100],
        }
    };
    (
        percentile(50),
        percentile(99),
        samples.last().copied().unwrap_or(0),
    )
}

/// Completion-share skew: (max - min) per-node completions relative to the
/// mean, in parts per million. Zero on a perfectly fair run; the
/// adversary's objective is to drive it up.
pub(crate) fn completion_skew_ppm(completions_per_node: &[u64]) -> u64 {
    let total_completions: u64 = completions_per_node.iter().sum();
    if total_completions == 0 {
        0
    } else {
        let most = *completions_per_node.iter().max().unwrap();
        let least = *completions_per_node.iter().min().unwrap();
        let mean = total_completions / completions_per_node.len() as u64;
        (most - least)
            .saturating_mul(1_000_000)
            .checked_div(mean)
            .unwrap_or(0)
    }
}

/// Audits the quiesced final state: token conservation, single-writer, and
/// starvation/deadlock/livelock. Engine-agnostic — the serial engine hands
/// it its one queue's pending-delivery tokens, the sharded engine the merged
/// map across all shard queues. `drain_limit_hit` distinguishes a run that
/// was cut off with events still flowing (deadlock — something is spinning
/// or stranded) from one whose event queue drained with requests still
/// outstanding (starvation — nothing left that could complete them);
/// `livelock` carries the watchdog's events-without-progress count when the
/// forward-progress budget tripped, which takes precedence over both.
#[allow(clippy::too_many_arguments)]
pub(crate) fn final_audit_merged(
    verifier: &mut Verifier,
    config: &SystemConfig,
    controllers: &[Box<dyn CoherenceController>],
    processors: &[Processor],
    in_flight_tokens: &FastHashMap<BlockAddr, (i64, i64)>,
    now: Cycle,
    drain_limit_hit: bool,
    livelock: Option<u64>,
) {
    let expected_tokens = match config.protocol {
        ProtocolKind::TokenB => Some(config.token.tokens_per_block),
        _ => None,
    };

    let mut blocks: Vec<BlockAddr> = Vec::new();
    for controller in controllers {
        blocks.extend(controller.audited_blocks());
    }
    blocks.sort_unstable();
    blocks.dedup();

    for addr in blocks {
        let mut audits = Vec::new();
        for controller in controllers {
            audits.extend(controller.audit_block(addr));
        }
        let (in_flight, in_flight_owner) = in_flight_tokens.get(&addr).copied().unwrap_or((0, 0));
        verifier.audit_block(
            addr,
            &audits,
            in_flight.max(0) as u32,
            in_flight_owner.max(0) as u32,
            expected_tokens,
            now,
        );
    }

    // Liveness: after the drain, nothing may still be outstanding. A
    // stuck request is a deadlock if the drain limit cut the run off
    // (events were still flowing) and starvation otherwise; either way
    // the violation names the block the requester is stuck on.
    for (processor, controller) in processors.iter().zip(controllers) {
        if controller.outstanding_misses() > 0 || processor.outstanding_misses() > 0 {
            let stuck_block = controller
                .outstanding_blocks()
                .first()
                .copied()
                .unwrap_or(BlockAddr::new(0));
            let issued_at = processor
                .oldest_outstanding()
                .map(|(_, at)| at)
                .unwrap_or(now);
            if let Some(events_without_progress) = livelock {
                verifier.record_livelock(
                    processor.node(),
                    stuck_block,
                    issued_at,
                    now,
                    events_without_progress,
                );
            } else if drain_limit_hit {
                verifier.record_deadlock(processor.node(), stuck_block, issued_at, now);
            } else {
                verifier.record_starvation(processor.node(), stuck_block, issued_at, now);
            }
        }
    }

    // A tripped watchdog must surface even when no request happens to
    // be outstanding at the cut (pure message ping-pong): attribute it
    // to node 0 rather than dropping the violation.
    if let Some(events_without_progress) = livelock {
        let already_recorded = verifier
            .violations()
            .iter()
            .any(|v| matches!(v, tc_types::InvariantViolation::Livelock { .. }));
        if !already_recorded {
            verifier.record_livelock(
                NodeId::new(0),
                BlockAddr::new(0),
                now,
                now,
                events_without_progress,
            );
        }
    }
}

// --- snapshot codecs ------------------------------------------------------
//
// Tags are part of the snapshot wire format; append new variants, never
// renumber.

fn emit_system_event(w: &mut SnapWriter, event: &SystemEvent) {
    match event {
        SystemEvent::Wakeup(node) => {
            w.u8(0);
            w.u32(node.index() as u32);
        }
        SystemEvent::Send(msg) => {
            w.u8(1);
            w.u64(msg.to_bits());
        }
        SystemEvent::Deliver { node, msg } => {
            w.u8(2);
            w.u32(node.index() as u32);
            w.u64(msg.to_bits());
        }
        SystemEvent::Timer { node, timer } => {
            w.u8(3);
            w.u32(node.index() as u32);
            emit_timer(w, timer);
        }
    }
}

fn read_system_event(r: &mut SnapReader<'_>) -> Result<SystemEvent, SnapshotError> {
    Ok(match r.u8()? {
        0 => SystemEvent::Wakeup(NodeId::new(r.u32()? as usize)),
        1 => SystemEvent::Send(ArenaRef::from_bits(r.u64()?)),
        2 => SystemEvent::Deliver {
            node: NodeId::new(r.u32()? as usize),
            msg: ArenaRef::from_bits(r.u64()?),
        },
        3 => SystemEvent::Timer {
            node: NodeId::new(r.u32()? as usize),
            timer: read_timer(r)?,
        },
        tag => return Err(SnapshotError::Corrupt(format!("system event tag {tag}"))),
    })
}

fn emit_timer(w: &mut SnapWriter, timer: &Timer) {
    w.u64(timer.id);
    w.u64(timer.addr.value());
    match timer.kind {
        TimerKind::Reissue => w.u8(0),
        TimerKind::PersistentEscalation => w.u8(1),
        TimerKind::MemoryAccess => w.u8(2),
        TimerKind::Other(code) => {
            w.u8(3);
            w.u32(code);
        }
    }
}

fn read_timer(r: &mut SnapReader<'_>) -> Result<Timer, SnapshotError> {
    let id = r.u64()?;
    let addr = BlockAddr::new(r.u64()?);
    let kind = match r.u8()? {
        0 => TimerKind::Reissue,
        1 => TimerKind::PersistentEscalation,
        2 => TimerKind::MemoryAccess,
        3 => TimerKind::Other(r.u32()?),
        tag => return Err(SnapshotError::Corrupt(format!("timer kind tag {tag}"))),
    };
    Ok(Timer { id, addr, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{BandwidthMode, TopologyKind, TrafficClass};

    fn small_config(protocol: ProtocolKind) -> SystemConfig {
        let mut config = SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(protocol)
            .with_seed(12);
        // Keep the caches small enough that evictions happen in short runs.
        config.l2.size_bytes = 256 * 1024;
        config
    }

    fn run(protocol: ProtocolKind, profile: WorkloadProfile, ops: u64) -> RunReport {
        let config = small_config(protocol);
        let mut system = System::build(&config, &profile);
        system.run(RunOptions {
            ops_per_node: ops,
            max_cycles: 50_000_000,
            ..RunOptions::default()
        })
    }

    #[test]
    fn tokenb_runs_cleanly_on_a_shared_workload() {
        let report = run(ProtocolKind::TokenB, WorkloadProfile::oltp(), 1500);
        assert!(report.total_ops >= 4 * 1500);
        assert!(report.runtime_cycles > 0);
        assert!(report.misses.total_misses() > 0);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn directory_runs_cleanly_on_a_shared_workload() {
        let report = run(ProtocolKind::Directory, WorkloadProfile::oltp(), 1500);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.misses.total_misses() > 0);
    }

    #[test]
    fn hammer_runs_cleanly_on_a_shared_workload() {
        let report = run(ProtocolKind::Hammer, WorkloadProfile::oltp(), 1500);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.misses.total_misses() > 0);
    }

    /// The contended OLTP calibration used to deadlock the snooping baseline
    /// on the writeback race; the writeback-acknowledgement handshake (see
    /// `tc_protocols::snooping`) closed it, so snooping now runs the same
    /// contended calibration as the other three protocols.
    #[test]
    fn snooping_runs_cleanly_on_the_ordered_tree() {
        let report = run(ProtocolKind::Snooping, WorkloadProfile::oltp(), 1500);
        assert_eq!(report.topology, TopologyKind::Tree);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.misses.total_misses() > 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let a = run(ProtocolKind::TokenB, WorkloadProfile::apache(), 800);
        let b = run(ProtocolKind::TokenB, WorkloadProfile::apache(), 800);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.traffic.total_link_bytes(), b.traffic.total_link_bytes());
    }

    #[test]
    fn hot_block_contention_provokes_reissues_or_persistent_requests() {
        let report = run(ProtocolKind::TokenB, WorkloadProfile::hot_block(), 2500);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let reissued =
            report.reissue.reissued_once + report.reissue.reissued_more + report.reissue.persistent;
        assert!(
            reissued > 0,
            "hot-block contention should force at least some reissues: {:?}",
            report.reissue
        );
    }

    #[test]
    fn private_workload_generates_no_cache_to_cache_misses() {
        let report = run(ProtocolKind::TokenB, WorkloadProfile::private_only(), 1000);
        assert!(report.violations.is_empty());
        assert_eq!(report.misses.cache_to_cache, 0);
    }

    #[test]
    fn hammer_uses_more_traffic_than_directory() {
        let hammer = run(ProtocolKind::Hammer, WorkloadProfile::oltp(), 1200);
        let directory = run(ProtocolKind::Directory, WorkloadProfile::oltp(), 1200);
        assert!(
            hammer.bytes_per_miss() > directory.bytes_per_miss(),
            "hammer {:.1} B/miss should exceed directory {:.1} B/miss",
            hammer.bytes_per_miss(),
            directory.bytes_per_miss()
        );
    }

    #[test]
    fn unlimited_bandwidth_is_never_slower() {
        let limited_config = small_config(ProtocolKind::TokenB);
        let unlimited_config = limited_config
            .clone()
            .with_bandwidth(BandwidthMode::Unlimited);
        let profile = WorkloadProfile::apache();
        let mut limited = System::build(&limited_config, &profile);
        let mut unlimited = System::build(&unlimited_config, &profile);
        let options = RunOptions {
            ops_per_node: 1200,
            max_cycles: 50_000_000,
            ..RunOptions::default()
        };
        let limited = limited.run(options);
        let unlimited = unlimited.run(options);
        assert!(unlimited.runtime_cycles <= limited.runtime_cycles);
    }

    #[test]
    fn checkpointed_run_is_bit_identical_and_resumes_bit_identically() {
        let config = small_config(ProtocolKind::TokenB);
        let profile = WorkloadProfile::oltp();
        let options = RunOptions {
            ops_per_node: 600,
            max_cycles: 50_000_000,
            ..RunOptions::default()
        }
        .with_checkpoint_every(2_000);

        let baseline = System::build(&config, &profile).run(options);

        let mut snaps: Vec<(u64, Vec<u8>)> = Vec::new();
        let checkpointed = System::build(&config, &profile)
            .run_with_checkpoints(options, &mut |at, bytes| snaps.push((at, bytes.to_vec())));
        assert_eq!(
            format!("{baseline:?}"),
            format!("{checkpointed:?}"),
            "checkpointing must be observational"
        );
        assert!(snaps.len() >= 2, "expected several checkpoints");

        // Resume from an early snapshot and from the last one: both must
        // reproduce the uninterrupted run's report byte-for-byte.
        for (at, snap) in [&snaps[0], snaps.last().unwrap()] {
            let mut resumed = System::build(&config, &profile);
            let progress = resumed
                .restore(&options, snap)
                .unwrap_or_else(|e| panic!("restore at event {at}: {e}"));
            assert_eq!(resumed.events_delivered(), *at);
            let report = resumed.resume(options, progress);
            assert_eq!(
                format!("{report:?}"),
                format!("{baseline:?}"),
                "resume from event {at} diverged"
            );
        }
    }

    #[test]
    fn restore_rejects_a_mismatched_system() {
        let config = small_config(ProtocolKind::TokenB);
        let profile = WorkloadProfile::oltp();
        let options = RunOptions {
            ops_per_node: 200,
            max_cycles: 50_000_000,
            ..RunOptions::default()
        }
        .with_checkpoint_every(5_000);
        let mut snaps: Vec<Vec<u8>> = Vec::new();
        System::build(&config, &profile)
            .run_with_checkpoints(options, &mut |_, bytes| snaps.push(bytes.to_vec()));
        let snap = snaps.first().expect("at least one checkpoint");

        // Different seed => different fingerprint.
        let other = config.clone().with_seed(13);
        let err = System::build(&other, &profile)
            .restore(&options, snap)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");

        // A flipped payload byte fails the seal checksum, not UB.
        let mut corrupt = snap.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let err = System::build(&config, &profile)
            .restore(&options, &corrupt)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Checksum), "{err}");
    }

    #[test]
    fn traffic_report_includes_requests_and_data() {
        let report = run(ProtocolKind::TokenB, WorkloadProfile::oltp(), 1200);
        assert!(report.traffic.link_bytes(TrafficClass::Request) > 0);
        assert!(
            report
                .traffic
                .link_bytes(TrafficClass::DataResponseOrWriteback)
                > 0
        );
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use tc_workloads::WorkloadProfile;

    /// Regression test for a verification bug: a store merged into a read
    /// miss that was granted an exclusive copy (migratory optimization) must
    /// still be reported as a write, otherwise later readers look stale.
    #[test]
    fn single_hot_block_two_node_directory_run_is_clean() {
        let mut config = SystemConfig::isca03_default()
            .with_nodes(2)
            .with_protocol(ProtocolKind::Directory)
            .with_seed(12);
        config.l2.size_bytes = 64 * 1024;
        let mut profile = WorkloadProfile::hot_block();
        profile.migratory_blocks = 1;
        profile.private_blocks = 4;
        let mut system = System::build(&config, &profile);
        let report = system.run(RunOptions {
            ops_per_node: 400,
            max_cycles: 10_000_000,
            ..RunOptions::default()
        });
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
