//! The campaign driver: one API that owns a *set* of experiment runs.
//!
//! Every evaluation artifact of the paper — a table, a figure, a sweep — is
//! a list of [`ExperimentPoint`]s run under the same [`RunOptions`]. A
//! [`Campaign`] executes such a list across OS threads: each point is an
//! independently seeded, self-contained simulation, so points are
//! embarrassingly parallel and the worker count changes *wall-clock only*,
//! never results. The returned [`CampaignReport`] holds the per-point
//! [`RunReport`]s in submission order (whatever order the workers finished
//! in) plus the aggregate tables the paper's figures are built from, and
//! serializes to JSON with a hand-rolled writer (the offline build
//! environment has no serde).
//!
//! ```no_run
//! use tc_system::campaign::Campaign;
//! use tc_system::experiment::table2_points;
//! use tc_system::RunOptions;
//!
//! let report = Campaign::new(table2_points())
//!     .options(RunOptions::smoke())
//!     .threads(4)
//!     .on_progress(|event| eprintln!("{event}"))
//!     .run();
//! assert_eq!(report.runs.len(), 3);
//! println!("{}", report.render_runtime_table("Table 2 configurations"));
//! ```
//!
//! # Determinism contract
//!
//! `threads(1)` and `threads(N)` produce bit-identical reports (including
//! the engine high-water marks and `events_delivered`): every point builds
//! its own `System` from `(config, workload)` with its own seed, no state is
//! shared between points, and reports are reassembled in submission order.
//! `tests/campaign.rs` pins this contract in CI.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tc_protocols::ProtocolRegistry;
use tc_types::{InvariantViolation, TrafficClass};

use crate::experiment::ExperimentPoint;
use crate::report::RunReport;
use crate::runner::RunOptions;

/// A progress notification delivered to [`Campaign::on_progress`] callbacks.
///
/// Callbacks run on the worker thread that produced the event, so with
/// `threads(N)` they must tolerate concurrent invocation (the bound is
/// `Send + Sync`).
#[derive(Debug, Clone, Copy)]
pub enum CampaignEvent<'a> {
    /// A worker picked up a point.
    Started {
        /// Submission-order index of the point.
        index: usize,
        /// Total number of points in the campaign.
        total: usize,
        /// The point's label.
        label: &'a str,
    },
    /// A worker finished a point.
    Finished {
        /// Submission-order index of the point.
        index: usize,
        /// Total number of points in the campaign.
        total: usize,
        /// The point's label.
        label: &'a str,
        /// Whether the run passed verification.
        ok: bool,
        /// Wall-clock seconds the point took.
        wall_seconds: f64,
    },
}

impl fmt::Display for CampaignEvent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignEvent::Started {
                index,
                total,
                label,
            } => write!(f, "[{}/{total}] running {label} ...", index + 1),
            CampaignEvent::Finished {
                index,
                total,
                label,
                ok,
                wall_seconds,
            } => write!(
                f,
                "[{}/{total}] {label}: {} in {wall_seconds:.1} s",
                index + 1,
                if *ok { "ok" } else { "VERIFICATION FAILED" }
            ),
        }
    }
}

/// A boxed progress callback; see [`Campaign::on_progress`].
type ProgressCallback = Box<dyn Fn(CampaignEvent<'_>) + Send + Sync>;

/// One completed run of a campaign: the point's label plus its report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The experiment point's label.
    pub label: String,
    /// The measurements of the run.
    pub report: RunReport,
}

/// A builder-style driver that runs a list of [`ExperimentPoint`]s, possibly
/// across OS threads.
pub struct Campaign {
    points: Vec<ExperimentPoint>,
    options: RunOptions,
    threads: usize,
    registry: ProtocolRegistry,
    progress: Option<ProgressCallback>,
}

impl fmt::Debug for Campaign {
    // Manual: the boxed progress callback has no `Debug`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("points", &self.points.len())
            .field("options", &self.options)
            .field("threads", &self.threads)
            .field("registry", &self.registry)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Campaign {
    /// Creates a campaign over `points` with [`RunOptions::standard`]
    /// options, one worker thread per available core (capped at the point
    /// count), and the default protocol registry.
    pub fn new(points: Vec<ExperimentPoint>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Campaign {
            points,
            options: RunOptions::standard(),
            threads: cores,
            registry: tc_protocols::default_registry().clone(),
            progress: None,
        }
    }

    /// Sets the run options applied to every point.
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the number of worker threads. `1` runs the points serially on
    /// the calling thread's schedule; any `N` produces bit-identical
    /// reports, only the wall-clock changes. Values are clamped to at least
    /// one.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Uses `registry` instead of the default protocol registry to construct
    /// controllers, so campaigns can sweep experimental protocol variants.
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Installs a progress callback. It is invoked from worker threads, so
    /// with more than one thread it must tolerate concurrent calls.
    pub fn on_progress(
        mut self,
        callback: impl Fn(CampaignEvent<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Runs every point and returns the collected reports in submission
    /// order.
    ///
    /// Work is distributed dynamically: workers claim the next unstarted
    /// point from a shared counter, so a campaign of unevenly sized points
    /// (64-node sweeps next to smoke runs) keeps all cores busy until the
    /// tail. The claim order affects only scheduling — each point's
    /// simulation is hermetic, and the report vector is indexed by
    /// submission order, not completion order.
    pub fn run(self) -> CampaignReport {
        let total = self.points.len();
        let workers = self.threads.min(total.max(1));
        let results: Mutex<Vec<(usize, RunReport)>> = Mutex::new(Vec::with_capacity(total));
        let started = Instant::now();

        self.execute(workers, &|index, report| {
            results
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((index, report));
        });

        let mut collected = results.into_inner().unwrap_or_else(|e| e.into_inner());
        collected.sort_unstable_by_key(|(index, _)| *index);
        debug_assert_eq!(collected.len(), total);
        let runs = collected
            .into_iter()
            .zip(&self.points)
            .map(|((_, report), point)| CampaignRun {
                label: point.label.clone(),
                report,
            })
            .collect();

        CampaignReport {
            runs,
            options: self.options,
            threads: workers,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// The one worker pool behind [`Campaign::run`] and
    /// [`Campaign::run_streaming`]: `workers` scoped threads claim points
    /// dynamically off a shared counter, emit the progress events, run each
    /// point hermetically, and hand `(index, report)` to `on_done` (invoked
    /// concurrently from worker threads; the caller synchronizes). Keeping
    /// both public paths on this loop is what keeps their scheduling — and
    /// therefore the bit-identical-aggregates contract — in lockstep.
    fn execute(&self, workers: usize, on_done: &(impl Fn(usize, RunReport) + Sync)) {
        let total = self.points.len();
        let next = AtomicUsize::new(0);
        // A panic in one point used to strand the campaign: the panicking
        // worker died, the survivors ground through every remaining point,
        // and the eventual re-panic from the thread scope had lost which
        // point failed. Now the first panic is caught, the other workers
        // abort their next claim, and the panic resurfaces with the failing
        // point's label attached.
        let abort = AtomicBool::new(false);
        let first_panic: Mutex<Option<(String, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let point = &self.points[index];
                    if let Some(progress) = &self.progress {
                        progress(CampaignEvent::Started {
                            index,
                            total,
                            label: &point.label,
                        });
                    }
                    let point_started = Instant::now();
                    let report = match catch_unwind(AssertUnwindSafe(|| {
                        point.run_with(self.options, &self.registry)
                    })) {
                        Ok(report) => report,
                        Err(payload) => {
                            abort.store(true, Ordering::Relaxed);
                            let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some((point.label.clone(), payload));
                            }
                            break;
                        }
                    };
                    if let Some(progress) = &self.progress {
                        progress(CampaignEvent::Finished {
                            index,
                            total,
                            label: &point.label,
                            ok: report.verified().is_ok(),
                            wall_seconds: point_started.elapsed().as_secs_f64(),
                        });
                    }
                    on_done(index, report);
                });
            }
        });
        let first_panic = first_panic.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some((label, payload)) = first_panic {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("campaign point '{label}' panicked: {message}");
        }
    }

    /// Runs every point like [`Campaign::run`], but *streams* each completed
    /// [`CampaignRun`] to `sink` in submission order and drops it immediately
    /// after folding it into the aggregates — the campaign never holds more
    /// than the out-of-order completion window of full `RunReport`s in
    /// memory, so thousand-point parameter scans stay flat.
    ///
    /// The returned [`CampaignSummary`] carries exactly the aggregates
    /// [`CampaignReport`] computes — built from the same per-run rows, in the
    /// same submission order — so the streamed aggregates are bit-identical
    /// to the buffered path's (pinned by tests). `sink` is called under a
    /// lock, one run at a time, in submission order, from whichever worker
    /// thread completed the gap-filling point.
    pub fn run_streaming<F>(self, sink: F) -> CampaignSummary
    where
        F: FnMut(usize, &CampaignRun) + Send,
    {
        /// Reorders worker completions back into submission order, feeds the
        /// sink, folds the aggregate rows, and drops each report.
        struct Emitter<F> {
            next_emit: usize,
            /// Completed runs waiting for an earlier point to finish.
            pending: std::collections::BTreeMap<usize, CampaignRun>,
            sink: F,
            /// First run's cycles/transaction (the normalization baseline).
            baseline: Option<f64>,
            /// High-water mark of `pending` — the reorder buffer's worst
            /// occupancy over the run.
            peak_pending: usize,
            runtime: Vec<RuntimeRow>,
            traffic: Vec<TrafficRow>,
            miss_latency: Vec<MissLatencyRow>,
            failures: Vec<(String, InvariantViolation)>,
        }

        impl<F: FnMut(usize, &CampaignRun)> Emitter<F> {
            fn submit(&mut self, index: usize, run: CampaignRun) {
                self.pending.insert(index, run);
                self.peak_pending = self.peak_pending.max(self.pending.len());
                while let Some(run) = self.pending.remove(&self.next_emit) {
                    let index = self.next_emit;
                    self.next_emit += 1;
                    let baseline = *self
                        .baseline
                        .get_or_insert_with(|| run.report.cycles_per_transaction());
                    self.runtime.push(RuntimeRow::from_run(&run, baseline));
                    self.traffic.push(TrafficRow::from_run(&run));
                    self.miss_latency.push(MissLatencyRow::from_run(&run));
                    if let Err(violation) = run.report.verified() {
                        self.failures.push((run.label.clone(), violation));
                    }
                    (self.sink)(index, &run);
                    // `run` drops here: the full RunReport is released.
                }
            }
        }

        let total = self.points.len();
        let workers = self.threads.min(total.max(1));
        let emitter = Mutex::new(Emitter {
            next_emit: 0,
            pending: std::collections::BTreeMap::new(),
            sink,
            baseline: None,
            peak_pending: 0,
            runtime: Vec::with_capacity(total),
            traffic: Vec::with_capacity(total),
            miss_latency: Vec::with_capacity(total),
            failures: Vec::new(),
        });
        let started = Instant::now();

        self.execute(workers, &|index, report| {
            emitter.lock().unwrap_or_else(|e| e.into_inner()).submit(
                index,
                CampaignRun {
                    label: self.points[index].label.clone(),
                    report,
                },
            );
        });

        let emitter = emitter.into_inner().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(emitter.next_emit, total);
        CampaignSummary {
            points: total,
            options: self.options,
            threads: workers,
            wall_seconds: started.elapsed().as_secs_f64(),
            peak_reorder_buffer: emitter.peak_pending,
            runtime: emitter.runtime,
            traffic: emitter.traffic,
            miss_latency: emitter.miss_latency,
            failures: emitter.failures,
        }
    }
}

/// The aggregate results of a streamed campaign ([`Campaign::run_streaming`]):
/// the same per-run aggregate rows a buffered [`CampaignReport`] computes,
/// without retaining any full [`RunReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Number of points that ran.
    pub points: usize,
    /// The options every point ran under.
    pub options: RunOptions,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Peak occupancy of the streaming reorder buffer: the most completed
    /// runs ever held back waiting for an earlier point. Bounded by the
    /// worker count when the sink is the bottleneck. Scheduling-dependent —
    /// like `wall_seconds`, it is *excluded* from the determinism contract
    /// (and reported as 0 by [`CampaignReport::summary`], which never
    /// buffers out of order).
    pub peak_reorder_buffer: usize,
    /// The normalized-runtime aggregate, in submission order.
    pub runtime: Vec<RuntimeRow>,
    /// The traffic-breakdown aggregate, in submission order.
    pub traffic: Vec<TrafficRow>,
    /// The miss-latency aggregate, in submission order.
    pub miss_latency: Vec<MissLatencyRow>,
    /// Label and first violation of every run that failed verification.
    pub failures: Vec<(String, InvariantViolation)>,
}

impl CampaignSummary {
    /// `Ok` if every run passed verification; otherwise the first failing
    /// label and violation.
    ///
    /// # Errors
    ///
    /// Returns the label of the first unverified run plus its first
    /// violation.
    pub fn verified(&self) -> Result<(), (String, InvariantViolation)> {
        match self.failures.first() {
            None => Ok(()),
            Some((label, violation)) => Err((label.clone(), violation.clone())),
        }
    }
}

/// One row of the normalized-runtime aggregate (Figures 4a / 5a).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeRow {
    /// Point label.
    pub label: String,
    /// Cycles per transaction (the paper's figure of merit).
    pub cycles_per_transaction: f64,
    /// Runtime normalized against the campaign's first point.
    pub normalized: f64,
    /// Percentage of misses served cache-to-cache.
    pub cache_to_cache_pct: f64,
}

impl RuntimeRow {
    /// Builds the row for one run. `baseline` is the first run's
    /// cycles-per-transaction — shared by the buffered and streaming paths
    /// so their aggregates are bit-identical.
    fn from_run(run: &CampaignRun, baseline: f64) -> RuntimeRow {
        RuntimeRow {
            label: run.label.clone(),
            cycles_per_transaction: run.report.cycles_per_transaction(),
            normalized: run.report.cycles_per_transaction() / baseline,
            cache_to_cache_pct: 100.0 * run.report.misses.cache_to_cache_fraction(),
        }
    }
}

/// One row of the traffic-breakdown aggregate (Figures 4b / 5b).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRow {
    /// Point label.
    pub label: String,
    /// Bytes per miss for every [`TrafficClass`], in the paper's stacked-bar
    /// order.
    pub per_class: Vec<(TrafficClass, f64)>,
    /// Total link-crossing bytes per miss.
    pub total: f64,
}

impl TrafficRow {
    fn from_run(run: &CampaignRun) -> TrafficRow {
        let breakdown = run.report.traffic_breakdown();
        TrafficRow {
            label: run.label.clone(),
            total: breakdown.total(),
            per_class: breakdown.per_class,
        }
    }
}

/// One row of the miss-latency aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct MissLatencyRow {
    /// Point label.
    pub label: String,
    /// Total misses in the run.
    pub misses: u64,
    /// Average miss latency in nanoseconds.
    pub avg_latency_ns: f64,
    /// Median end-to-end miss latency in nanoseconds.
    pub p50_latency_ns: u64,
    /// 99th-percentile end-to-end miss latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Worst end-to-end miss latency in nanoseconds.
    pub max_latency_ns: u64,
    /// Per-node completion-share skew in parts per million (0 = perfectly
    /// fair).
    pub completion_skew_ppm: u64,
    /// Percentage of misses served cache-to-cache.
    pub cache_to_cache_pct: f64,
    /// Percentage of misses that needed at least one reissue or a persistent
    /// request (zero for the non-token protocols).
    pub reissued_pct: f64,
}

impl MissLatencyRow {
    fn from_run(run: &CampaignRun) -> MissLatencyRow {
        let misses = &run.report.misses;
        let [_, once, more, persistent] = run.report.reissue.percentages();
        MissLatencyRow {
            label: run.label.clone(),
            misses: misses.total_misses(),
            avg_latency_ns: misses.average_miss_latency(),
            p50_latency_ns: run.report.miss_latency_p50,
            p99_latency_ns: run.report.miss_latency_p99,
            max_latency_ns: run.report.miss_latency_max,
            completion_skew_ppm: run.report.completion_skew_ppm,
            cache_to_cache_pct: 100.0 * misses.cache_to_cache_fraction(),
            reissued_pct: once + more + persistent,
        }
    }
}

/// Everything a finished campaign measured: per-point reports in submission
/// order plus the aggregate tables.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-point runs, in the order the points were submitted.
    pub runs: Vec<CampaignRun>,
    /// The options every point ran under.
    pub options: RunOptions,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
}

impl CampaignReport {
    /// The per-point reports, in submission order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.runs.iter().map(|run| &run.report)
    }

    /// A sub-report over `count` runs starting at `start` (used to render a
    /// flattened multi-section campaign section by section). Wall-clock and
    /// thread count are inherited from the whole campaign.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, count: usize) -> CampaignReport {
        CampaignReport {
            runs: self.runs[start..start + count].to_vec(),
            options: self.options,
            threads: self.threads,
            wall_seconds: self.wall_seconds,
        }
    }

    /// `Ok` if every run passed verification; otherwise the first failing
    /// label and violation.
    ///
    /// # Errors
    ///
    /// Returns the label of the first unverified run plus its first
    /// violation.
    pub fn verified(&self) -> Result<(), (String, InvariantViolation)> {
        for run in &self.runs {
            if let Err(violation) = run.report.verified() {
                return Err((run.label.clone(), violation));
            }
        }
        Ok(())
    }

    /// The normalized-runtime aggregate, normalized against the first run.
    pub fn runtime_rows(&self) -> Vec<RuntimeRow> {
        let baseline = self
            .runs
            .first()
            .map(|run| run.report.cycles_per_transaction())
            .unwrap_or(1.0);
        self.runs
            .iter()
            .map(|run| RuntimeRow::from_run(run, baseline))
            .collect()
    }

    /// The traffic-breakdown aggregate, in bytes per miss.
    pub fn traffic_rows(&self) -> Vec<TrafficRow> {
        self.runs.iter().map(TrafficRow::from_run).collect()
    }

    /// The miss-latency aggregate.
    pub fn miss_latency_rows(&self) -> Vec<MissLatencyRow> {
        self.runs.iter().map(MissLatencyRow::from_run).collect()
    }

    /// The aggregate-only view of this report — what
    /// [`Campaign::run_streaming`] returns. Used by tests to pin the
    /// streaming path bit-identical to the buffered one.
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary {
            points: self.runs.len(),
            options: self.options,
            threads: self.threads,
            wall_seconds: self.wall_seconds,
            peak_reorder_buffer: 0,
            runtime: self.runtime_rows(),
            traffic: self.traffic_rows(),
            miss_latency: self.miss_latency_rows(),
            failures: self
                .runs
                .iter()
                .filter_map(|run| {
                    run.report
                        .verified()
                        .err()
                        .map(|violation| (run.label.clone(), violation))
                })
                .collect(),
        }
    }

    /// Renders the normalized-runtime aggregate as an aligned text table,
    /// mirroring the "normalized runtime" bars of Figures 4a and 5a (smaller
    /// is better).
    pub fn render_runtime_table(&self, title: &str) -> String {
        let mut out = format!(
            "{title}\n{:<38} {:>16} {:>12} {:>12}\n",
            "configuration", "cycles/txn", "normalized", "c2c misses"
        );
        for row in self.runtime_rows() {
            out.push_str(&format!(
                "{:<38} {:>16.0} {:>12.3} {:>11.1}%\n",
                row.label, row.cycles_per_transaction, row.normalized, row.cache_to_cache_pct
            ));
        }
        out
    }

    /// Renders the traffic-breakdown aggregate as an aligned text table,
    /// mirroring the stacked bars of Figures 4b and 5b.
    pub fn render_traffic_table(&self, title: &str) -> String {
        let mut out = format!(
            "{title}\n{:<24} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "configuration", "data+wb", "requests", "fwd+inv", "other", "reissue+per", "total"
        );
        for run in &self.runs {
            let breakdown = run.report.traffic_breakdown();
            out.push_str(&format!(
                "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                run.label,
                breakdown.class(TrafficClass::DataResponseOrWriteback),
                breakdown.class(TrafficClass::Request),
                breakdown.class(TrafficClass::ForwardedOrInvalidation),
                breakdown.class(TrafficClass::OtherControl),
                breakdown.class(TrafficClass::ReissueOrPersistent),
                breakdown.total()
            ));
        }
        out
    }

    /// Renders the miss-latency aggregate as an aligned text table.
    pub fn render_miss_latency_table(&self, title: &str) -> String {
        let mut out = format!(
            "{title}\n{:<38} {:>10} {:>14} {:>9} {:>9} {:>9} {:>10} {:>12} {:>10}\n",
            "configuration",
            "misses",
            "avg lat (ns)",
            "p50",
            "p99",
            "max",
            "skew ppm",
            "c2c misses",
            "reissued"
        );
        for row in self.miss_latency_rows() {
            out.push_str(&format!(
                "{:<38} {:>10} {:>14.1} {:>9} {:>9} {:>9} {:>10} {:>11.1}% {:>9.2}%\n",
                row.label,
                row.misses,
                row.avg_latency_ns,
                row.p50_latency_ns,
                row.p99_latency_ns,
                row.max_latency_ns,
                row.completion_skew_ppm,
                row.cache_to_cache_pct,
                row.reissued_pct
            ));
        }
        out
    }

    /// Serializes the whole campaign — per-point reports and the three
    /// aggregates — as JSON, using a hand-rolled writer (the offline build
    /// has no serde; same policy as `BENCH_engine.json`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open('{');
        w.field_u64("points", self.runs.len() as u64);
        w.field_u64("threads", self.threads as u64);
        w.field_u64("ops_per_node", self.options.ops_per_node);
        w.field_u64("max_cycles", self.options.max_cycles);
        w.field_str("faults", &self.options.faults.to_string());
        w.field_str("adversary", &self.options.adversary.to_string());
        w.field_f64("wall_seconds", self.wall_seconds, 3);
        w.key("runs");
        w.open('[');
        for run in &self.runs {
            write_run_object(&mut w, &run.label, &run.report);
        }
        w.close(']');
        w.key("normalized_runtime");
        w.open('[');
        for row in self.runtime_rows() {
            w.open('{');
            w.field_str("label", &row.label);
            w.field_f64("cycles_per_transaction", row.cycles_per_transaction, 2);
            w.field_f64("normalized", row.normalized, 4);
            w.close('}');
        }
        w.close(']');
        w.key("traffic_bytes_per_miss");
        w.open('[');
        for row in self.traffic_rows() {
            w.open('{');
            w.field_str("label", &row.label);
            for (class, bytes) in &row.per_class {
                w.field_f64(class_key(*class), *bytes, 2);
            }
            w.field_f64("total", row.total, 2);
            w.close('}');
        }
        w.close(']');
        w.key("miss_latency");
        w.open('[');
        for row in self.miss_latency_rows() {
            w.open('{');
            w.field_str("label", &row.label);
            w.field_u64("misses", row.misses);
            w.field_f64("avg_latency_ns", row.avg_latency_ns, 2);
            w.field_u64("p50_latency_ns", row.p50_latency_ns);
            w.field_u64("p99_latency_ns", row.p99_latency_ns);
            w.field_u64("max_latency_ns", row.max_latency_ns);
            w.field_u64("completion_skew_ppm", row.completion_skew_ppm);
            w.field_f64("cache_to_cache_pct", row.cache_to_cache_pct, 2);
            w.field_f64("reissued_pct", row.reissued_pct, 3);
            w.close('}');
        }
        w.close(']');
        w.close('}');
        w.finish()
    }
}

/// Serializes one run as a compact JSON object — the canonical per-run
/// wire form. [`CampaignReport::to_json`]'s `runs` array is built from
/// exactly these objects, and the campaign service streams them verbatim,
/// which is what makes "served result == one-shot result" a *byte*-level
/// contract rather than a semantic one. Every field is a deterministic
/// function of the simulation (no wall-clock, no thread count).
pub fn run_to_json(label: &str, report: &RunReport) -> String {
    let mut w = JsonWriter::new();
    write_run_object(&mut w, label, report);
    w.finish()
}

/// The shared body behind [`run_to_json`] and [`CampaignReport::to_json`].
fn write_run_object(w: &mut JsonWriter, label: &str, r: &RunReport) {
    w.open('{');
    w.field_str("label", label);
    w.field_str("protocol", r.protocol.name());
    w.field_str("topology", r.topology.name());
    w.field_str("workload", &r.workload);
    w.field_u64("num_nodes", r.num_nodes as u64);
    w.field_u64("runtime_cycles", r.runtime_cycles);
    w.field_u64("total_ops", r.total_ops);
    w.field_u64("total_transactions", r.total_transactions);
    w.field_f64("cycles_per_transaction", r.cycles_per_transaction(), 2);
    w.field_u64("misses", r.misses.total_misses());
    w.field_f64("avg_miss_latency_ns", r.misses.average_miss_latency(), 2);
    w.field_u64("miss_latency_p50_ns", r.miss_latency_p50);
    w.field_u64("miss_latency_p99_ns", r.miss_latency_p99);
    w.field_u64("miss_latency_max_ns", r.miss_latency_max);
    w.field_u64("completion_skew_ppm", r.completion_skew_ppm);
    w.field_f64("bytes_per_miss", r.bytes_per_miss(), 2);
    w.field_u64("events_delivered", r.engine.events_delivered);
    w.field_u64("peak_state_entries", r.engine.state.total_entries());
    w.field_u64("peak_state_bytes", r.engine.state.state_bytes);
    w.field_str("faults", &r.faults.to_string());
    if !r.faults.is_none() {
        let fs = &r.engine.faults;
        w.field_u64("faults_dropped", fs.dropped);
        w.field_u64("faults_duplicated", fs.duplicated);
        w.field_u64("faults_delayed", fs.delayed);
        w.field_u64("faults_reordered", fs.reordered);
        w.field_u64("faults_link_deferred", fs.link_deferred);
        w.field_u64("reissue_timeouts", fs.reissue_timeouts);
        w.field_u64("persistent_activations", fs.persistent_activations);
        w.field_u64("max_recovery_ns", fs.max_recovery_ns);
    }
    if !r.adversary.is_none() {
        w.field_str("adversary", &r.adversary.to_string());
        let adv = &r.engine.adversary;
        w.field_u64("adversary_reordered", adv.reordered);
        w.field_u64("adversary_targeted", adv.targeted);
        w.field_u64("adversary_stormed", adv.stormed);
        w.field_u64("adversary_max_skew_ns", adv.max_skew_ns);
    }
    w.field_u64("violations", r.violations.len() as u64);
    w.close('}');
}

/// Stable JSON key for a traffic class.
fn class_key(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::Request => "requests",
        TrafficClass::ForwardedOrInvalidation => "forwarded_or_invalidation",
        TrafficClass::DataResponseOrWriteback => "data_or_writeback",
        TrafficClass::OtherControl => "other_control",
        TrafficClass::ReissueOrPersistent => "reissue_or_persistent",
    }
}

/// A minimal hand-rolled JSON emitter: objects, arrays, strings, and
/// numbers, with comma placement handled by tracking whether the current
/// container already has a member. Kept private to this module — it emits
/// exactly the subset [`CampaignReport::to_json`] needs.
struct JsonWriter {
    out: String,
    /// Whether the innermost open container already holds a member.
    has_member: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            has_member: Vec::new(),
        }
    }

    fn comma(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    fn open(&mut self, bracket: char) {
        self.comma();
        self.out.push(bracket);
        self.has_member.push(false);
    }

    fn close(&mut self, bracket: char) {
        self.out.push(bracket);
        self.has_member.pop();
    }

    /// Emits `"key":`, leaving the value to the next `open` call. The
    /// pending-comma state is cleared so that `open` does not emit a second
    /// comma for the same member.
    fn key(&mut self, key: &str) {
        self.comma();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":");
        if let Some(has) = self.has_member.last_mut() {
            *has = false;
        }
    }

    fn field_str(&mut self, key: &str, value: &str) {
        self.comma();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":\"");
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn field_u64(&mut self, key: &str, value: u64) {
        self.comma();
        self.out.push_str(&format!("\"{key}\":{value}"));
    }

    fn field_f64(&mut self, key: &str, value: f64, decimals: usize) {
        self.comma();
        if value.is_finite() {
            self.out.push_str(&format!("\"{key}\":{value:.decimals$}"));
        } else {
            // JSON has no NaN/Infinity; an undefined metric (0 misses makes
            // bytes-per-miss 0/0) must not masquerade as a measured zero.
            self.out.push_str(&format!("\"{key}\":null"));
        }
    }

    fn finish(self) -> String {
        debug_assert!(self.has_member.is_empty(), "unbalanced JSON containers");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{ProtocolKind, SystemConfig};
    use tc_workloads::WorkloadProfile;

    fn small_points() -> Vec<ExperimentPoint> {
        ProtocolKind::ALL
            .iter()
            .map(|&protocol| {
                let mut config = SystemConfig::isca03_default()
                    .with_nodes(4)
                    .with_protocol(protocol)
                    .with_seed(7);
                config.l2.size_bytes = 256 * 1024;
                ExperimentPoint::new(
                    format!("{protocol}-smoke"),
                    config,
                    WorkloadProfile::specjbb(),
                )
            })
            .collect()
    }

    fn tiny_options() -> RunOptions {
        RunOptions {
            ops_per_node: 250,
            max_cycles: 20_000_000,
            ..RunOptions::default()
        }
    }

    #[test]
    fn campaign_preserves_submission_order_and_labels() {
        let points = small_points();
        let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
        let report = Campaign::new(points)
            .options(tiny_options())
            .threads(3)
            .run();
        let got: Vec<String> = report.runs.iter().map(|r| r.label.clone()).collect();
        assert_eq!(got, labels);
        assert!(report.verified().is_ok());
        assert_eq!(report.threads, 3);
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn progress_events_fire_once_per_point() {
        use std::sync::atomic::AtomicU64;
        let started = std::sync::Arc::new(AtomicU64::new(0));
        let finished = std::sync::Arc::new(AtomicU64::new(0));
        let (s, f) = (started.clone(), finished.clone());
        let report = Campaign::new(small_points())
            .options(tiny_options())
            .threads(2)
            .on_progress(move |event| match event {
                CampaignEvent::Started { .. } => {
                    s.fetch_add(1, Ordering::Relaxed);
                }
                CampaignEvent::Finished { ok, .. } => {
                    assert!(ok);
                    f.fetch_add(1, Ordering::Relaxed);
                }
            })
            .run();
        assert_eq!(started.load(Ordering::Relaxed), report.runs.len() as u64);
        assert_eq!(finished.load(Ordering::Relaxed), report.runs.len() as u64);
    }

    #[test]
    fn aggregates_are_normalized_against_the_first_point() {
        let report = Campaign::new(small_points())
            .options(tiny_options())
            .threads(1)
            .run();
        let runtime = report.runtime_rows();
        assert_eq!(runtime.len(), 4);
        assert!((runtime[0].normalized - 1.0).abs() < 1e-12);
        let traffic = report.traffic_rows();
        assert!(traffic.iter().all(|row| row.total >= 0.0));
        let latency = report.miss_latency_rows();
        assert!(latency.iter().all(|row| row.misses > 0));
        // The renderers must not panic and must mention every label.
        let text = format!(
            "{}{}{}",
            report.render_runtime_table("runtime"),
            report.render_traffic_table("traffic"),
            report.render_miss_latency_table("latency")
        );
        for run in &report.runs {
            assert!(text.contains(&run.label));
        }
    }

    #[test]
    fn slice_returns_contiguous_sections() {
        let report = Campaign::new(small_points())
            .options(tiny_options())
            .threads(2)
            .run();
        let head = report.slice(0, 2);
        let tail = report.slice(2, 2);
        assert_eq!(head.runs.len(), 2);
        assert_eq!(tail.runs.len(), 2);
        assert_eq!(head.runs[0], report.runs[0]);
        assert_eq!(tail.runs[1], report.runs[3]);
    }

    /// The crash-path contract: a panic inside one point must fail the
    /// campaign promptly and resurface naming the failing point — not
    /// strand the caller behind every remaining point and a label-less
    /// thread-scope re-panic.
    #[test]
    fn a_panicking_point_fails_fast_and_names_itself() {
        let mut points = small_points();
        // `System::build` panics on an invalid configuration; zero nodes is
        // reliably invalid.
        points.insert(
            1,
            ExperimentPoint::new(
                "explosive-point".to_string(),
                SystemConfig::isca03_default().with_nodes(0).with_seed(7),
                WorkloadProfile::specjbb(),
            ),
        );
        let payload = catch_unwind(AssertUnwindSafe(|| {
            Campaign::new(points)
                .options(tiny_options())
                .threads(2)
                .run()
        }))
        .expect_err("campaign must propagate the point's panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("explosive-point"),
            "panic must name the failing point, got: {message}"
        );
    }

    #[test]
    fn empty_campaign_is_a_no_op() {
        let report = Campaign::new(Vec::new()).threads(8).run();
        assert!(report.runs.is_empty());
        assert!(report.verified().is_ok());
        assert!(report.to_json().contains("\"points\":0"));
        let summary = Campaign::new(Vec::new())
            .threads(8)
            .run_streaming(|_, _| {});
        assert_eq!(summary.points, 0);
        assert!(summary.verified().is_ok());
    }

    /// The streaming satellite's contract: `run_streaming` must produce
    /// aggregates bit-identical to the buffered path at any thread count,
    /// and deliver runs to the sink in submission order exactly once.
    #[test]
    fn streaming_aggregates_are_bit_identical_to_buffered() {
        let buffered = Campaign::new(small_points())
            .options(tiny_options())
            .threads(1)
            .run();
        let reference = buffered.summary();
        for threads in [1usize, 3] {
            let seen = Mutex::new(Vec::new());
            let summary = Campaign::new(small_points())
                .options(tiny_options())
                .threads(threads)
                .run_streaming(|index, run| {
                    seen.lock().unwrap().push((index, run.label.clone()));
                });
            let seen = seen.into_inner().unwrap();
            // Submission order, each point exactly once.
            assert_eq!(
                seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                (0..buffered.runs.len()).collect::<Vec<_>>(),
                "threads={threads}"
            );
            for ((_, label), run) in seen.iter().zip(&buffered.runs) {
                assert_eq!(label, &run.label, "threads={threads}");
            }
            // Bit-identical aggregates (wall-clock and thread count are the
            // only legitimately differing fields).
            assert_eq!(summary.runtime, reference.runtime, "threads={threads}");
            assert_eq!(summary.traffic, reference.traffic, "threads={threads}");
            assert_eq!(
                summary.miss_latency, reference.miss_latency,
                "threads={threads}"
            );
            assert_eq!(summary.failures, reference.failures, "threads={threads}");
            assert_eq!(summary.points, reference.points);
            assert_eq!(summary.options, reference.options);
            assert!(summary.verified().is_ok());
        }
    }

    #[test]
    fn json_carries_the_state_plane_fields() {
        let mut points = small_points();
        points.truncate(1);
        let report = Campaign::new(points)
            .options(tiny_options())
            .threads(1)
            .run();
        let json = report.to_json();
        assert!(json.contains("\"peak_state_bytes\":"));
        assert!(json.contains("\"peak_state_entries\":"));
        assert!(report.runs[0].report.engine.state.state_bytes > 0);
        assert!(report.runs[0].report.engine.state.mshr_peak > 0);
    }

    #[test]
    fn json_is_structurally_balanced_and_carries_the_runs() {
        let report = Campaign::new(small_points())
            .options(tiny_options())
            .threads(2)
            .run();
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        for run in &report.runs {
            assert!(json.contains(&format!("\"label\":\"{}\"", run.label)));
        }
        assert!(json.contains("\"normalized_runtime\":["));
        assert!(json.contains("\"traffic_bytes_per_miss\":["));
        assert!(json.contains("\"miss_latency\":["));
        assert!(json.contains("\"events_delivered\":"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes_in_labels() {
        let mut w = JsonWriter::new();
        w.open('{');
        w.field_str("label", "a \"quoted\\label\"\n");
        w.close('}');
        assert_eq!(w.finish(), "{\"label\":\"a \\\"quoted\\\\label\\\"\\n\"}");
    }

    /// The slow-sink contract: when the consumer lags the workers, the
    /// reorder buffer must stay bounded by the worker count (workers block
    /// on the emitter lock rather than piling completed runs up without
    /// limit), and delivery must still be exactly-once in submission order.
    #[test]
    fn streaming_reorder_buffer_stays_bounded_under_a_slow_sink() {
        let points = small_points();
        let expected: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
        let threads = 4usize;
        let seen = Mutex::new(Vec::new());
        let summary = Campaign::new(points)
            .options(tiny_options())
            .threads(threads)
            .run_streaming(|index, run| {
                // Lag the consumer: every worker finishes its point before
                // the first emitted run leaves the sink.
                std::thread::sleep(std::time::Duration::from_millis(100));
                seen.lock().unwrap().push((index, run.label.clone()));
            });
        let seen = seen.into_inner().unwrap();
        assert_eq!(
            seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            (0..expected.len()).collect::<Vec<_>>()
        );
        for ((_, label), want) in seen.iter().zip(&expected) {
            assert_eq!(label, want);
        }
        assert!(
            summary.peak_reorder_buffer <= threads,
            "reorder buffer held {} runs with only {} workers",
            summary.peak_reorder_buffer,
            threads
        );
        assert!(summary.verified().is_ok());
    }

    /// The wire-format satellite: the hand-rolled writer's output must be
    /// accepted by the hand-rolled reader, and re-serialize byte-identically
    /// (the reader preserves member order and raw number tokens).
    #[test]
    fn campaign_json_parses_and_reserializes_byte_identically() {
        let report = Campaign::new(small_points())
            .options(tiny_options())
            .threads(2)
            .run();
        let json = report.to_json();
        let parsed = tc_types::Json::parse(&json).expect("writer output must parse");
        assert_eq!(parsed.to_string(), json);
        // Same contract for the per-run wire form the campaign service streams.
        for run in &report.runs {
            let line = run_to_json(&run.label, &run.report);
            let parsed = tc_types::Json::parse(&line).expect("run line must parse");
            assert_eq!(parsed.to_string(), line);
            assert_eq!(
                parsed.get("label").and_then(tc_types::Json::as_str),
                Some(run.label.as_str())
            );
        }
    }

    /// The snapshot-plane contract for full reports: a `RunReport` must
    /// survive save_state -> load_state exactly (every field participates
    /// in `PartialEq`).
    #[test]
    fn run_report_round_trips_through_the_snapshot_codec() {
        let report = Campaign::new(small_points())
            .options(tiny_options())
            .threads(1)
            .run();
        for run in &report.runs {
            let mut w = tc_sim::SnapWriter::new();
            run.report.save_state(&mut w);
            let payload = w.into_bytes();
            let mut r = tc_sim::SnapReader::new(&payload);
            let restored = RunReport::load_state(&mut r).expect("round trip must decode");
            r.finish().expect("no trailing bytes");
            assert_eq!(restored, run.report, "label={}", run.label);
        }
    }
}
