//! Runtime verification of the coherence safety and liveness properties.

use std::collections::VecDeque;

use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{BlockAddr, BlockAudit, Cycle, FastHashMap, InvariantViolation, NodeId};

/// Recent write history for one block: which version was current when.
#[derive(Debug, Clone, Default)]
struct BlockHistory {
    /// (version, time it became current), oldest first; the last entry is the
    /// currently visible version. Bounded to keep memory use constant; a
    /// deque so trimming the oldest entry is O(1) rather than a memmove of
    /// the whole window on every write to a hot block.
    versions: VecDeque<(u64, Cycle)>,
}

impl BlockHistory {
    const MAX_ENTRIES: usize = 128;

    fn ensure_initial(&mut self) {
        if self.versions.is_empty() {
            // Version 0 (the never-written block) is current from time zero.
            self.versions.push_back((0, 0));
        }
    }

    fn record(&mut self, version: u64, at: Cycle) {
        self.ensure_initial();
        self.versions.push_back((version, at));
        while self.versions.len() > Self::MAX_ENTRIES {
            self.versions.pop_front();
        }
    }

    fn current(&self) -> u64 {
        self.versions.back().map(|(v, _)| *v).unwrap_or(0)
    }

    /// Returns `true` if `version` was the current version at some instant in
    /// the window `[issued_at, completed_at]`.
    ///
    /// Scans newest-first: an entry is superseded at the instant its
    /// successor became current, and legal reads overwhelmingly observe
    /// recent versions, so the reverse scan exits after a step or two where
    /// the forward scan walked the whole window.
    fn was_current_during(&self, version: u64, issued_at: Cycle, completed_at: Cycle) -> bool {
        if self.versions.is_empty() {
            return version == 0;
        }
        let mut superseded_at = Cycle::MAX;
        for &(v, became_current) in self.versions.iter().rev() {
            if v == version && superseded_at >= issued_at && became_current <= completed_at {
                return true;
            }
            superseded_at = became_current;
        }
        false
    }
}

/// Checks the properties the correctness substrate is supposed to guarantee.
///
/// * **Value safety** — every load must observe the value produced by the
///   most recent store that completed before it (the observable consequence
///   of "single writer or many readers, never both").
/// * **Token conservation** (Token Coherence only) — at quiescence, every
///   audited block still has exactly `T` tokens and exactly one owner token.
/// * **Single writer** — at quiescence, no block has two writable copies, and
///   a writable copy excludes any other readable copy.
/// * **Starvation freedom** — no request remains outstanding at the end of a
///   run for longer than the starvation bound.
///
/// The verifier is deliberately protocol-agnostic: it sees only completed
/// reads/writes and the [`BlockAudit`] snapshots controllers expose.
#[derive(Debug, Default)]
pub struct Verifier {
    /// Per-block write history. Keyed access only (never iterated), so the
    /// deterministic-but-unordered `FastHashMap` is safe and keeps the
    /// per-completed-operation lookup off the BTree pointer chase.
    history: FastHashMap<BlockAddr, BlockHistory>,
    /// Fairness oracle: persistent-request escalations currently outstanding,
    /// `(node, block) -> cycle the persistent request was first observed`.
    /// Keyed access plus sorted iteration at sweep/save time, so the
    /// unordered map stays deterministic.
    escalations: FastHashMap<(NodeId, BlockAddr), Cycle>,
    violations: Vec<InvariantViolation>,
    reads_checked: u64,
    writes_recorded: u64,
}

impl Verifier {
    /// Creates an empty verifier.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// Records a completed store of `version` to `addr` at time `at`.
    pub fn record_write(&mut self, _node: NodeId, addr: BlockAddr, version: u64, at: Cycle) {
        self.writes_recorded += 1;
        self.history.entry(addr).or_default().record(version, at);
    }

    /// Checks a load of `version` from `addr` that was issued at `issued_at`
    /// and completed at `at`.
    ///
    /// The load is legal if the value it observed was the block's current
    /// value at *some* instant during the load's lifetime — the coherence
    /// (per-location serializability) requirement. A load that returns a
    /// value that was already overwritten before the load was even issued is
    /// stale and gets flagged.
    pub fn check_read(
        &mut self,
        node: NodeId,
        addr: BlockAddr,
        version: u64,
        issued_at: Cycle,
        at: Cycle,
    ) {
        self.reads_checked += 1;
        let entry = self.history.entry(addr).or_default();
        entry.ensure_initial();
        // Observing the globally newest value is never stale (a write that
        // takes effect in the same event batch may carry a slightly later
        // completion timestamp than the read that already sees it).
        if version == entry.current() {
            return;
        }
        if !entry.was_current_during(version, issued_at, at) {
            self.violations.push(InvariantViolation::StaleDataRead {
                node,
                addr,
                observed_version: version,
                expected_version: entry.current(),
                at,
            });
        }
    }

    /// Audits token conservation and the single-writer property for one block
    /// given every node's audit plus the tokens currently in flight in the
    /// interconnect.
    pub fn audit_block(
        &mut self,
        addr: BlockAddr,
        audits: &[BlockAudit],
        in_flight_tokens: u32,
        in_flight_owners: u32,
        expected_tokens: Option<u32>,
        at: Cycle,
    ) {
        if let Some(expected) = expected_tokens {
            let total: u32 = audits.iter().map(|a| a.tokens).sum::<u32>() + in_flight_tokens;
            if total != expected {
                self.violations.push(InvariantViolation::TokenConservation {
                    addr,
                    expected,
                    found: total,
                    at,
                });
            }
            let owners = audits.iter().filter(|a| a.owner_token).count() as u32 + in_flight_owners;
            if owners != 1 {
                self.violations
                    .push(InvariantViolation::DuplicateOwner { addr, at });
            }
        }
        let writers = audits.iter().filter(|a| a.writable).count();
        let readers = audits.iter().filter(|a| a.readable).count();
        if writers > 1 || (writers == 1 && readers > 1) {
            self.violations
                .push(InvariantViolation::WriteWithoutExclusive {
                    node: NodeId::new(0),
                    addr,
                    held: readers as u32,
                    required: 1,
                    at,
                });
        }
        // At quiescence every surviving readable cache copy must hold the
        // block's current value: a write invalidates every sharer, so a
        // divergent copy is the signature of a *lost invalidation*. This is
        // the backstop for protocols whose read hits are only
        // coherence-checked at runtime (unacknowledged snooping, see
        // `AccessOutcome::Hit::valid_since`): transient skew-staleness is
        // legal while the invalidation is in flight, but nothing stale may
        // survive the drain.
        let current = self.history.get(&addr).map(|h| h.current()).unwrap_or(0);
        for audit in audits.iter().filter(|a| a.readable && !a.in_memory) {
            if audit.data_version != current {
                self.violations.push(InvariantViolation::StaleDataRead {
                    node: NodeId::new(0),
                    addr,
                    observed_version: audit.data_version,
                    expected_version: current,
                    at,
                });
            }
        }
    }

    /// Records a starvation violation (a request still outstanding at the end
    /// of the run beyond the starvation bound).
    pub fn record_starvation(
        &mut self,
        node: NodeId,
        addr: BlockAddr,
        issued_at: Cycle,
        at: Cycle,
    ) {
        self.violations.push(InvariantViolation::Starvation {
            node,
            addr,
            issued_at,
            at,
            waited: at.saturating_sub(issued_at),
        });
    }

    /// Fairness oracle: notes that `node` escalated to a persistent request
    /// for `addr` at time `at`. Only the *first* observation per `(node,
    /// block)` pair is kept — reissued persistent requests for the same
    /// stuck operation must not reset the waiting clock, or a protocol
    /// could launder starvation through periodic reissue.
    pub fn note_persistent_request(&mut self, node: NodeId, addr: BlockAddr, at: Cycle) {
        self.escalations.entry((node, addr)).or_insert(at);
    }

    /// Fairness oracle: notes that `node`'s operation on `addr` completed at
    /// `at`. If a persistent request had been observed for the pair and the
    /// time from escalation to completion exceeds `bound`, a
    /// [`InvariantViolation::Starvation`] is recorded — the request *did*
    /// eventually finish, but not within the bounded-wait guarantee the
    /// persistent-request machinery is supposed to provide.
    pub fn note_completion(&mut self, node: NodeId, addr: BlockAddr, at: Cycle, bound: Cycle) {
        if let Some(issued_at) = self.escalations.remove(&(node, addr)) {
            let waited = at.saturating_sub(issued_at);
            if waited > bound {
                self.violations.push(InvariantViolation::Starvation {
                    node,
                    addr,
                    issued_at,
                    at,
                    waited,
                });
            }
        }
    }

    /// Fairness oracle: end-of-run sweep. Every escalation still outstanding
    /// at `at` that has already waited longer than `bound` is starved —
    /// whether or not the run's drain loop would eventually have completed
    /// it. Entries are drained in `(node, block)` order so repeated runs
    /// report violations in a stable order.
    pub fn sweep_escalations(&mut self, at: Cycle, bound: Cycle) {
        let mut outstanding: Vec<((NodeId, BlockAddr), Cycle)> = self.escalations.drain().collect();
        outstanding.sort_unstable_by_key(|((node, addr), _)| (node.index(), addr.value()));
        for ((node, addr), issued_at) in outstanding {
            let waited = at.saturating_sub(issued_at);
            if waited > bound {
                self.violations.push(InvariantViolation::Starvation {
                    node,
                    addr,
                    issued_at,
                    at,
                    waited,
                });
            }
        }
    }

    /// Number of persistent-request escalations the fairness oracle is still
    /// tracking (not yet completed or swept).
    pub fn escalations_outstanding(&self) -> usize {
        self.escalations.len()
    }

    /// Records a deadlock violation (the drain limit was hit with a request
    /// still outstanding and events still in flight).
    pub fn record_deadlock(&mut self, node: NodeId, addr: BlockAddr, issued_at: Cycle, at: Cycle) {
        self.violations.push(InvariantViolation::Deadlock {
            node,
            addr,
            issued_at,
            at,
        });
    }

    /// Records a livelock: the forward-progress watchdog exhausted its
    /// event budget with events still flowing but no operation completing.
    pub fn record_livelock(
        &mut self,
        node: NodeId,
        addr: BlockAddr,
        issued_at: Cycle,
        at: Cycle,
        events_without_progress: u64,
    ) {
        self.violations.push(InvariantViolation::Livelock {
            node,
            addr,
            issued_at,
            at,
            events_without_progress,
        });
    }

    /// All violations detected so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// (reads checked, writes recorded) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.reads_checked, self.writes_recorded)
    }

    /// Consumes the verifier, returning its violations.
    pub fn into_violations(self) -> Vec<InvariantViolation> {
        self.violations
    }

    /// Serializes the verifier. The write-history map is iterated in block
    /// order so identical verifier states always produce identical bytes.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.reads_checked);
        w.u64(self.writes_recorded);
        let mut blocks: Vec<(&BlockAddr, &BlockHistory)> = self.history.iter().collect();
        blocks.sort_unstable_by_key(|(addr, _)| **addr);
        w.seq(blocks.into_iter(), |w, (addr, history)| {
            w.u64(addr.value());
            w.seq(history.versions.iter(), |w, &(version, at)| {
                w.u64(version);
                w.u64(at);
            });
        });
        w.seq(self.violations.iter(), emit_violation);
        let mut escalations: Vec<(&(NodeId, BlockAddr), &Cycle)> =
            self.escalations.iter().collect();
        escalations.sort_unstable_by_key(|((node, addr), _)| (node.index(), addr.value()));
        w.seq(escalations.into_iter(), |w, ((node, addr), at)| {
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u64(*at);
        });
    }

    /// Restores [`Verifier::save_state`] bytes.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.reads_checked = r.u64()?;
        self.writes_recorded = r.u64()?;
        let block_count = r.bounded_len(16)?;
        self.history.clear();
        for _ in 0..block_count {
            let addr = BlockAddr::new(r.u64()?);
            let version_count = r.bounded_len(16)?;
            let mut versions = VecDeque::with_capacity(version_count);
            for _ in 0..version_count {
                versions.push_back((r.u64()?, r.u64()?));
            }
            self.history.insert(addr, BlockHistory { versions });
        }
        let violation_count = r.bounded_len(9)?;
        self.violations = Vec::with_capacity(violation_count);
        for _ in 0..violation_count {
            self.violations.push(read_violation(r)?);
        }
        let escalation_count = r.bounded_len(20)?;
        self.escalations.clear();
        for _ in 0..escalation_count {
            let node = NodeId::new(r.u32()? as usize);
            let addr = BlockAddr::new(r.u64()?);
            let at = r.u64()?;
            self.escalations.insert((node, addr), at);
        }
        Ok(())
    }
}

// Snapshot codec for violations. Tags are wire format: append, never
// renumber.
pub(crate) fn emit_violation(w: &mut SnapWriter, v: &InvariantViolation) {
    match *v {
        InvariantViolation::TokenConservation {
            addr,
            expected,
            found,
            at,
        } => {
            w.u8(0);
            w.u64(addr.value());
            w.u32(expected);
            w.u32(found);
            w.u64(at);
        }
        InvariantViolation::DuplicateOwner { addr, at } => {
            w.u8(1);
            w.u64(addr.value());
            w.u64(at);
        }
        InvariantViolation::WriteWithoutExclusive {
            node,
            addr,
            held,
            required,
            at,
        } => {
            w.u8(2);
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u32(held);
            w.u32(required);
            w.u64(at);
        }
        InvariantViolation::ReadWithoutToken { node, addr, at } => {
            w.u8(3);
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u64(at);
        }
        InvariantViolation::OwnerTokenWithoutData { addr, at } => {
            w.u8(4);
            w.u64(addr.value());
            w.u64(at);
        }
        InvariantViolation::StaleDataRead {
            node,
            addr,
            observed_version,
            expected_version,
            at,
        } => {
            w.u8(5);
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u64(observed_version);
            w.u64(expected_version);
            w.u64(at);
        }
        // Tag 6 was the four-field Starvation without `waited`; tag 9 is the
        // five-field replacement. Tag 6 is still *read* (below) for
        // compatibility with pre-existing snapshots, never written.
        InvariantViolation::Starvation {
            node,
            addr,
            issued_at,
            at,
            waited,
        } => {
            w.u8(9);
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u64(issued_at);
            w.u64(at);
            w.u64(waited);
        }
        InvariantViolation::Livelock {
            node,
            addr,
            issued_at,
            at,
            events_without_progress,
        } => {
            w.u8(7);
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u64(issued_at);
            w.u64(at);
            w.u64(events_without_progress);
        }
        InvariantViolation::Deadlock {
            node,
            addr,
            issued_at,
            at,
        } => {
            w.u8(8);
            w.u32(node.index() as u32);
            w.u64(addr.value());
            w.u64(issued_at);
            w.u64(at);
        }
    }
}

pub(crate) fn read_violation(r: &mut SnapReader<'_>) -> Result<InvariantViolation, SnapshotError> {
    Ok(match r.u8()? {
        0 => InvariantViolation::TokenConservation {
            addr: BlockAddr::new(r.u64()?),
            expected: r.u32()?,
            found: r.u32()?,
            at: r.u64()?,
        },
        1 => InvariantViolation::DuplicateOwner {
            addr: BlockAddr::new(r.u64()?),
            at: r.u64()?,
        },
        2 => InvariantViolation::WriteWithoutExclusive {
            node: NodeId::new(r.u32()? as usize),
            addr: BlockAddr::new(r.u64()?),
            held: r.u32()?,
            required: r.u32()?,
            at: r.u64()?,
        },
        3 => InvariantViolation::ReadWithoutToken {
            node: NodeId::new(r.u32()? as usize),
            addr: BlockAddr::new(r.u64()?),
            at: r.u64()?,
        },
        4 => InvariantViolation::OwnerTokenWithoutData {
            addr: BlockAddr::new(r.u64()?),
            at: r.u64()?,
        },
        5 => InvariantViolation::StaleDataRead {
            node: NodeId::new(r.u32()? as usize),
            addr: BlockAddr::new(r.u64()?),
            observed_version: r.u64()?,
            expected_version: r.u64()?,
            at: r.u64()?,
        },
        6 => {
            // Legacy four-field Starvation: derive the wait it implied.
            let node = NodeId::new(r.u32()? as usize);
            let addr = BlockAddr::new(r.u64()?);
            let issued_at = r.u64()?;
            let at = r.u64()?;
            InvariantViolation::Starvation {
                node,
                addr,
                issued_at,
                at,
                waited: at.saturating_sub(issued_at),
            }
        }
        7 => InvariantViolation::Livelock {
            node: NodeId::new(r.u32()? as usize),
            addr: BlockAddr::new(r.u64()?),
            issued_at: r.u64()?,
            at: r.u64()?,
            events_without_progress: r.u64()?,
        },
        8 => InvariantViolation::Deadlock {
            node: NodeId::new(r.u32()? as usize),
            addr: BlockAddr::new(r.u64()?),
            issued_at: r.u64()?,
            at: r.u64()?,
        },
        9 => InvariantViolation::Starvation {
            node: NodeId::new(r.u32()? as usize),
            addr: BlockAddr::new(r.u64()?),
            issued_at: r.u64()?,
            at: r.u64()?,
            waited: r.u64()?,
        },
        other => return Err(SnapshotError::Corrupt(format!("violation tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(tokens: u32, owner: bool, readable: bool, writable: bool) -> BlockAudit {
        BlockAudit {
            tokens,
            owner_token: owner,
            readable,
            writable,
            data_version: 0,
            in_memory: false,
        }
    }

    #[test]
    fn reads_of_the_latest_write_pass() {
        let mut v = Verifier::new();
        v.record_write(NodeId::new(0), BlockAddr::new(1), 10, 100);
        v.check_read(NodeId::new(1), BlockAddr::new(1), 10, 150, 200);
        assert!(v.violations().is_empty());
        assert_eq!(v.counters(), (1, 1));
    }

    #[test]
    fn stale_reads_are_flagged() {
        let mut v = Verifier::new();
        v.record_write(NodeId::new(0), BlockAddr::new(1), 10, 100);
        v.record_write(NodeId::new(2), BlockAddr::new(1), 20, 200);
        // Issued and completed strictly after the second write, yet observed
        // the first write's value: stale.
        v.check_read(NodeId::new(1), BlockAddr::new(1), 10, 250, 300);
        assert_eq!(v.violations().len(), 1);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::StaleDataRead { .. }
        ));
    }

    #[test]
    fn reads_ordered_before_a_racing_write_are_tolerated() {
        let mut v = Verifier::new();
        v.record_write(NodeId::new(0), BlockAddr::new(1), 10, 100);
        v.record_write(NodeId::new(2), BlockAddr::new(1), 20, 200);
        // The read was issued while version 10 was still current, so the
        // coherence order may legally place it before the second write even
        // though its data arrived later.
        v.check_read(NodeId::new(1), BlockAddr::new(1), 10, 150, 300);
        assert!(v.violations().is_empty());
    }

    #[test]
    fn unwritten_blocks_read_as_version_zero() {
        let mut v = Verifier::new();
        v.check_read(NodeId::new(0), BlockAddr::new(7), 0, 40, 50);
        assert!(v.violations().is_empty());
        v.check_read(NodeId::new(0), BlockAddr::new(7), 3, 55, 60);
        assert_eq!(v.violations().len(), 1);
    }

    #[test]
    fn very_old_values_are_not_accepted() {
        let mut v = Verifier::new();
        for i in 1..10u64 {
            v.record_write(NodeId::new(0), BlockAddr::new(1), i, i * 100);
        }
        // Issued long after version 3 was overwritten.
        v.check_read(NodeId::new(1), BlockAddr::new(1), 3, 800, 900);
        assert_eq!(v.violations().len(), 1);
    }

    #[test]
    fn token_conservation_audit_detects_lost_tokens() {
        let mut v = Verifier::new();
        v.audit_block(
            BlockAddr::new(1),
            &[audit(10, true, true, false), audit(5, false, true, false)],
            0,
            0,
            Some(16),
            1000,
        );
        assert_eq!(v.violations().len(), 1);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::TokenConservation { found: 15, .. }
        ));
    }

    #[test]
    fn in_flight_tokens_count_toward_conservation() {
        let mut v = Verifier::new();
        v.audit_block(
            BlockAddr::new(1),
            &[audit(10, false, true, false)],
            6,
            1,
            Some(16),
            1000,
        );
        assert!(v.violations().is_empty());
    }

    #[test]
    fn duplicate_owner_tokens_are_flagged() {
        let mut v = Verifier::new();
        v.audit_block(
            BlockAddr::new(2),
            &[audit(8, true, true, false), audit(8, true, true, false)],
            0,
            0,
            Some(16),
            500,
        );
        assert_eq!(v.violations().len(), 1);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::DuplicateOwner { .. }
        ));
    }

    #[test]
    fn two_writers_violate_single_writer() {
        let mut v = Verifier::new();
        v.audit_block(
            BlockAddr::new(3),
            &[audit(0, false, true, true), audit(0, false, true, true)],
            0,
            0,
            None,
            700,
        );
        assert_eq!(v.violations().len(), 1);
    }

    #[test]
    fn one_writer_many_readers_is_flagged() {
        let mut v = Verifier::new();
        v.audit_block(
            BlockAddr::new(3),
            &[
                audit(0, false, true, true),
                audit(0, false, true, false),
                audit(0, false, true, false),
            ],
            0,
            0,
            None,
            700,
        );
        assert_eq!(v.violations().len(), 1);
    }

    #[test]
    fn surviving_stale_copies_are_flagged_at_quiescence() {
        let mut v = Verifier::new();
        v.record_write(NodeId::new(0), BlockAddr::new(4), 10, 100);
        v.record_write(NodeId::new(2), BlockAddr::new(4), 20, 200);
        // One copy holds the current version, another still holds the
        // overwritten one: its invalidation was lost.
        let mut fresh = audit(0, false, true, false);
        fresh.data_version = 20;
        let mut stale = audit(0, false, true, false);
        stale.data_version = 10;
        v.audit_block(BlockAddr::new(4), &[fresh, stale], 0, 0, None, 900);
        assert_eq!(v.violations().len(), 1);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::StaleDataRead {
                observed_version: 10,
                expected_version: 20,
                ..
            }
        ));
    }

    #[test]
    fn matching_copies_pass_the_quiescence_version_check() {
        let mut v = Verifier::new();
        v.record_write(NodeId::new(0), BlockAddr::new(4), 10, 100);
        let mut a = audit(0, false, true, false);
        a.data_version = 10;
        let mut b = audit(0, false, true, false);
        b.data_version = 10;
        v.audit_block(BlockAddr::new(4), &[a, b], 0, 0, None, 900);
        assert!(v.violations().is_empty());
    }

    #[test]
    fn starvation_is_recorded() {
        let mut v = Verifier::new();
        v.record_starvation(NodeId::new(3), BlockAddr::new(9), 100, 90_000);
        assert!(matches!(
            v.into_violations()[0],
            InvariantViolation::Starvation { waited: 89_900, .. }
        ));
    }

    #[test]
    fn completion_within_bound_clears_escalation() {
        let mut v = Verifier::new();
        v.note_persistent_request(NodeId::new(1), BlockAddr::new(5), 1_000);
        assert_eq!(v.escalations_outstanding(), 1);
        v.note_completion(NodeId::new(1), BlockAddr::new(5), 3_000, 10_000);
        assert_eq!(v.escalations_outstanding(), 0);
        assert!(v.violations().is_empty());
    }

    #[test]
    fn late_completion_is_starvation() {
        let mut v = Verifier::new();
        v.note_persistent_request(NodeId::new(1), BlockAddr::new(5), 1_000);
        v.note_completion(NodeId::new(1), BlockAddr::new(5), 20_001, 10_000);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::Starvation {
                issued_at: 1_000,
                at: 20_001,
                waited: 19_001,
                ..
            }
        ));
    }

    #[test]
    fn reissue_does_not_reset_the_waiting_clock() {
        let mut v = Verifier::new();
        v.note_persistent_request(NodeId::new(2), BlockAddr::new(7), 1_000);
        // A reissued persistent request for the same stuck op arrives later;
        // the clock must keep running from the first escalation.
        v.note_persistent_request(NodeId::new(2), BlockAddr::new(7), 9_000);
        v.note_completion(NodeId::new(2), BlockAddr::new(7), 12_001, 11_000);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::Starvation {
                issued_at: 1_000,
                ..
            }
        ));
    }

    #[test]
    fn sweep_flags_only_overdue_escalations() {
        let mut v = Verifier::new();
        v.note_persistent_request(NodeId::new(3), BlockAddr::new(1), 100);
        v.note_persistent_request(NodeId::new(0), BlockAddr::new(2), 49_000);
        v.sweep_escalations(50_000, 10_000);
        assert_eq!(v.escalations_outstanding(), 0);
        // Only the first (waited 49_900 > 10_000) starved; violations come
        // out in (node, block) order.
        assert_eq!(v.violations().len(), 1);
        assert!(matches!(
            v.violations()[0],
            InvariantViolation::Starvation {
                issued_at: 100,
                waited: 49_900,
                ..
            }
        ));
    }

    #[test]
    fn completions_without_escalation_are_ignored() {
        let mut v = Verifier::new();
        v.note_completion(NodeId::new(0), BlockAddr::new(1), 5_000, 10);
        assert!(v.violations().is_empty());
    }

    #[test]
    fn escalations_and_waited_survive_a_snapshot_round_trip() {
        let mut v = Verifier::new();
        v.note_persistent_request(NodeId::new(1), BlockAddr::new(5), 1_000);
        v.note_persistent_request(NodeId::new(2), BlockAddr::new(6), 2_000);
        v.record_starvation(NodeId::new(3), BlockAddr::new(9), 100, 90_000);
        let mut w = SnapWriter::new();
        v.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Verifier::new();
        restored.load_state(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.escalations_outstanding(), 2);
        assert!(matches!(
            restored.violations()[0],
            InvariantViolation::Starvation { waited: 89_900, .. }
        ));
        // The restored oracle still holds the original escalation times.
        restored.note_completion(NodeId::new(1), BlockAddr::new(5), 50_000, 10_000);
        assert_eq!(restored.violations().len(), 2);
    }

    #[test]
    fn legacy_tag6_starvation_still_decodes() {
        // Hand-rolled pre-`waited` wire bytes: tag 6 with four fields.
        let mut w = SnapWriter::new();
        w.u8(6);
        w.u32(4);
        w.u64(11);
        w.u64(200);
        w.u64(90_200);
        let bytes = w.into_bytes();
        let v = read_violation(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(
            v,
            InvariantViolation::Starvation {
                node: NodeId::new(4),
                addr: BlockAddr::new(11),
                issued_at: 200,
                at: 90_200,
                waited: 90_000,
            }
        );
    }
}
