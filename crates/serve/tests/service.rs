//! End-to-end tests for the campaign service: a real server on a real
//! socket, real HTTP round trips, and the three contracts the subsystem
//! exists for — served results byte-identical to one-shot output,
//! identical resubmission served entirely from cache, and a poisoned
//! submission leaving the queue serving.

use std::thread::JoinHandle;

use tc_serve::{ServeOptions, ServeStats, Server, Submission};
use tc_system::{run_to_json, Campaign, ExperimentPoint, RunOptions};
use tc_types::{FaultSpec, JobPriority, ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

fn tiny_options() -> RunOptions {
    RunOptions {
        ops_per_node: 250,
        max_cycles: 20_000_000,
        ..RunOptions::default()
    }
}

fn small_points() -> Vec<ExperimentPoint> {
    [
        ProtocolKind::TokenB,
        ProtocolKind::Directory,
        ProtocolKind::Hammer,
    ]
    .iter()
    .map(|&protocol| {
        let mut config = SystemConfig::isca03_default()
            .with_nodes(4)
            .with_protocol(protocol)
            .with_seed(7);
        config.l2.size_bytes = 256 * 1024;
        ExperimentPoint::new(
            format!("{protocol}-served"),
            config,
            WorkloadProfile::specjbb(),
        )
    })
    .collect()
}

fn submission(points: Vec<ExperimentPoint>) -> Submission {
    Submission {
        priority: JobPriority::Normal,
        options: tiny_options(),
        points,
    }
}

/// One-shot reference lines: what `tc-bench --runs-json` would write.
fn one_shot_lines(points: Vec<ExperimentPoint>) -> Vec<String> {
    Campaign::new(points)
        .options(tiny_options())
        .threads(2)
        .run()
        .runs
        .iter()
        .map(|run| format!("{}\n", run_to_json(&run.label, &run.report)))
        .collect()
}

fn start_server(options: ServeOptions) -> (String, JoinHandle<ServeStats>) {
    let server = Server::bind(options).expect("bind on an ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

#[test]
fn served_results_are_byte_identical_and_resubmission_hits_the_cache() {
    let cache_dir = std::env::temp_dir().join(format!("tc-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).unwrap();
    let cache_path = cache_dir.join("results.snap");
    let (addr, handle) = start_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_path: Some(cache_path.clone()),
    });

    let expected = one_shot_lines(small_points());

    // First submission: everything simulated, streamed lines byte-identical
    // to the one-shot renderer's output.
    let mut lines = Vec::new();
    let outcome = tc_serve::submit(&addr, &submission(small_points()), |line| {
        lines.push(format!("{line}\n"));
    })
    .expect("first submission");
    assert_eq!(lines, expected);
    assert_eq!(outcome.points, 3);
    assert_eq!(outcome.ran, 3);
    assert_eq!(outcome.cache_hits, 0);

    // Second, identical submission: served entirely from cache, still
    // byte-identical.
    let mut cached_lines = Vec::new();
    let outcome = tc_serve::submit(&addr, &submission(small_points()), |line| {
        cached_lines.push(format!("{line}\n"));
    })
    .expect("second submission");
    assert_eq!(cached_lines, expected);
    assert_eq!(outcome.ran, 0);
    assert_eq!(outcome.cache_hits, 3);

    // Same physics under different labels: still all cache hits, and the
    // served lines carry the *new* labels.
    let relabeled: Vec<ExperimentPoint> = small_points()
        .into_iter()
        .map(|mut p| {
            p.label = format!("renamed-{}", p.label);
            p
        })
        .collect();
    let mut renamed_lines = Vec::new();
    let outcome = tc_serve::submit(&addr, &submission(relabeled), |line| {
        renamed_lines.push(line.to_string());
    })
    .expect("relabeled submission");
    assert_eq!(outcome.ran, 0);
    assert_eq!(outcome.cache_hits, 3);
    for (line, expected) in renamed_lines.iter().zip(&expected) {
        assert!(line.contains("\"label\":\"renamed-"), "{line}");
        // Identical except for the label field.
        let strip = |s: &str| {
            let rest = s.split_once(",\"protocol\"").unwrap().1.to_string();
            rest
        };
        assert_eq!(strip(line), strip(expected.trim_end()));
    }

    // The status page knows about the jobs and the cache.
    let status = tc_serve::status(&addr).expect("status");
    assert!(status.contains("job-1"), "{status}");
    assert!(status.contains("job-3"), "{status}");
    assert!(status.contains("cache: 3 entries"), "{status}");

    tc_serve::shutdown(&addr).expect("shutdown");
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.points_run, 3);
    assert_eq!(stats.points_cached, 6);
    assert_eq!(stats.cache_entries, 3);

    // A restarted server restores the persisted cache: the same submission
    // is served without simulating anything.
    let (addr, handle) = start_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_path: Some(cache_path),
    });
    let mut restored_lines = Vec::new();
    let outcome = tc_serve::submit(&addr, &submission(small_points()), |line| {
        restored_lines.push(format!("{line}\n"));
    })
    .expect("post-restart submission");
    assert_eq!(outcome.ran, 0);
    assert_eq!(outcome.cache_hits, 3);
    assert_eq!(restored_lines, expected);
    tc_serve::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn poisoned_submissions_are_rejected_and_the_queue_keeps_serving() {
    let (addr, handle) = start_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_path: None,
    });

    // A bad workload name is rejected with a structured, field-addressed
    // error before it reaches the queue.
    let bad_workload = submission(small_points())
        .to_json()
        .replace("\"SPECjbb\"", "\"notaworkload\"");
    let err = tc_serve::submit_json(&addr, &bad_workload, |_| {}).expect_err("must reject");
    assert!(err.message.contains("notaworkload"), "{err}");
    assert!(err.message.contains("workload"), "{err}");

    // So is a bad protocol name.
    let bad_protocol = submission(small_points())
        .to_json()
        .replace("\"Hammer\"", "\"Sledgehammer\"");
    let err = tc_serve::submit_json(&addr, &bad_protocol, |_| {}).expect_err("must reject");
    assert!(err.message.contains("Sledgehammer"), "{err}");

    // And plain JSON garbage.
    let err = tc_serve::submit_json(&addr, "{not json", |_| {}).expect_err("must reject");
    assert!(err.message.contains("invalid JSON"), "{err}");

    // A configuration that passes validation but panics at build time (a
    // cache geometry that does not divide into sets) fails its *job* with
    // a structured error — it must not take the worker down.
    let mut poisoned = small_points();
    poisoned[1].config.l1.size_bytes = 192; // 3 lines, 4-way: indivisible
    let err = tc_serve::submit(&addr, &submission(poisoned), |_| {}).expect_err("job must fail");
    assert!(err.message.contains("failed"), "{err}");

    // The queue is still serving: a good submission right after runs fine.
    let mut lines = Vec::new();
    let outcome = tc_serve::submit(&addr, &submission(small_points()), |line| {
        lines.push(format!("{line}\n"));
    })
    .expect("queue must keep serving after a poisoned job");
    assert_eq!(outcome.ran + outcome.cache_hits, 3);
    assert_eq!(lines.len(), 3);

    tc_serve::shutdown(&addr).expect("shutdown");
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.jobs_failed, 1);
    assert!(stats.jobs_completed >= 1);

    // Draining servers refuse new work with a 503.
    // (The server has already exited; nothing to assert here beyond join.)
}

#[test]
fn priorities_and_streaming_hold_under_concurrent_submissions() {
    let (addr, handle) = start_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_path: None,
    });

    // Four concurrent submissions, mixed priorities, overlapping points.
    let mut clients = Vec::new();
    for (i, priority) in [
        JobPriority::Low,
        JobPriority::High,
        JobPriority::Normal,
        JobPriority::High,
    ]
    .into_iter()
    .enumerate()
    {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut sub = submission(small_points());
            sub.priority = priority;
            // Give two of the jobs a distinct seed so there is real work
            // beyond the shared points.
            if i % 2 == 0 {
                for p in &mut sub.points {
                    p.config.seed = 100 + i as u64;
                }
            }
            let mut count = 0usize;
            let outcome = tc_serve::submit(&addr, &sub, |_| count += 1).expect("submission");
            assert_eq!(count, 3);
            assert_eq!(outcome.ran + outcome.cache_hits, 3);
            outcome
        }));
    }
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    assert_eq!(outcomes.len(), 4);

    tc_serve::shutdown(&addr).expect("shutdown");
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.jobs_completed, 4);
    // Every point was accounted for exactly once, run or served. (The two
    // identical-physics jobs only dedup when one *finishes* before the
    // other starts — with two workers that is a race, so no stronger claim
    // here; sequential dedup is pinned by the byte-identity test.)
    assert_eq!(stats.points_run + stats.points_cached, 12, "{stats:?}");

    // Per-point faults ride along and key the cache correctly.
    let (addr, handle) = start_server(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_path: None,
    });
    let mut faulted = submission(small_points());
    faulted.points[0] = faulted.points[0]
        .clone()
        .with_faults(FaultSpec::parse("drop=0.0001,seed=5").unwrap());
    let outcome = tc_serve::submit(&addr, &faulted, |_| {}).expect("faulted submission");
    assert_eq!(outcome.ran, 3);
    let outcome = tc_serve::submit(&addr, &faulted, |_| {}).expect("faulted resubmission");
    assert_eq!(outcome.cache_hits, 3);
    tc_serve::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread");
}
