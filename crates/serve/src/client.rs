//! Blocking client for the campaign service: submit (with live line
//! streaming), status, and shutdown. This is what `tc-bench submit` /
//! `status` / `shutdown` call.

use std::fmt;

use tc_types::Json;

use crate::http::roundtrip;
use crate::submission::Submission;

/// A client-side failure: transport errors, non-200 responses (with the
/// server's structured error passed through), and failed jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError {
    /// Human-readable description; includes the server's `error` (and
    /// `field`, when present) for rejected submissions.
    pub message: String,
}

impl ClientError {
    fn new(message: impl Into<String>) -> Self {
        ClientError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ClientError {}

/// The final accounting of a successful submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Server-assigned job id, e.g. `job-3`.
    pub job: String,
    /// Points in the submission.
    pub points: usize,
    /// Points actually simulated.
    pub ran: usize,
    /// Points served from the dedup cache.
    pub cache_hits: usize,
}

/// Turns a non-200 body (ideally the server's structured error object)
/// into a [`ClientError`].
fn error_from_body(status: u16, body: &[u8]) -> ClientError {
    let text = String::from_utf8_lossy(body);
    if let Ok(parsed) = Json::parse(text.trim()) {
        if let Some(message) = parsed.get("error").and_then(Json::as_str) {
            let detail = match parsed.get("field").and_then(Json::as_str) {
                Some(field) => format!("{message} (field: {field})"),
                None => message.to_string(),
            };
            return ClientError::new(format!("server rejected the request ({status}): {detail}"));
        }
    }
    ClientError::new(format!("server returned {status}: {}", text.trim()))
}

/// Submits to `addr`, streaming each run line to `on_run_line` as it
/// arrives (run lines only — the `job` ack and `done` trailer are consumed
/// here), and returns the final accounting.
///
/// # Errors
///
/// Returns a [`ClientError`] on transport failure, a non-200 response
/// (carrying the server's structured error), or a failed job.
pub fn submit(
    addr: &str,
    submission: &Submission,
    on_run_line: impl FnMut(&str),
) -> Result<SubmitOutcome, ClientError> {
    submit_json(addr, &submission.to_json(), on_run_line)
}

/// Like [`submit`], but takes the submission's JSON wire form directly.
///
/// # Errors
///
/// See [`submit`].
pub fn submit_json(
    addr: &str,
    body: &str,
    mut on_run_line: impl FnMut(&str),
) -> Result<SubmitOutcome, ClientError> {
    let mut job: Option<(String, usize)> = None;
    let mut finished: Option<Result<(usize, usize), String>> = None;
    let response = roundtrip(addr, "POST", "/submit", body.as_bytes(), |line| {
        let parsed = match Json::parse(line) {
            Ok(parsed) => parsed,
            Err(_) => return, // tolerate unknown noise on the stream
        };
        if parsed.get("label").is_some() {
            on_run_line(line);
        } else if let Some(done) = parsed.get("done").and_then(Json::as_bool) {
            finished = Some(if done {
                Ok((
                    parsed.get("ran").and_then(Json::as_u64).unwrap_or(0) as usize,
                    parsed.get("cache_hits").and_then(Json::as_u64).unwrap_or(0) as usize,
                ))
            } else {
                Err(parsed
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("job failed")
                    .to_string())
            });
        } else if let Some(id) = parsed.get("job").and_then(Json::as_str) {
            job = Some((
                id.to_string(),
                parsed.get("points").and_then(Json::as_u64).unwrap_or(0) as usize,
            ));
        }
    })
    .map_err(|e| ClientError::new(format!("transport error talking to {addr}: {e}")))?;

    if response.status != 200 {
        return Err(error_from_body(response.status, &response.body));
    }
    let (job, points) =
        job.ok_or_else(|| ClientError::new("stream ended without a job acknowledgement"))?;
    match finished {
        Some(Ok((ran, cache_hits))) => Ok(SubmitOutcome {
            job,
            points,
            ran,
            cache_hits,
        }),
        Some(Err(message)) => Err(ClientError::new(format!("{job} failed: {message}"))),
        None => Err(ClientError::new(format!(
            "{job}: stream ended before the job finished"
        ))),
    }
}

/// Fetches the plain-text status page.
///
/// # Errors
///
/// Returns a [`ClientError`] on transport failure or a non-200 response.
pub fn status(addr: &str) -> Result<String, ClientError> {
    let response = roundtrip(addr, "GET", "/status", b"", |_| {})
        .map_err(|e| ClientError::new(format!("transport error talking to {addr}: {e}")))?;
    if response.status != 200 {
        return Err(error_from_body(response.status, &response.body));
    }
    String::from_utf8(response.body)
        .map_err(|_| ClientError::new("status page is not UTF-8".to_string()))
}

/// Asks the server to drain and exit (queued jobs still finish).
///
/// # Errors
///
/// Returns a [`ClientError`] on transport failure or a non-200 response.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let response = roundtrip(addr, "POST", "/shutdown", b"", |_| {})
        .map_err(|e| ClientError::new(format!("transport error talking to {addr}: {e}")))?;
    if response.status != 200 {
        return Err(error_from_body(response.status, &response.body));
    }
    Ok(())
}
