//! The resident campaign service: accept loop, priority job queue, worker
//! pool, and live NDJSON result streaming.
//!
//! # Architecture
//!
//! One thread per accepted connection parses the request and, for
//! `/submit`, owns the response stream for its job's lifetime. Jobs wait in
//! a priority queue (higher [`JobPriority`] first, FIFO within a priority)
//! drained by a fixed pool of worker threads. Each worker runs its job as a
//! single-threaded [`Campaign`] — pool parallelism is *across* jobs — and
//! forwards results through a per-job channel: the connection thread turns
//! them into HTTP chunks the moment they arrive.
//!
//! # The serving contract
//!
//! Every streamed run line is produced by [`run_to_json`], the same
//! renderer the one-shot CLI uses, and simulations are bit-identical at any
//! thread count — so a served line is byte-identical to the one-shot line
//! for the same point, whether it was computed now, computed by an earlier
//! job (dedup cache), or restored from a cache snapshot written before the
//! server was last restarted.
//!
//! # Shutdown
//!
//! `/shutdown` puts the server into *draining*: new submissions get a 503,
//! queued and running jobs finish and stream out normally, then workers
//! exit, the cache is persisted, and [`Server::run`] returns.

use std::collections::{BTreeMap, BinaryHeap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tc_system::{run_to_json, Campaign, RunReport};
use tc_types::{JobId, JobPriority, JobState, Json};

use crate::cache::ResultCache;
use crate::http::{read_request, write_response, ChunkedWriter, Request};
use crate::submission::{cache_key, Submission};

/// How often the accept loop wakes to reap finished connection threads and
/// check the drain-complete condition.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Worker threads, i.e. jobs simulated concurrently.
    pub workers: usize,
    /// When set, the dedup cache is loaded from here at bind time and
    /// persisted here at drain time, so a restarted server keeps history.
    pub cache_path: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7533".to_string(),
            workers: 2,
            cache_path: None,
        }
    }
}

/// Counters reported when the server drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs that completed successfully.
    pub jobs_completed: u64,
    /// Jobs that failed (a point panicked mid-run).
    pub jobs_failed: u64,
    /// Points actually simulated.
    pub points_run: u64,
    /// Points served from the dedup cache.
    pub points_cached: u64,
    /// Cache entries at shutdown.
    pub cache_entries: usize,
}

/// A queued job: ordered by priority (high first), then submission order.
#[derive(Debug, PartialEq, Eq)]
struct QueuedJob {
    priority: JobPriority,
    seq: u64,
    job: u64,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins; within a
        // priority, the *earlier* submission (smaller seq) must compare
        // greater.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What a worker streams back to the connection thread that owns the job.
enum StreamEvent {
    /// One complete NDJSON run line, in submission order.
    Line(String),
    /// Job finished; `ran` points were simulated, `cache_hits` served from
    /// cache.
    Done { ran: usize, cache_hits: usize },
    /// Job died (a point panicked); the queue keeps serving.
    Failed(String),
}

struct JobRecord {
    state: JobState,
    priority: JobPriority,
    points_total: usize,
    points_done: usize,
    cache_hits: usize,
    /// Taken by the worker when the job starts.
    submission: Option<Submission>,
    /// Stream back to the connection thread; dropped when the job ends.
    events: Option<Sender<StreamEvent>>,
}

struct ServerState {
    queue: BinaryHeap<QueuedJob>,
    jobs: BTreeMap<u64, JobRecord>,
    next_job_id: u64,
    next_seq: u64,
    running: usize,
    draining: bool,
    cache: ResultCache,
    jobs_completed: u64,
    jobs_failed: u64,
    points_run: u64,
    points_cached: u64,
}

struct Shared {
    state: Mutex<ServerState>,
    work_ready: Condvar,
}

/// A bound, not-yet-running campaign service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    cache_path: Option<PathBuf>,
    /// Why a configured cache file was not restored (missing is silent;
    /// corrupt or unreadable is reported here), for the operator to print.
    pub cache_warning: Option<String>,
}

impl Server {
    /// Binds the listener and loads the cache (if configured).
    ///
    /// # Errors
    ///
    /// Returns the bind error; cache problems degrade to an empty cache
    /// with [`Server::cache_warning`] set instead of failing.
    pub fn bind(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let (cache, cache_warning) = match &options.cache_path {
            Some(path) => ResultCache::load_or_empty(path),
            None => (ResultCache::new(), None),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                state: Mutex::new(ServerState {
                    queue: BinaryHeap::new(),
                    jobs: BTreeMap::new(),
                    next_job_id: 1,
                    next_seq: 0,
                    running: 0,
                    draining: false,
                    cache,
                    jobs_completed: 0,
                    jobs_failed: 0,
                    points_run: 0,
                    points_cached: 0,
                }),
                work_ready: Condvar::new(),
            }),
            workers: options.workers.max(1),
            cache_path: options.cache_path,
            cache_warning,
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until drained: accepts connections, runs jobs, and returns
    /// once `/shutdown` was received and every queued and running job has
    /// finished. Persists the cache before returning.
    ///
    /// # Errors
    ///
    /// Returns accept-loop or cache-persistence I/O errors.
    pub fn run(self) -> io::Result<ServeStats> {
        self.listener.set_nonblocking(true)?;
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let shared = self.shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();

        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = self.shared.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let (finished, live): (Vec<_>, Vec<_>) =
                        handlers.into_iter().partition(|h| h.is_finished());
                    for h in finished {
                        let _ = h.join();
                    }
                    handlers = live;
                    {
                        let state = self.shared.state.lock().unwrap();
                        if state.draining && state.queue.is_empty() && state.running == 0 {
                            break;
                        }
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drained: wake any workers parked on the condvar so they observe
        // `draining` and exit, then let in-flight streams finish.
        self.shared.work_ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        for h in handlers {
            let _ = h.join();
        }

        let state = self.shared.state.lock().unwrap();
        if let Some(path) = &self.cache_path {
            state.cache.persist(path)?;
        }
        Ok(ServeStats {
            jobs_completed: state.jobs_completed,
            jobs_failed: state.jobs_failed,
            points_run: state.points_run,
            points_cached: state.points_cached,
            cache_entries: state.cache.len(),
        })
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn json_line(fields: Vec<(&str, Json)>) -> String {
    let obj = Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    format!("{obj}\n")
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets must not inherit the listener's nonblocking mode,
    // and a dead client must not pin this thread forever.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(_) => return,
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/submit") => handle_submit(stream, shared, &request),
        ("GET", "/status") => {
            let body = render_status(shared);
            let _ = write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("POST", "/shutdown") => {
            {
                let mut state = shared.state.lock().unwrap();
                state.draining = true;
            }
            shared.work_ready.notify_all();
            let body = json_line(vec![("draining", Json::Bool(true))]);
            let _ = write_response(&mut stream, 200, "OK", "application/json", body.as_bytes());
        }
        _ => {
            let body = json_line(vec![(
                "error",
                Json::Str(format!("no route for {} {}", request.method, request.path)),
            )]);
            let _ = write_response(
                &mut stream,
                404,
                "Not Found",
                "application/json",
                body.as_bytes(),
            );
        }
    }
}

fn handle_submit(mut stream: TcpStream, shared: &Arc<Shared>, request: &Request) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            let body = json_line(vec![("error", Json::Str("body is not UTF-8".to_string()))]);
            let _ = write_response(
                &mut stream,
                400,
                "Bad Request",
                "application/json",
                body.as_bytes(),
            );
            return;
        }
    };
    // Reject malformed submissions *here*, with a structured error, before
    // anything reaches the queue — a bad protocol name must never take
    // down a worker.
    let submission = match Submission::parse(text) {
        Ok(submission) => submission,
        Err(e) => {
            let body = format!("{}\n", e.to_json());
            let _ = write_response(
                &mut stream,
                400,
                "Bad Request",
                "application/json",
                body.as_bytes(),
            );
            return;
        }
    };

    let (tx, rx) = mpsc::channel();
    let (job_id, points_total, priority) = {
        let mut state = shared.state.lock().unwrap();
        if state.draining {
            let body = json_line(vec![(
                "error",
                Json::Str("server is draining; submission rejected".to_string()),
            )]);
            let _ = write_response(
                &mut stream,
                503,
                "Service Unavailable",
                "application/json",
                body.as_bytes(),
            );
            return;
        }
        let id = state.next_job_id;
        state.next_job_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let points_total = submission.points.len();
        let priority = submission.priority;
        state.jobs.insert(
            id,
            JobRecord {
                state: JobState::Queued,
                priority,
                points_total,
                points_done: 0,
                cache_hits: 0,
                submission: Some(submission),
                events: Some(tx),
            },
        );
        state.queue.push(QueuedJob {
            priority,
            seq,
            job: id,
        });
        (id, points_total, priority)
    };
    shared.work_ready.notify_all();

    let mut chunked = match ChunkedWriter::begin(&mut stream, 200, "OK") {
        Ok(chunked) => chunked,
        Err(_) => return,
    };
    let ack = json_line(vec![
        ("job", Json::Str(JobId(job_id).to_string())),
        ("points", Json::Num(points_total.to_string())),
        ("priority", Json::Str(priority.name().to_string())),
    ]);
    if chunked.chunk(ack.as_bytes()).is_err() {
        return; // client went away; the worker still runs and fills the cache
    }
    for event in rx {
        match event {
            StreamEvent::Line(line) => {
                if chunked.chunk(line.as_bytes()).is_err() {
                    return;
                }
            }
            StreamEvent::Done { ran, cache_hits } => {
                let line = json_line(vec![
                    ("done", Json::Bool(true)),
                    ("job", Json::Str(JobId(job_id).to_string())),
                    ("ran", Json::Num(ran.to_string())),
                    ("cache_hits", Json::Num(cache_hits.to_string())),
                ]);
                let _ = chunked.chunk(line.as_bytes());
                break;
            }
            StreamEvent::Failed(message) => {
                let line = json_line(vec![
                    ("done", Json::Bool(false)),
                    ("job", Json::Str(JobId(job_id).to_string())),
                    ("error", Json::Str(message)),
                ]);
                let _ = chunked.chunk(line.as_bytes());
                break;
            }
        }
    }
    let _ = chunked.end();
}

fn render_status(shared: &Arc<Shared>) -> String {
    use std::fmt::Write as _;
    let state = shared.state.lock().unwrap();
    let mut out = String::new();
    let _ = writeln!(out, "tc-serve campaign service");
    let _ = writeln!(
        out,
        "queue depth: {}  running: {}  draining: {}",
        state.queue.len(),
        state.running,
        if state.draining { "yes" } else { "no" }
    );
    let _ = writeln!(
        out,
        "cache: {} entries, {} hits, {} misses ({:.1}% hit rate)",
        state.cache.len(),
        state.cache.hits,
        state.cache.misses,
        state.cache.hit_rate() * 100.0
    );
    let _ = writeln!(
        out,
        "lifetime: {} completed, {} failed, {} points run, {} points cached",
        state.jobs_completed, state.jobs_failed, state.points_run, state.points_cached
    );
    let _ = writeln!(out, "jobs:");
    for (id, rec) in &state.jobs {
        let _ = writeln!(
            out,
            "  {:<8} {:<8} {:<7} {}/{} points, {} cached",
            JobId(*id).to_string(),
            rec.state.name(),
            rec.priority.name(),
            rec.points_done,
            rec.points_total,
            rec.cache_hits
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (job_id, submission, sender) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(next) = state.queue.pop() {
                    let record = state
                        .jobs
                        .get_mut(&next.job)
                        .expect("queued job must have a record");
                    record.state = JobState::Running;
                    let submission = record
                        .submission
                        .take()
                        .expect("queued job must carry its submission");
                    let sender = record.events.clone();
                    state.running += 1;
                    break (next.job, submission, sender);
                }
                if state.draining {
                    return;
                }
                state = shared.work_ready.wait(state).unwrap();
            }
        };

        let outcome = run_job(shared, job_id, submission, sender.as_ref());

        let mut state = shared.state.lock().unwrap();
        state.running -= 1;
        let record = state.jobs.get_mut(&job_id).expect("job record");
        record.events = None;
        match outcome {
            Ok((ran, cache_hits)) => {
                record.state = JobState::Done;
                record.points_done = record.points_total;
                record.cache_hits = cache_hits;
                state.jobs_completed += 1;
                state.points_run += ran as u64;
                state.points_cached += cache_hits as u64;
            }
            Err(_) => {
                record.state = JobState::Failed;
                state.jobs_failed += 1;
            }
        }
    }
}

/// Sends the in-order prefix of ready lines downstream.
fn flush_ready(
    ready: &mut BTreeMap<usize, String>,
    next_emit: &mut usize,
    sender: Option<&Sender<StreamEvent>>,
) {
    while let Some(line) = ready.remove(next_emit) {
        if let Some(sender) = sender {
            let _ = sender.send(StreamEvent::Line(line));
        }
        *next_emit += 1;
    }
}

/// Runs one job: serves cache hits, simulates the rest as a
/// single-threaded streaming campaign, emits lines in submission order, and
/// folds fresh results back into the cache.
fn run_job(
    shared: &Arc<Shared>,
    job_id: u64,
    submission: Submission,
    sender: Option<&Sender<StreamEvent>>,
) -> Result<(usize, usize), String> {
    let Submission {
        options, points, ..
    } = submission;
    let total = points.len();

    // Partition into cache hits (line pre-rendered now) and points to run.
    let mut ready: BTreeMap<usize, String> = BTreeMap::new();
    let mut to_run = Vec::new();
    let mut run_keys: Vec<String> = Vec::new();
    let mut run_index: Vec<usize> = Vec::new();
    {
        let mut state = shared.state.lock().unwrap();
        for (i, point) in points.into_iter().enumerate() {
            let key = cache_key(&point, &options);
            if let Some(report) = state.cache.lookup(&key) {
                // Cached under any label: re-render with *this* label.
                ready.insert(i, format!("{}\n", run_to_json(&point.label, report)));
            } else {
                run_keys.push(key);
                run_index.push(i);
                to_run.push(point);
            }
        }
        let cache_hits = total - to_run.len();
        let record = state.jobs.get_mut(&job_id).expect("job record");
        record.cache_hits = cache_hits;
    }
    let cache_hits = total - to_run.len();
    let ran = to_run.len();

    let mut next_emit = 0usize;
    flush_ready(&mut ready, &mut next_emit, sender);

    let mut computed: Vec<(usize, RunReport)> = Vec::new();
    if !to_run.is_empty() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Campaign::new(to_run)
                .options(options)
                .threads(1)
                .run_streaming(|index, run| {
                    let line = format!("{}\n", run_to_json(&run.label, &run.report));
                    ready.insert(run_index[index], line);
                    computed.push((index, run.report.clone()));
                    flush_ready(&mut ready, &mut next_emit, sender);
                    let mut state = shared.state.lock().unwrap();
                    if let Some(record) = state.jobs.get_mut(&job_id) {
                        record.points_done = next_emit;
                    }
                });
        }));

        // Whatever completed before a panic is still a valid, bit-exact
        // result: cache it so the work is not lost.
        {
            let mut state = shared.state.lock().unwrap();
            for (index, report) in computed {
                state.cache.insert(run_keys[index].clone(), report);
            }
        }

        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            if let Some(sender) = sender {
                let _ = sender.send(StreamEvent::Failed(message.clone()));
            }
            return Err(message);
        }
    }

    debug_assert_eq!(next_emit, total, "every line must have been emitted");
    if let Some(sender) = sender {
        let _ = sender.send(StreamEvent::Done { ran, cache_hits });
    }
    Ok((ran, cache_hits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_priority_then_submission() {
        let mut heap = BinaryHeap::new();
        heap.push(QueuedJob {
            priority: JobPriority::Normal,
            seq: 0,
            job: 1,
        });
        heap.push(QueuedJob {
            priority: JobPriority::Low,
            seq: 1,
            job: 2,
        });
        heap.push(QueuedJob {
            priority: JobPriority::High,
            seq: 2,
            job: 3,
        });
        heap.push(QueuedJob {
            priority: JobPriority::High,
            seq: 3,
            job: 4,
        });
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|q| q.job).collect();
        assert_eq!(order, vec![3, 4, 1, 2]);
    }
}
