//! `tc-serve`: a resident campaign service for the Token Coherence
//! simulator — job queue, dedup result cache, live result streaming.
//!
//! A one-shot `tc-bench` campaign pays the full simulation cost every
//! invocation, even when a sweep shares most of its points with the last
//! one. This crate keeps a server resident instead: experiments are
//! submitted as JSON over a hand-rolled HTTP/1.1 server (plain
//! `std::net`, zero dependencies), validated into
//! [`ExperimentPoint`](tc_system::ExperimentPoint)s, run on a priority
//! job queue across a worker pool built on the existing
//! [`Campaign`](tc_system::Campaign) machinery, and streamed back as
//! NDJSON chunks as each point completes.
//!
//! Because runs are deterministic and bit-identical at any thread count,
//! results are *content-addressable*: the dedup cache keys on the full
//! determinism tuple (configuration, workload, run options, fault and
//! adversary specs, seed — label excluded), making repeated sweeps free,
//! and it persists through the engine snapshot plane so a restarted
//! server keeps its history. The serving contract — streamed lines are
//! byte-identical to one-shot `tc-bench --runs-json` output, and
//! identical resubmission is served entirely from cache — is pinned by
//! this crate's integration tests and the CI smoke gate.
//!
//! The binary surface lives in `tc-bench`: `tc-bench serve` hosts this
//! server; `submit`, `status`, and `shutdown` wrap [`client`].

pub mod cache;
pub mod client;
pub mod http;
pub mod server;
pub mod submission;

pub use cache::ResultCache;
pub use client::{shutdown, status, submit, submit_json, ClientError, SubmitOutcome};
pub use server::{ServeOptions, ServeStats, Server};
pub use submission::{cache_key, Submission, SubmitError};
