//! The dedup result cache: full determinism tuple in, [`RunReport`] out.
//!
//! Keys come from [`crate::submission::cache_key`] — everything that feeds
//! the simulation, label excluded — so two submissions that describe the
//! same physical experiment share one entry no matter what they call it.
//! Because runs are bit-identical at any worker count, a cached report *is*
//! the report a fresh run would produce, and serving it is sound.
//!
//! The cache persists through the engine snapshot plane: the same
//! [`SnapWriter`]/[`SnapReader`] codec and [`seal`]/[`open`] envelope
//! (magic, version, checksum) the checkpoint files use, so a restarted
//! server keeps its history and a corrupt or version-skewed file degrades
//! to an empty cache instead of poisoning results.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use tc_sim::{open, seal, SnapReader, SnapWriter, SnapshotError, SNAPSHOT_VERSION};
use tc_system::RunReport;

/// Version of the cache payload layout *inside* the sealed envelope. Bump
/// on any change to the entry encoding.
const CACHE_FORMAT_VERSION: u32 = 1;

/// An in-memory result cache with hit/miss accounting.
#[derive(Debug, Default)]
pub struct ResultCache {
    /// Key → report. A BTreeMap keeps persistence deterministic: the same
    /// cache contents always serialize to the same bytes.
    entries: BTreeMap<String, RunReport>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no reports are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a report up, recording the hit or miss.
    pub fn lookup(&mut self, key: &str) -> Option<&RunReport> {
        if self.entries.contains_key(key) {
            self.hits += 1;
            self.entries.get(key)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts (or replaces — reruns are bit-identical, so replacement is a
    /// no-op in content) a report.
    pub fn insert(&mut self, key: String, report: RunReport) {
        self.entries.insert(key, report);
    }

    /// Fraction of lookups served from cache, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Serializes every entry into a sealed snapshot (hit/miss counters are
    /// session statistics and deliberately not persisted).
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u32(CACHE_FORMAT_VERSION);
        w.seq(self.entries.iter(), |w, (key, report)| {
            w.str(key);
            report.save_state(w);
        });
        seal(SNAPSHOT_VERSION, &w.into_bytes())
    }

    /// Restores a cache from [`ResultCache::to_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns the envelope or codec error; counters start at zero.
    pub fn from_snapshot(bytes: &[u8]) -> Result<ResultCache, SnapshotError> {
        let (_, payload) = open(bytes)?;
        let mut r = SnapReader::new(payload);
        let format = r.u32()?;
        if format != CACHE_FORMAT_VERSION {
            return Err(SnapshotError::BadVersion {
                found: format,
                expected: CACHE_FORMAT_VERSION,
            });
        }
        let count = r.bounded_len(2)?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let key = r.str()?;
            let report = RunReport::load_state(&mut r)?;
            entries.insert(key, report);
        }
        r.finish()?;
        Ok(ResultCache {
            entries,
            hits: 0,
            misses: 0,
        })
    }

    /// Writes the snapshot to `path` atomically (temp file + rename), so a
    /// crash mid-write leaves the previous file intact.
    pub fn persist(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_snapshot())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a cache from `path`. A missing, truncated, or corrupt file —
    /// the normal states after a first boot or a crash — yields an empty
    /// cache and the reason; only a healthy file restores entries.
    pub fn load_or_empty(path: &Path) -> (ResultCache, Option<String>) {
        match std::fs::read(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => (ResultCache::new(), None),
            Err(e) => (ResultCache::new(), Some(format!("unreadable cache: {e}"))),
            Ok(bytes) => match ResultCache::from_snapshot(&bytes) {
                Ok(cache) => (cache, None),
                Err(e) => (ResultCache::new(), Some(format!("discarding cache: {e}"))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_system::{Campaign, ExperimentPoint, RunOptions};
    use tc_types::SystemConfig;
    use tc_workloads::WorkloadProfile;

    fn one_report() -> RunReport {
        let mut config = SystemConfig::isca03_default().with_nodes(4).with_seed(3);
        config.l2.size_bytes = 256 * 1024;
        let report = Campaign::new(vec![ExperimentPoint::new(
            "cache-test",
            config,
            WorkloadProfile::specjbb(),
        )])
        .options(RunOptions {
            ops_per_node: 200,
            max_cycles: 20_000_000,
            ..RunOptions::default()
        })
        .run();
        report.runs.into_iter().next().unwrap().report
    }

    #[test]
    fn cache_round_trips_through_the_snapshot_plane() {
        let report = one_report();
        let mut cache = ResultCache::new();
        cache.insert("k1".to_string(), report.clone());
        cache.insert("k0".to_string(), report.clone());
        assert!(cache.lookup("k1").is_some());
        assert!(cache.lookup("missing").is_none());
        assert_eq!((cache.hits, cache.misses), (1, 1));

        let restored = ResultCache::from_snapshot(&cache.to_snapshot()).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!((restored.hits, restored.misses), (0, 0));
        assert_eq!(restored.entries.get("k0"), Some(&report));
        // Determinism: same contents, same bytes.
        assert_eq!(cache.to_snapshot(), restored.to_snapshot());
    }

    #[test]
    fn corrupt_or_missing_files_degrade_to_an_empty_cache() {
        let dir = std::env::temp_dir().join(format!("tc-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("does-not-exist.snap");
        let (cache, warning) = ResultCache::load_or_empty(&missing);
        assert!(cache.is_empty());
        assert!(warning.is_none());

        let corrupt = dir.join("corrupt.snap");
        std::fs::write(&corrupt, b"this is not a snapshot").unwrap();
        let (cache, warning) = ResultCache::load_or_empty(&corrupt);
        assert!(cache.is_empty());
        assert!(warning.is_some());

        let good = dir.join("good.snap");
        let mut original = ResultCache::new();
        original.insert("key".to_string(), one_report());
        original.persist(&good).unwrap();
        let (restored, warning) = ResultCache::load_or_empty(&good);
        assert!(warning.is_none());
        assert_eq!(restored.len(), 1);

        // A truncated file (simulated crash mid-write of a non-atomic
        // writer) must also degrade, not panic.
        let bytes = std::fs::read(&good).unwrap();
        std::fs::write(&good, &bytes[..bytes.len() / 2]).unwrap();
        let (truncated, warning) = ResultCache::load_or_empty(&good);
        assert!(truncated.is_empty());
        assert!(warning.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
