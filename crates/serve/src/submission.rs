//! The submission wire format: JSON in, validated [`ExperimentPoint`]s out.
//!
//! A submission carries the *full* determinism tuple explicitly — every
//! [`SystemConfig`] field per point, the workload by catalog name, the run
//! options, fault and adversary specs as their `Display` strings — so that
//! a served run is reproducible from the submission text alone and the
//! dedup cache can key on exactly what it received. Campaign expansion
//! (`table1` → points) happens client-side in `tc-bench submit`; the server
//! only ever sees explicit point lists.
//!
//! Parsing is strict: unknown protocol/workload/topology names, missing
//! fields, or a configuration that fails [`SystemConfig::validate`] are
//! rejected with a structured, field-addressed error *before* the job is
//! queued — a malformed submission must never panic a worker.

use std::fmt;

use tc_system::{ExperimentPoint, RunOptions};
use tc_types::{
    AdversarySpec, BandwidthMode, CacheConfig, DirectoryMode, FaultSpec, InterconnectConfig,
    JobPriority, Json, ProcessorConfig, ProtocolKind, SystemConfig, TokenConfig, TopologyKind,
};
use tc_workloads::WorkloadProfile;

/// Hard ceiling on points per submission; a sweep bigger than this should
/// be split into multiple jobs so status stays legible and one job cannot
/// monopolize the queue forever.
pub const MAX_POINTS_PER_SUBMISSION: usize = 65_536;

/// A structured rejection: what was wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitError {
    /// Dotted path to the offending field, e.g. `points[2].config.protocol`.
    pub field: String,
    /// What was wrong with it.
    pub message: String,
}

impl SubmitError {
    fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        SubmitError {
            field: field.into(),
            message: message.into(),
        }
    }

    /// Renders the error as the JSON object the server returns with a 400.
    pub fn to_json(&self) -> String {
        let obj = Json::Obj(vec![
            ("error".to_string(), Json::Str(self.message.clone())),
            ("field".to_string(), Json::Str(self.field.clone())),
        ]);
        obj.to_string()
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

impl std::error::Error for SubmitError {}

/// A validated experiment submission.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Queue priority; higher-priority jobs are dequeued first.
    pub priority: JobPriority,
    /// Campaign-wide run options (per-point faults may override `faults`).
    pub options: RunOptions,
    /// The points to run, in submission order.
    pub points: Vec<ExperimentPoint>,
}

// ---------------------------------------------------------------------------
// Serialization (client side)
// ---------------------------------------------------------------------------

fn num_u64(v: u64) -> Json {
    Json::Num(v.to_string())
}

fn num_usize(v: usize) -> Json {
    Json::Num(v.to_string())
}

/// `{:?}` is Rust's shortest-round-trip float formatting: parsing the token
/// back with `str::parse::<f64>` recovers the exact bits, which the cache
/// key and the bit-identical serving contract both rely on.
fn num_f64(v: f64) -> Json {
    Json::Num(format!("{v:?}"))
}

fn cache_to_json(c: &CacheConfig) -> Json {
    Json::Obj(vec![
        ("size_bytes".to_string(), num_u64(c.size_bytes)),
        ("associativity".to_string(), num_usize(c.associativity)),
        ("latency_ns".to_string(), num_u64(c.latency_ns)),
    ])
}

fn config_to_json(c: &SystemConfig) -> Json {
    Json::Obj(vec![
        ("num_nodes".to_string(), num_usize(c.num_nodes)),
        ("block_bytes".to_string(), num_u64(c.block_bytes)),
        ("l1".to_string(), cache_to_json(&c.l1)),
        ("l2".to_string(), cache_to_json(&c.l2)),
        ("dram_latency_ns".to_string(), num_u64(c.dram_latency_ns)),
        (
            "controller_latency_ns".to_string(),
            num_u64(c.controller_latency_ns),
        ),
        (
            "interconnect".to_string(),
            Json::Obj(vec![
                (
                    "topology".to_string(),
                    Json::Str(c.interconnect.topology.name().to_string()),
                ),
                (
                    "link_bandwidth_bytes_per_ns".to_string(),
                    num_f64(c.interconnect.link_bandwidth_bytes_per_ns),
                ),
                (
                    "link_latency_ns".to_string(),
                    num_u64(c.interconnect.link_latency_ns),
                ),
                (
                    "bandwidth".to_string(),
                    Json::Str(bandwidth_name(c.interconnect.bandwidth).to_string()),
                ),
            ]),
        ),
        (
            "processor".to_string(),
            Json::Obj(vec![
                (
                    "max_outstanding_misses".to_string(),
                    num_usize(c.processor.max_outstanding_misses),
                ),
                (
                    "overlap_window".to_string(),
                    num_usize(c.processor.overlap_window),
                ),
                (
                    "ops_per_transaction".to_string(),
                    num_usize(c.processor.ops_per_transaction),
                ),
            ]),
        ),
        (
            "protocol".to_string(),
            Json::Str(c.protocol.name().to_string()),
        ),
        (
            "directory_mode".to_string(),
            Json::Str(directory_name(c.directory_mode).to_string()),
        ),
        (
            "token".to_string(),
            Json::Obj(vec![
                (
                    "tokens_per_block".to_string(),
                    num_u64(u64::from(c.token.tokens_per_block)),
                ),
                (
                    "reissues_before_persistent".to_string(),
                    num_u64(u64::from(c.token.reissues_before_persistent)),
                ),
                (
                    "reissue_latency_multiplier".to_string(),
                    num_f64(c.token.reissue_latency_multiplier),
                ),
                (
                    "persistent_latency_multiplier".to_string(),
                    num_f64(c.token.persistent_latency_multiplier),
                ),
                (
                    "migratory_optimization".to_string(),
                    Json::Bool(c.token.migratory_optimization),
                ),
            ]),
        ),
        ("seed".to_string(), num_u64(c.seed)),
    ])
}

fn bandwidth_name(mode: BandwidthMode) -> &'static str {
    match mode {
        BandwidthMode::Limited => "Limited",
        BandwidthMode::Unlimited => "Unlimited",
    }
}

fn directory_name(mode: DirectoryMode) -> &'static str {
    match mode {
        DirectoryMode::InDram => "InDram",
        DirectoryMode::Perfect => "Perfect",
    }
}

impl Submission {
    /// Serializes the submission to the wire form [`Submission::parse`]
    /// accepts. Round-trips exactly: enums by name, floats shortest-form.
    pub fn to_json(&self) -> String {
        let o = &self.options;
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("label".to_string(), Json::Str(p.label.clone())),
                    ("config".to_string(), config_to_json(&p.config)),
                    (
                        "workload".to_string(),
                        Json::Str(p.workload.name.to_string()),
                    ),
                    ("faults".to_string(), Json::Str(p.faults.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "priority".to_string(),
                Json::Str(self.priority.name().to_string()),
            ),
            ("ops_per_node".to_string(), num_u64(o.ops_per_node)),
            ("max_cycles".to_string(), num_u64(o.max_cycles)),
            ("faults".to_string(), Json::Str(o.faults.to_string())),
            ("adversary".to_string(), Json::Str(o.adversary.to_string())),
            (
                "livelock_events_budget".to_string(),
                num_u64(o.livelock_events_budget),
            ),
            (
                "checkpoint_every".to_string(),
                match o.checkpoint_every {
                    Some(n) => num_u64(n),
                    None => Json::Null,
                },
            ),
            ("points".to_string(), Json::Arr(points)),
        ])
        .to_string()
    }
}

// ---------------------------------------------------------------------------
// Parsing (server side)
// ---------------------------------------------------------------------------

fn want<'a>(obj: &'a Json, field: &str, path: &str) -> Result<&'a Json, SubmitError> {
    obj.get(field)
        .ok_or_else(|| SubmitError::new(join(path, field), "missing required field"))
}

fn join(path: &str, field: &str) -> String {
    if path.is_empty() {
        field.to_string()
    } else {
        format!("{path}.{field}")
    }
}

fn get_u64(obj: &Json, field: &str, path: &str) -> Result<u64, SubmitError> {
    want(obj, field, path)?
        .as_u64()
        .ok_or_else(|| SubmitError::new(join(path, field), "expected a non-negative integer"))
}

fn get_usize(obj: &Json, field: &str, path: &str) -> Result<usize, SubmitError> {
    Ok(get_u64(obj, field, path)? as usize)
}

fn get_f64(obj: &Json, field: &str, path: &str) -> Result<f64, SubmitError> {
    want(obj, field, path)?
        .as_f64()
        .ok_or_else(|| SubmitError::new(join(path, field), "expected a number"))
}

fn get_bool(obj: &Json, field: &str, path: &str) -> Result<bool, SubmitError> {
    want(obj, field, path)?
        .as_bool()
        .ok_or_else(|| SubmitError::new(join(path, field), "expected true or false"))
}

fn get_str<'a>(obj: &'a Json, field: &str, path: &str) -> Result<&'a str, SubmitError> {
    want(obj, field, path)?
        .as_str()
        .ok_or_else(|| SubmitError::new(join(path, field), "expected a string"))
}

fn parse_cache(obj: &Json, path: &str) -> Result<CacheConfig, SubmitError> {
    Ok(CacheConfig {
        size_bytes: get_u64(obj, "size_bytes", path)?,
        associativity: get_usize(obj, "associativity", path)?,
        latency_ns: get_u64(obj, "latency_ns", path)?,
    })
}

fn parse_config(obj: &Json, path: &str) -> Result<SystemConfig, SubmitError> {
    let protocol_name = get_str(obj, "protocol", path)?;
    let protocol = ProtocolKind::by_name(protocol_name).ok_or_else(|| {
        SubmitError::new(
            join(path, "protocol"),
            format!(
                "unknown protocol `{protocol_name}` (expected one of: {})",
                ProtocolKind::ALL.map(|p| p.name()).join(", ")
            ),
        )
    })?;
    let ic = want(obj, "interconnect", path)?;
    let ic_path = join(path, "interconnect");
    let topology = match get_str(ic, "topology", &ic_path)? {
        t if t.eq_ignore_ascii_case("tree") => TopologyKind::Tree,
        t if t.eq_ignore_ascii_case("torus") => TopologyKind::Torus,
        t => {
            return Err(SubmitError::new(
                join(&ic_path, "topology"),
                format!("unknown topology `{t}` (expected Tree or Torus)"),
            ))
        }
    };
    let bandwidth = match get_str(ic, "bandwidth", &ic_path)? {
        b if b.eq_ignore_ascii_case("limited") => BandwidthMode::Limited,
        b if b.eq_ignore_ascii_case("unlimited") => BandwidthMode::Unlimited,
        b => {
            return Err(SubmitError::new(
                join(&ic_path, "bandwidth"),
                format!("unknown bandwidth mode `{b}` (expected Limited or Unlimited)"),
            ))
        }
    };
    let directory_mode = match get_str(obj, "directory_mode", path)? {
        d if d.eq_ignore_ascii_case("indram") => DirectoryMode::InDram,
        d if d.eq_ignore_ascii_case("perfect") => DirectoryMode::Perfect,
        d => {
            return Err(SubmitError::new(
                join(path, "directory_mode"),
                format!("unknown directory mode `{d}` (expected InDram or Perfect)"),
            ))
        }
    };
    let proc = want(obj, "processor", path)?;
    let proc_path = join(path, "processor");
    let token = want(obj, "token", path)?;
    let token_path = join(path, "token");
    let config = SystemConfig {
        num_nodes: get_usize(obj, "num_nodes", path)?,
        block_bytes: get_u64(obj, "block_bytes", path)?,
        l1: parse_cache(want(obj, "l1", path)?, &join(path, "l1"))?,
        l2: parse_cache(want(obj, "l2", path)?, &join(path, "l2"))?,
        dram_latency_ns: get_u64(obj, "dram_latency_ns", path)?,
        controller_latency_ns: get_u64(obj, "controller_latency_ns", path)?,
        interconnect: InterconnectConfig {
            topology,
            link_bandwidth_bytes_per_ns: get_f64(ic, "link_bandwidth_bytes_per_ns", &ic_path)?,
            link_latency_ns: get_u64(ic, "link_latency_ns", &ic_path)?,
            bandwidth,
        },
        processor: ProcessorConfig {
            max_outstanding_misses: get_usize(proc, "max_outstanding_misses", &proc_path)?,
            overlap_window: get_usize(proc, "overlap_window", &proc_path)?,
            ops_per_transaction: get_usize(proc, "ops_per_transaction", &proc_path)?,
        },
        protocol,
        directory_mode,
        token: TokenConfig {
            tokens_per_block: get_u64(token, "tokens_per_block", &token_path)? as u32,
            reissues_before_persistent: get_u64(token, "reissues_before_persistent", &token_path)?
                as u32,
            reissue_latency_multiplier: get_f64(token, "reissue_latency_multiplier", &token_path)?,
            persistent_latency_multiplier: get_f64(
                token,
                "persistent_latency_multiplier",
                &token_path,
            )?,
            migratory_optimization: get_bool(token, "migratory_optimization", &token_path)?,
        },
        seed: get_u64(obj, "seed", path)?,
    };
    config
        .validate()
        .map_err(|e| SubmitError::new(path.to_string(), e.to_string()))?;
    Ok(config)
}

fn parse_faults(text: &str, path: &str) -> Result<FaultSpec, SubmitError> {
    FaultSpec::parse(text).map_err(|e| SubmitError::new(path.to_string(), e))
}

impl Submission {
    /// Parses and validates a submission from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns a [`SubmitError`] naming the offending field for syntax
    /// errors, missing fields, unknown protocol/workload/topology names,
    /// out-of-range values, and configurations that fail
    /// [`SystemConfig::validate`].
    pub fn parse(text: &str) -> Result<Submission, SubmitError> {
        let root = Json::parse(text)
            .map_err(|e| SubmitError::new("body", format!("invalid JSON: {e}")))?;
        if root.as_object().is_none() {
            return Err(SubmitError::new("body", "expected a JSON object"));
        }

        let priority = match root.get("priority") {
            None => JobPriority::default(),
            Some(p) => {
                let name = p
                    .as_str()
                    .ok_or_else(|| SubmitError::new("priority", "expected a string"))?;
                JobPriority::parse(name).map_err(|e| SubmitError::new("priority", e))?
            }
        };

        let mut options = RunOptions {
            ops_per_node: get_u64(&root, "ops_per_node", "")?,
            max_cycles: get_u64(&root, "max_cycles", "")?,
            faults: parse_faults(get_str(&root, "faults", "")?, "faults")?,
            adversary: AdversarySpec::parse(get_str(&root, "adversary", "")?)
                .map_err(|e| SubmitError::new("adversary", e))?,
            ..RunOptions::default()
        };
        if let Some(budget) = root.get("livelock_events_budget") {
            options.livelock_events_budget = budget.as_u64().ok_or_else(|| {
                SubmitError::new("livelock_events_budget", "expected a non-negative integer")
            })?;
        }
        options.checkpoint_every = match root.get("checkpoint_every") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                SubmitError::new("checkpoint_every", "expected null or an integer")
            })?),
        };
        if options.ops_per_node == 0 {
            return Err(SubmitError::new("ops_per_node", "must be at least 1"));
        }

        let raw_points = want(&root, "points", "")?
            .as_array()
            .ok_or_else(|| SubmitError::new("points", "expected an array"))?;
        if raw_points.is_empty() {
            return Err(SubmitError::new("points", "submission has no points"));
        }
        if raw_points.len() > MAX_POINTS_PER_SUBMISSION {
            return Err(SubmitError::new(
                "points",
                format!(
                    "{} points exceeds the per-submission limit of {MAX_POINTS_PER_SUBMISSION}",
                    raw_points.len()
                ),
            ));
        }

        let mut points = Vec::with_capacity(raw_points.len());
        for (i, p) in raw_points.iter().enumerate() {
            let path = format!("points[{i}]");
            if p.as_object().is_none() {
                return Err(SubmitError::new(path, "expected an object"));
            }
            let label = get_str(p, "label", &path)?.to_string();
            let config = parse_config(want(p, "config", &path)?, &join(&path, "config"))?;
            let workload_name = get_str(p, "workload", &path)?;
            let workload = WorkloadProfile::by_name(workload_name).ok_or_else(|| {
                SubmitError::new(
                    join(&path, "workload"),
                    format!(
                        "unknown workload `{workload_name}` (expected one of: {})",
                        WorkloadProfile::ALL_NAMES.join(", ")
                    ),
                )
            })?;
            let faults = match p.get("faults") {
                None => FaultSpec::none(),
                Some(f) => {
                    let text = f.as_str().ok_or_else(|| {
                        SubmitError::new(join(&path, "faults"), "expected a string")
                    })?;
                    parse_faults(text, &join(&path, "faults"))?
                }
            };
            points.push(ExperimentPoint::new(label, config, workload).with_faults(faults));
        }

        Ok(Submission {
            priority,
            options,
            points,
        })
    }
}

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

/// Derives the dedup-cache key for one point under the given options: the
/// full determinism tuple — configuration, workload, run length, effective
/// fault spec (per-point override applied, mirroring
/// [`ExperimentPoint::run_with`]), livelock budget, checkpoint cadence, and
/// adversary spec. The *label* is deliberately excluded: the same physical
/// experiment under a different name is still the same experiment, and the
/// served line is re-rendered with the submitted label on a hit.
pub fn cache_key(point: &ExperimentPoint, options: &RunOptions) -> String {
    let effective_faults = if point.faults.is_none() {
        options.faults
    } else {
        point.faults
    };
    format!(
        "{:?}|{:?}|ops={}|cycles={}|faults={}|livelock={}|ckpt={:?}|adversary={}",
        point.config,
        point.workload,
        options.ops_per_node,
        options.max_cycles,
        effective_faults,
        options.livelock_events_budget,
        options.checkpoint_every,
        options.adversary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Submission {
        let mut config = SystemConfig::isca03_default().with_nodes(4).with_seed(11);
        config.l2.size_bytes = 256 * 1024;
        let points = vec![
            ExperimentPoint::new("a", config.clone(), WorkloadProfile::specjbb()),
            ExperimentPoint::new(
                "b",
                config.with_protocol(ProtocolKind::Directory),
                WorkloadProfile::oltp(),
            )
            .with_faults(FaultSpec::parse("drop=0.0001").unwrap()),
        ];
        Submission {
            priority: JobPriority::High,
            options: RunOptions {
                ops_per_node: 500,
                max_cycles: 10_000_000,
                ..RunOptions::default()
            },
            points,
        }
    }

    #[test]
    fn submission_round_trips_through_json() {
        let sub = sample();
        let text = sub.to_json();
        let parsed = Submission::parse(&text).expect("round trip must parse");
        assert_eq!(parsed.priority, sub.priority);
        assert_eq!(parsed.options, sub.options);
        assert_eq!(parsed.points.len(), sub.points.len());
        for (got, want) in parsed.points.iter().zip(&sub.points) {
            assert_eq!(got.label, want.label);
            assert_eq!(got.config, want.config);
            assert_eq!(got.workload, want.workload);
            assert_eq!(got.faults, want.faults);
        }
        // And the re-serialization is byte-identical.
        assert_eq!(Submission::parse(&text).unwrap().to_json(), text);
    }

    #[test]
    fn adversary_and_checkpoint_fields_round_trip() {
        let mut sub = sample();
        sub.options.adversary =
            AdversarySpec::parse("reorder=3,seed=9").expect("valid adversary spec");
        sub.options.checkpoint_every = Some(50_000);
        let parsed = Submission::parse(&sub.to_json()).unwrap();
        assert_eq!(parsed.options.adversary.reorder_window, 3);
        assert_eq!(parsed.options.adversary.seed, 9);
        assert_eq!(parsed.options.checkpoint_every, Some(50_000));
    }

    #[test]
    fn unknown_protocol_is_a_structured_error() {
        let text = sample().to_json().replace("\"TokenB\"", "\"TokenZ\"");
        let err = Submission::parse(&text).unwrap_err();
        assert_eq!(err.field, "points[0].config.protocol");
        assert!(err.message.contains("TokenZ"), "{}", err.message);
        assert!(err.message.contains("TokenB"), "{}", err.message);
    }

    #[test]
    fn unknown_workload_is_a_structured_error() {
        let text = sample().to_json().replace("\"SPECjbb\"", "\"speccpu\"");
        let err = Submission::parse(&text).unwrap_err();
        assert_eq!(err.field, "points[0].workload");
        assert!(err.message.contains("speccpu"), "{}", err.message);
    }

    #[test]
    fn invalid_configurations_are_rejected_at_parse_time() {
        // Snooping on the torus fails SystemConfig::validate.
        let mut sub = sample();
        sub.points[0].config = sub.points[0]
            .config
            .clone()
            .with_protocol(ProtocolKind::Snooping)
            .with_topology(TopologyKind::Torus);
        let err = Submission::parse(&sub.to_json()).unwrap_err();
        assert_eq!(err.field, "points[0].config");
        assert!(err.message.contains("snooping"), "{}", err.message);
    }

    #[test]
    fn syntax_and_shape_errors_name_the_field() {
        assert_eq!(Submission::parse("{oops").unwrap_err().field, "body");
        assert_eq!(Submission::parse("[1,2]").unwrap_err().field, "body");
        let no_points = sample().to_json().replace("\"points\"", "\"notpoints\"");
        assert_eq!(Submission::parse(&no_points).unwrap_err().field, "points");
        let err = SubmitError::new("points", "submission has no points");
        assert!(err.to_json().contains("\"field\":\"points\""));
    }

    #[test]
    fn cache_key_ignores_label_but_not_physics() {
        let sub = sample();
        let mut renamed = sub.points[0].clone();
        renamed.label = "renamed".to_string();
        assert_eq!(
            cache_key(&sub.points[0], &sub.options),
            cache_key(&renamed, &sub.options)
        );
        let mut reseeded = sub.points[0].clone();
        reseeded.config.seed += 1;
        assert_ne!(
            cache_key(&sub.points[0], &sub.options),
            cache_key(&reseeded, &sub.options)
        );
        let mut longer = sub.options;
        longer.ops_per_node += 1;
        assert_ne!(
            cache_key(&sub.points[0], &sub.options),
            cache_key(&sub.points[0], &longer)
        );
    }

    #[test]
    fn per_point_faults_override_in_the_cache_key() {
        let sub = sample();
        // Point b carries its own fault spec; changing the campaign-wide
        // spec must not change b's key (run_with overrides it), but must
        // change a's.
        let mut faulted = sub.options;
        faulted.faults = FaultSpec::parse("drop=1e-3").unwrap();
        assert_ne!(
            cache_key(&sub.points[0], &sub.options),
            cache_key(&sub.points[0], &faulted)
        );
        assert_eq!(
            cache_key(&sub.points[1], &sub.options),
            cache_key(&sub.points[1], &faulted)
        );
    }
}
