//! A deliberately tiny HTTP/1.1 subset over `std::net` — just enough for the
//! campaign service's wire protocol and its client, with zero dependencies.
//!
//! Supported: request line + headers + `Content-Length` bodies on the way
//! in; fixed-length and `Transfer-Encoding: chunked` responses on the way
//! out (and chunked decoding on the client side, which is how result
//! streaming works). Everything else — keep-alive, pipelining, compression,
//! HTTP/2 — is out of scope: every exchange is one request, one response,
//! one connection.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). A submission's
/// interesting payload lives in the body; a head larger than this is
/// garbage or abuse.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request or response body. Large sweeps submit thousands
/// of points of a few hundred bytes each, comfortably under this.
const MAX_BODY_BYTES: usize = 32 * 1024 * 1024;

/// A parsed HTTP request (or, with `status` set, a response head).
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... — uppercase as received.
    pub method: String,
    /// Request target, e.g. `/submit`.
    pub path: String,
    /// Header name/value pairs; names lowercased for lookup.
    pub headers: Vec<(String, String)>,
    /// The body, already fully read per `Content-Length`.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Reads one line (terminated by `\n`, `\r` trimmed), bounding total head
/// consumption via `budget`.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && !line.is_empty() => break,
            Err(e) => return Err(e),
        }
        *budget = budget
            .checked_sub(1)
            .ok_or_else(|| bad("request head exceeds size limit"))?;
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad("request head is not UTF-8"))
}

/// Parses the head (first line + headers) common to requests and responses,
/// returning the first line and the header list.
fn read_head(reader: &mut impl BufRead) -> io::Result<(String, Vec<(String, String)>)> {
    let mut budget = MAX_HEAD_BYTES;
    let first = read_line(reader, &mut budget)?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((first, headers))
}

fn read_sized_body(reader: &mut impl BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad(format!("bad Content-Length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(bad("body exceeds size limit"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Reads and parses one request from the connection.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let (first, headers) = read_head(&mut reader)?;
    let mut parts = first.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| bad("request line missing target"))?
        .to_string();
    let body = read_sized_body(&mut reader, &headers)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes a complete fixed-length response and flushes it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: call [`ChunkedWriter::begin`],
/// then [`ChunkedWriter::chunk`] per payload (the service sends one NDJSON
/// line per chunk, flushed immediately so clients see results live), then
/// [`ChunkedWriter::end`].
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head announcing a chunked body.
    pub fn begin(stream: &'a mut TcpStream, status: u16, reason: &str) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk and flushes so the receiver sees it immediately.
    pub fn chunk(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", payload.len())?;
        self.stream.write_all(payload)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn end(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A response as seen by the client: status plus either a fully buffered
/// body or, for chunked NDJSON, the lines already delivered to a callback.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The (decoded) body. For streamed responses this is everything that
    /// was also handed to the line callback, concatenated.
    pub body: Vec<u8>,
}

/// Sends `body` as `method path` to `addr` and reads the response. For
/// chunked responses, each complete `\n`-terminated line is handed to
/// `on_line` as it decodes — this is the client half of live streaming.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    mut on_line: impl FnMut(&str),
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let (first, headers) = read_head(&mut reader)?;
    let status = first
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(format!("malformed status line `{first}`")))?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));

    let body = if chunked {
        let mut decoded = Vec::new();
        let mut line_start = 0usize;
        loop {
            let mut budget = 64usize;
            let size_line = read_line(&mut reader, &mut budget)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("bad chunk size `{size_line}`")))?;
            if decoded.len() + size > MAX_BODY_BYTES {
                return Err(bad("chunked body exceeds size limit"));
            }
            if size == 0 {
                let mut budget = 64usize;
                let _trailer = read_line(&mut reader, &mut budget)?;
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            decoded.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            // Deliver every complete line that this chunk finished.
            while let Some(nl) = decoded[line_start..].iter().position(|&b| b == b'\n') {
                let end = line_start + nl;
                if let Ok(text) = std::str::from_utf8(&decoded[line_start..end]) {
                    on_line(text.trim_end_matches('\r'));
                }
                line_start = end + 1;
            }
        }
        if line_start < decoded.len() {
            if let Ok(text) = std::str::from_utf8(&decoded[line_start..]) {
                if !text.trim().is_empty() {
                    on_line(text.trim_end_matches('\r'));
                }
            }
        }
        decoded
    } else {
        read_sized_body(&mut reader, &headers)?
    };
    Ok(Response { status, body })
}
