//! Criterion benchmarks of full-system simulation for each protocol and
//! workload: one sample = one complete (small) simulation of the Table 1
//! system. The *measured wall-clock time* tracks simulator speed; the
//! *reported simulated metrics* (printed by the `table2`/`fig*` binaries) are
//! the paper's figures. Keeping both here makes regressions in either easy to
//! spot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_system::{RunOptions, System};
use tc_types::{ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

fn simulate(protocol: ProtocolKind, workload: &WorkloadProfile, ops: u64) -> u64 {
    let config = SystemConfig::isca03_default()
        .with_nodes(8)
        .with_protocol(protocol);
    let mut system = System::build(&config, workload);
    let report = system.run(RunOptions {
        ops_per_node: ops,
        max_cycles: 200_000_000,
        ..RunOptions::default()
    });
    assert!(report.verified().is_ok());
    report.runtime_cycles
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_system_simulation");
    group.sample_size(10);
    for protocol in ProtocolKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("oltp_8node_1k_ops", protocol.name()),
            &protocol,
            |b, protocol| b.iter(|| simulate(*protocol, &WorkloadProfile::oltp(), 1_000)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("tokenb_by_workload");
    group.sample_size(10);
    for workload in WorkloadProfile::commercial() {
        group.bench_with_input(
            BenchmarkId::new("8node_1k_ops", workload.name),
            &workload,
            |b, workload| b.iter(|| simulate(ProtocolKind::TokenB, workload, 1_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
